"""The pipeline invariant checker: check_pipeline and QAReport."""

import pytest

from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import make_interconnect
from repro.qa import CheckResult, QAReport, check_pipeline

METRICS = ["NORM", "PURE", "THRES", "ADAPT"]


def _system(n, topology="bus", cost_per_item=1.0):
    return System(
        n,
        interconnect=make_interconnect(topology, n, cost_per_item=cost_per_item),
    )


class TestQAReport:
    def test_ok_and_failures(self):
        report = QAReport(
            graph_name="g", metric="PURE", estimator="CCNE",
            n_processors=2, n_subtasks=3,
        )
        report.checks.append(CheckResult("a", True))
        assert report.ok and report.failures == []
        report.checks.append(CheckResult("b", False, "broke"))
        assert not report.ok
        assert [c.name for c in report.failures] == ["b"]
        summary = report.summary()
        assert "[FAIL]" in summary and "FAIL b: broke" in summary
        assert "1/2 checks passed" in summary


class TestCheckPipeline:
    @pytest.mark.parametrize("metric", METRICS)
    def test_fixtures_pass_every_invariant(self, metric, diamond_graph):
        report = check_pipeline(
            diamond_graph, _system(2), metric, exhaustive_max_subtasks=5
        )
        assert report.ok, report.summary()
        names = {c.name for c in report.checks}
        assert {
            "analysis.longest_path", "expanded.overlay",
            "schedule.replay", "schedule.lateness_accounting",
            "optimal.never_worse_than_list", "pipeline.traced_identity",
        } <= names

    def test_exhaustive_check_is_gated(self, diamond_graph):
        gated = check_pipeline(
            diamond_graph, _system(2), "PURE", exhaustive_max_subtasks=0
        )
        assert "optimal.matches_exhaustive" not in {
            c.name for c in gated.checks
        }
        enabled = check_pipeline(
            diamond_graph, _system(2), "PURE", exhaustive_max_subtasks=8
        )
        assert "optimal.matches_exhaustive" in {
            c.name for c in enabled.checks
        }
        assert enabled.ok, enabled.summary()

    def test_overconstrained_graph_uses_degenerate_contract(self):
        # The budget cannot even hold the chain's execution time, so the
        # distributor must emit collapsed windows — and the checker must
        # accept them under the documented contract instead of flagging
        # precedence violations.
        g = TaskGraph(name="overconstrained")
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0)
        g.add_subtask("c", wcet=10.0, end_to_end_deadline=12.0)
        g.add_edge("a", "b", message_size=5.0)
        g.add_edge("b", "c", message_size=5.0)
        report = check_pipeline(g, _system(2), "PURE", estimator="CCAA")
        assert report.ok, report.summary()
        assert "distribution.degenerate_contract" in {
            c.name for c in report.checks
        }


class TestEdgeCaseRegressions:
    """The qa campaign's named edge cases, pinned as regressions.

    The fuzzer and the direct probes found no divergence on these
    shapes; these tests keep it that way.
    """

    @pytest.mark.parametrize("metric", METRICS)
    def test_single_subtask_single_processor(self, metric):
        g = TaskGraph(name="single")
        g.add_subtask("a", wcet=5.0, release=0.0, end_to_end_deadline=10.0)
        report = check_pipeline(
            g, _system(1), metric, exhaustive_max_subtasks=5
        )
        assert report.ok, report.summary()

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("estimator", ["CCNE", "CCAA"])
    def test_empty_message_graph(self, metric, estimator):
        # Every arc carries zero data: no message windows, no transfers.
        g = TaskGraph(name="zero-msgs")
        for i, w in enumerate([3.0, 4.0, 2.0]):
            g.add_subtask(f"n{i}", wcet=w)
        g.add_edge("n0", "n1", message_size=0.0)
        g.add_edge("n1", "n2", message_size=0.0)
        g.node("n0").release = 0.0
        g.node("n2").end_to_end_deadline = 20.0
        report = check_pipeline(
            g, _system(2), metric, estimator=estimator,
            exhaustive_max_subtasks=5,
        )
        assert report.ok, report.summary()

    @pytest.mark.parametrize("metric", METRICS)
    def test_near_zero_execution_times(self, metric):
        # wcet must stay > 0 by the model's contract; 1e-9 is the
        # closest representable stand-in for zero-cost subtasks.
        g = TaskGraph(name="tiny")
        for i in range(4):
            g.add_subtask(f"t{i}", wcet=1e-9)
        g.add_edge("t0", "t1", message_size=1e-9)
        g.add_edge("t0", "t2", message_size=0.0)
        g.add_edge("t1", "t3", message_size=1e-9)
        g.add_edge("t2", "t3", message_size=1e-9)
        g.node("t0").release = 0.0
        g.node("t3").end_to_end_deadline = 1.0
        report = check_pipeline(
            g, _system(2), metric, estimator="CCAA",
            exhaustive_max_subtasks=5,
        )
        assert report.ok, report.summary()

    @pytest.mark.parametrize("metric", METRICS)
    def test_single_processor_heavy_communication(self, metric):
        # On one processor no message ever crosses, whatever its size,
        # and the over-tight budget forces the degenerate regime.
        g = TaskGraph(name="uni")
        for i, w in enumerate([2.0, 3.0, 4.0, 1.0]):
            g.add_subtask(f"u{i}", wcet=w)
        g.add_edge("u0", "u1", message_size=50.0)
        g.add_edge("u0", "u2", message_size=50.0)
        g.add_edge("u1", "u3", message_size=50.0)
        g.add_edge("u2", "u3", message_size=50.0)
        g.node("u0").release = 0.0
        g.node("u3").end_to_end_deadline = 15.0
        report = check_pipeline(
            g, _system(1), metric, estimator="CCAA",
            exhaustive_max_subtasks=4,
        )
        assert report.ok, report.summary()

    def test_free_contended_bus(self):
        # cost_per_item=0 on a contended bus: transfers exist but have
        # zero-width reservations, which must not read as overlaps.
        g = TaskGraph(name="freebus")
        for i, w in enumerate([3.0, 4.0, 2.0, 5.0]):
            g.add_subtask(f"f{i}", wcet=w)
        g.add_edge("f0", "f1", message_size=10.0)
        g.add_edge("f0", "f2", message_size=10.0)
        g.add_edge("f1", "f3", message_size=10.0)
        g.add_edge("f2", "f3", message_size=10.0)
        g.node("f0").release = 0.0
        g.node("f3").end_to_end_deadline = 40.0
        report = check_pipeline(
            g, _system(3, cost_per_item=0.0), "THRES", estimator="CCAA"
        )
        assert report.ok, report.summary()

    def test_pinned_subtasks_crossing_processors(self):
        g = TaskGraph(name="pinned")
        g.add_subtask("a", wcet=2.0, release=0.0, pinned_to=0)
        g.add_subtask("b", wcet=3.0, pinned_to=1)
        g.add_subtask("d", wcet=2.0, end_to_end_deadline=30.0, pinned_to=1)
        g.add_edge("a", "b", message_size=4.0)
        g.add_edge("b", "d", message_size=4.0)
        report = check_pipeline(
            g, _system(2), "ADAPT", estimator="CCAA",
            exhaustive_max_subtasks=5,
        )
        assert report.ok, report.summary()
