"""Ready-list selection policies."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.sched.policies import (
    POLICIES,
    EarliestDeadlineFirst,
    EarliestReleaseFirst,
    LeastLaxityFirst,
    LongestProcessingTimeFirst,
    RandomPolicy,
    make_policy,
)


@pytest.fixture
def setup():
    g = TaskGraph()
    g.add_subtask("x", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
    g.add_subtask("y", wcet=30.0, release=0.0, end_to_end_deadline=100.0)
    assignment = DeadlineAssignment(
        graph=g,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows={
            "x": Window(release=5.0, absolute_deadline=50.0, cost=10.0),
            "y": Window(release=0.0, absolute_deadline=60.0, cost=30.0),
        },
        message_windows={},
    )
    return g, assignment


def test_edf_key_is_absolute_deadline(setup):
    g, a = setup
    policy = EarliestDeadlineFirst()
    assert policy.key("x", g, a) < policy.key("y", g, a)


def test_llf_key_is_window_laxity(setup):
    g, a = setup
    policy = LeastLaxityFirst()
    # laxity(x) = 45-10 = 35; laxity(y) = 60-30 = 30 -> y first.
    assert policy.key("y", g, a) < policy.key("x", g, a)


def test_erf_key_is_release(setup):
    g, a = setup
    policy = EarliestReleaseFirst()
    assert policy.key("y", g, a) < policy.key("x", g, a)


def test_lpt_key_is_negative_wcet(setup):
    g, a = setup
    policy = LongestProcessingTimeFirst()
    assert policy.key("y", g, a) < policy.key("x", g, a)


def test_random_policy_deterministic_per_seed(setup):
    g, a = setup
    p1 = RandomPolicy(seed=3)
    p2 = RandomPolicy(seed=3)
    p3 = RandomPolicy(seed=4)
    assert p1.key("x", g, a) == p2.key("x", g, a)
    assert p1.key("x", g, a) != p3.key("x", g, a)


def test_factory_covers_registry():
    for name in POLICIES:
        assert make_policy(name).name == name


def test_factory_unknown():
    with pytest.raises(ValidationError):
        make_policy("SJF")
