"""Path utilities: longest path, parallelism, depth, enumeration."""

import pytest

from repro.errors import UnknownNodeError, ValidationError
from repro.graph import paths
from repro.graph.taskgraph import TaskGraph


def build_dag():
    r"""a -> {b(5), c(20)} -> d; plus isolated-ish chain e -> d.

        a(10) -> b(5)  -> d(10)
        a(10) -> c(20) -> d(10)
        e(1)  -> d(10)
    """
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=5.0)
    g.add_subtask("c", wcet=20.0)
    g.add_subtask("d", wcet=10.0, end_to_end_deadline=100.0)
    g.add_subtask("e", wcet=1.0, release=0.0)
    g.add_edge("a", "b", message_size=2.0)
    g.add_edge("a", "c", message_size=2.0)
    g.add_edge("b", "d", message_size=2.0)
    g.add_edge("c", "d", message_size=100.0)
    g.add_edge("e", "d", message_size=2.0)
    return g


class TestLongestPath:
    def test_length(self):
        assert paths.longest_path_length(build_dag()) == 40.0  # a c d

    def test_concrete_path(self):
        assert paths.longest_path(build_dag()) == ["a", "c", "d"]

    def test_with_messages(self):
        # a->c (2) ->d (100): 10+20+10 + 102 = 142
        assert paths.longest_path_length(build_dag(), include_messages=True) == 142.0
        assert paths.longest_path(build_dag(), include_messages=True) == [
            "a", "c", "d",
        ]

    def test_single_node(self):
        g = TaskGraph()
        g.add_subtask("only", wcet=7.0, release=0.0, end_to_end_deadline=10.0)
        assert paths.longest_path_length(g) == 7.0
        assert paths.longest_path(g) == ["only"]

    def test_empty_graph_raises(self):
        with pytest.raises(ValidationError):
            paths.longest_path_length(TaskGraph())
        with pytest.raises(ValidationError):
            paths.longest_path(TaskGraph())


class TestParallelismAndDepth:
    def test_average_parallelism(self):
        g = build_dag()
        assert paths.average_parallelism(g) == pytest.approx(46.0 / 40.0)

    def test_chain_parallelism_is_one(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=3.0, release=0.0)
        g.add_subtask("b", wcet=4.0, end_to_end_deadline=20.0)
        g.add_edge("a", "b")
        assert paths.average_parallelism(g) == 1.0

    def test_depth(self):
        assert paths.graph_depth(build_dag()) == 3

    def test_levels(self):
        levels = paths.level_of(build_dag())
        assert levels["a"] == 1
        assert levels["b"] == levels["c"] == 2
        assert levels["d"] == 3
        assert levels["e"] == 1

    def test_depth_empty(self):
        with pytest.raises(ValidationError):
            paths.graph_depth(TaskGraph())


class TestEnumerate:
    def test_all_paths(self):
        found = sorted(paths.enumerate_paths(build_dag(), "a", "d"))
        assert found == [["a", "b", "d"], ["a", "c", "d"]]

    def test_limit(self):
        found = list(paths.enumerate_paths(build_dag(), "a", "d", limit=1))
        assert len(found) == 1

    def test_no_path(self):
        assert list(paths.enumerate_paths(build_dag(), "e", "b")) == []

    def test_same_node(self):
        assert list(paths.enumerate_paths(build_dag(), "a", "a")) == [["a"]]

    def test_unknown_endpoint(self):
        with pytest.raises(UnknownNodeError):
            list(paths.enumerate_paths(build_dag(), "zzz", "d"))


class TestPathHelpers:
    def test_execution_time(self):
        g = build_dag()
        assert paths.path_execution_time(g, ["a", "c", "d"]) == 40.0

    def test_message_volume(self):
        g = build_dag()
        assert paths.path_message_volume(g, ["a", "c", "d"]) == 102.0

    def test_is_path(self):
        g = build_dag()
        assert paths.is_path(g, ["a", "c", "d"])
        assert not paths.is_path(g, ["a", "d"])
        assert not paths.is_path(g, [])
        assert not paths.is_path(g, ["zzz"])
        assert paths.is_path(g, ["a"])
