"""The random task-graph generator against its Section 5.2 contract."""

import random

import pytest

from repro.errors import GeneratorError
from repro.graph import paths
from repro.graph.generator import (
    HDET,
    LDET,
    MDET,
    SCENARIOS,
    RandomGraphConfig,
    generate_task_graph,
    generate_task_graphs,
)


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = RandomGraphConfig()
        assert cfg.n_subtasks_range == (40, 60)
        assert cfg.mean_execution_time == 20.0
        assert cfg.depth_range == (8, 12)
        assert cfg.degree_range == (1, 3)
        assert cfg.overall_laxity_ratio == 1.5
        assert cfg.communication_to_computation_ratio == 1.0

    def test_scenarios(self):
        assert SCENARIOS == {"LDET": 0.25, "MDET": 0.50, "HDET": 0.99}
        cfg = RandomGraphConfig().with_scenario("HDET")
        assert cfg.execution_time_deviation == HDET

    def test_unknown_scenario(self):
        with pytest.raises(GeneratorError):
            RandomGraphConfig().with_scenario("XDET")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_subtasks_range": (0, 5)},
            {"n_subtasks_range": (10, 5)},
            {"depth_range": (0, 3)},
            {"depth_range": (5, 3)},
            {"degree_range": (0, 2)},
            {"mean_execution_time": 0.0},
            {"execution_time_deviation": 1.0},
            {"execution_time_deviation": -0.1},
            {"overall_laxity_ratio": 0.0},
            {"olr_basis": "bogus"},
            {"communication_to_computation_ratio": -1.0},
            {"message_size_deviation": 1.5},
            {"long_edge_probability": 2.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(GeneratorError):
            RandomGraphConfig(**kwargs)


class TestGeneratedStructure:
    @pytest.mark.parametrize("seed", range(8))
    def test_size_and_depth_in_range(self, seed):
        g = generate_task_graph(RandomGraphConfig(), rng=random.Random(seed))
        assert 40 <= g.n_subtasks <= 60
        assert 8 <= paths.graph_depth(g) <= 12

    @pytest.mark.parametrize("scenario,dev", SCENARIOS.items())
    def test_execution_times_within_deviation(self, scenario, dev):
        cfg = RandomGraphConfig().with_scenario(scenario)
        g = generate_task_graph(cfg, rng=random.Random(99))
        met = cfg.mean_execution_time
        for sub in g.nodes():
            assert met * (1 - dev) - 1e-9 <= sub.wcet <= met * (1 + dev) + 1e-9

    def test_interior_nodes_connected(self):
        g = generate_task_graph(RandomGraphConfig(), rng=random.Random(3))
        levels = paths.level_of(g)
        depth = max(levels.values())
        for node_id, level in levels.items():
            if level < depth:
                assert g.out_degree(node_id) >= 1, node_id
            if level > 1:
                assert g.in_degree(node_id) >= 1, node_id

    def test_validated(self):
        # generate_task_graph validates internally; double-check anchors.
        g = generate_task_graph(RandomGraphConfig(), rng=random.Random(5))
        for n in g.input_subtasks():
            assert g.node(n).release == 0.0
        for n in g.output_subtasks():
            assert g.node(n).end_to_end_deadline is not None

    def test_integer_times(self):
        cfg = RandomGraphConfig(integer_times=True)
        g = generate_task_graph(cfg, rng=random.Random(5))
        for sub in g.nodes():
            assert sub.wcet == int(sub.wcet)
        for m in g.messages():
            assert m.size == int(m.size)

    def test_impossible_depth_rejected(self):
        cfg = RandomGraphConfig(n_subtasks_range=(4, 4), depth_range=(8, 8))
        with pytest.raises(GeneratorError):
            generate_task_graph(cfg, rng=random.Random(0))


class TestDeadlinesAndMessages:
    def test_graph_workload_olr(self):
        cfg = RandomGraphConfig(olr_basis="graph-workload")
        g = generate_task_graph(cfg, rng=random.Random(11))
        expected = 1.5 * g.total_workload()
        for n in g.output_subtasks():
            assert g.node(n).end_to_end_deadline == pytest.approx(expected)

    def test_path_workload_olr(self):
        cfg = RandomGraphConfig(olr_basis="path-workload")
        g = generate_task_graph(cfg, rng=random.Random(11))
        # Each output's anchor is 1.5x the heaviest path ending at it; the
        # heaviest overall path ends at some output with anchor 1.5 x length.
        longest = paths.longest_path_length(g)
        anchors = [
            g.node(n).end_to_end_deadline for n in g.output_subtasks()
        ]
        assert max(anchors) == pytest.approx(1.5 * longest)
        assert all(a <= 1.5 * longest + 1e-9 for a in anchors)

    def test_ccr_close_to_configured(self):
        # Mean message size should be near CCR x MET over many samples.
        graphs = generate_task_graphs(20, RandomGraphConfig(), seed=5)
        sizes = [m.size for g in graphs for m in g.messages()]
        mean = sum(sizes) / len(sizes)
        assert mean == pytest.approx(20.0, rel=0.1)

    def test_zero_ccr_means_no_message_volume(self):
        cfg = RandomGraphConfig(communication_to_computation_ratio=0.0)
        g = generate_task_graph(cfg, rng=random.Random(2))
        assert g.total_message_volume() == 0.0


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_task_graph(RandomGraphConfig(), rng=random.Random(42))
        b = generate_task_graph(RandomGraphConfig(), rng=random.Random(42))
        assert a.node_ids() == b.node_ids()
        assert a.edges() == b.edges()
        assert [s.wcet for s in a.nodes()] == [s.wcet for s in b.nodes()]

    def test_batch_graphs_differ(self):
        graphs = generate_task_graphs(4, RandomGraphConfig(), seed=0)
        shapes = {(g.n_subtasks, g.n_edges) for g in graphs}
        assert len(shapes) > 1

    def test_batch_reproducible(self):
        a = generate_task_graphs(3, RandomGraphConfig(), seed=9)
        b = generate_task_graphs(3, RandomGraphConfig(), seed=9)
        for ga, gb in zip(a, b):
            assert ga.edges() == gb.edges()
