"""Laxity-ratio metrics: formulas, virtual costs, telescoping."""

import pytest

from repro.core.commcost import CCNE
from repro.core.expanded import ENode, ExpandedGraph
from repro.core.metrics import (
    AdaptiveLaxityRatio,
    MetricContext,
    NormalizedLaxityRatio,
    PureLaxityRatio,
    ThresholdLaxityRatio,
    make_metric,
)
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph


def task_node(cost: float, eid: str = "t") -> ENode:
    return ENode(eid=eid, kind="task", cost=cost, task_id=eid)


def comm_node(cost: float) -> ENode:
    return ENode(eid="chi(a->b)", kind="comm", cost=cost, edge=("a", "b"))


def chain_context(n_processors=None):
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=30.0)
    g.add_subtask("c", wcet=20.0, end_to_end_deadline=120.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    expanded = ExpandedGraph(g, CCNE())
    return expanded, MetricContext(graph=g, n_processors=n_processors)


class TestPure:
    def test_ratio_equal_share(self):
        m = PureLaxityRatio()
        # D=120, C=60, n=3 -> slack 60 split three ways.
        assert m.ratio(120.0, 60.0, 3) == 20.0

    def test_relative_deadline(self):
        m = PureLaxityRatio()
        assert m.relative_deadline(task_node(10.0), 20.0) == 30.0

    def test_telescoping(self):
        m = PureLaxityRatio()
        costs = [10.0, 30.0, 20.0]
        ratio = m.ratio(120.0, sum(costs), len(costs))
        total = sum(m.relative_deadline(task_node(c), ratio) for c in costs)
        assert total == pytest.approx(120.0)

    def test_negative_slack(self):
        m = PureLaxityRatio()
        assert m.ratio(50.0, 60.0, 2) == -5.0

    def test_empty_path_rejected(self):
        with pytest.raises(ValidationError):
            PureLaxityRatio().ratio(10.0, 0.0, 0)


class TestNorm:
    def test_ratio_proportional(self):
        m = NormalizedLaxityRatio()
        assert m.ratio(120.0, 60.0, 3) == 1.0  # (120-60)/60

    def test_relative_deadline_scales_cost(self):
        m = NormalizedLaxityRatio()
        assert m.relative_deadline(task_node(10.0), 1.0) == 20.0

    def test_telescoping(self):
        m = NormalizedLaxityRatio()
        costs = [10.0, 30.0, 20.0]
        ratio = m.ratio(90.0, sum(costs), len(costs))
        total = sum(m.relative_deadline(task_node(c), ratio) for c in costs)
        assert total == pytest.approx(90.0)

    def test_zero_cost_path_rejected(self):
        with pytest.raises(ValidationError):
            NormalizedLaxityRatio().ratio(10.0, 0.0, 2)

    def test_does_not_use_count(self):
        assert NormalizedLaxityRatio.uses_count is False
        assert PureLaxityRatio.uses_count is True


class TestThres:
    def test_virtual_cost_above_threshold(self):
        m = ThresholdLaxityRatio(surplus=1.0, threshold=25.0)
        expanded, context = chain_context()
        m.prepare(expanded, context)
        assert m.virtual_cost(task_node(30.0)) == 60.0
        assert m.virtual_cost(task_node(20.0)) == 20.0

    def test_threshold_boundary_inclusive(self):
        m = ThresholdLaxityRatio(surplus=1.0, threshold=25.0)
        m.prepare(*chain_context())
        assert m.virtual_cost(task_node(25.0)) == 50.0

    def test_default_threshold_from_met(self):
        # Chain MET = 20 -> threshold 1.25 * 20 = 25.
        m = ThresholdLaxityRatio(surplus=1.0)
        m.prepare(*chain_context())
        assert m.virtual_cost(task_node(24.9)) == 24.9
        assert m.virtual_cost(task_node(25.1)) == pytest.approx(50.2)

    def test_comm_nodes_never_inflated(self):
        m = ThresholdLaxityRatio(surplus=1.0, threshold=1.0)
        m.prepare(*chain_context())
        assert m.virtual_cost(comm_node(100.0)) == 100.0

    def test_telescoping_with_virtual_costs(self):
        m = ThresholdLaxityRatio(surplus=1.0, threshold=25.0)
        m.prepare(*chain_context())
        nodes = [task_node(10.0, "a"), task_node(30.0, "b"), task_node(20.0, "c")]
        virtual = sum(m.virtual_cost(n) for n in nodes)
        ratio = m.ratio(120.0, virtual, len(nodes))
        total = sum(m.relative_deadline(n, ratio) for n in nodes)
        assert total == pytest.approx(120.0)

    def test_bad_params(self):
        with pytest.raises(ValidationError):
            ThresholdLaxityRatio(surplus=-1.0)
        with pytest.raises(ValidationError):
            ThresholdLaxityRatio(threshold=-5.0)
        with pytest.raises(ValidationError):
            ThresholdLaxityRatio(threshold_factor=0.0)


class TestAdapt:
    def test_surplus_is_parallelism_over_processors(self):
        m = AdaptiveLaxityRatio(threshold=25.0)
        expanded, context = chain_context(n_processors=2)
        m.prepare(expanded, context)
        # Chain graph: parallelism 1 -> surplus 0.5 on 2 processors.
        assert m.effective_surplus == pytest.approx(0.5)
        assert m.virtual_cost(task_node(30.0)) == pytest.approx(45.0)

    def test_surplus_fades_with_system_size(self):
        m = AdaptiveLaxityRatio(threshold=25.0)
        expanded, context = chain_context(n_processors=100)
        m.prepare(expanded, context)
        assert m.effective_surplus == pytest.approx(0.01)

    def test_requires_system_size(self):
        m = AdaptiveLaxityRatio()
        expanded, context = chain_context(n_processors=None)
        with pytest.raises(ValidationError, match="n_processors"):
            m.prepare(expanded, context)

    def test_rejects_zero_processors(self):
        m = AdaptiveLaxityRatio()
        expanded, context = chain_context(n_processors=0)
        with pytest.raises(ValidationError):
            m.prepare(expanded, context)


class TestContext:
    def test_context_facts(self):
        _, context = chain_context(n_processors=4)
        assert context.mean_execution_time == 20.0
        assert context.average_parallelism == 1.0
        assert context.n_processors == 4


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("PURE", PureLaxityRatio),
            ("norm", NormalizedLaxityRatio),
            ("Thres", ThresholdLaxityRatio),
            ("ADAPT", AdaptiveLaxityRatio),
        ],
    )
    def test_make(self, name, cls):
        assert isinstance(make_metric(name), cls)

    def test_make_with_kwargs(self):
        m = make_metric("THRES", surplus=4.0)
        assert m.surplus == 4.0

    def test_unknown(self):
        with pytest.raises(ValidationError):
            make_metric("BOGUS")
