"""Concurrency and graceful-shutdown behavior of the service.

Two failure families a single-client lifecycle test can't see:

* **interleaving** — N clients with overlapping jobs must each get
  exactly their own records (worker pools sharing one process make
  cross-contamination the default failure mode, not an exotic one),
  and every observer must see job states move monotonically forward;
* **shutdown** — SIGTERM must drain: the in-flight job finishes and
  persists, queued jobs stay queued, and a restarted server picks them
  up and completes them. Progress must never be lost to a *polite*
  shutdown (the SIGKILL case lives in test_serve.py).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.serve.app import ServiceConfig, ServiceHandle
from repro.serve.jobs import JobState
from tests.serve_client import (
    ServerProcess,
    direct_records,
    fetch_records,
    poll_job,
    request_json,
    slow_job,
    submit,
    tiny_job,
    wait_for,
    wait_terminal,
)


class TestConcurrentClients:
    def test_overlapping_jobs_isolated_and_monotonic(self, tmp_path):
        """Six clients, four workers: every client gets its own job's
        records, and no poller ever sees a state move backwards."""
        config = ServiceConfig(data_dir=str(tmp_path / "data"), workers=4)
        documents = [
            tiny_job(name=f"client-{i}", seed=100 + i, n_graphs=2, sizes=(2, 3))
            for i in range(6)
        ]
        outcomes = [None] * len(documents)

        def client(i: int) -> None:
            try:
                job_id = submit(handle.port, documents[i])
                states = []
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    state = poll_job(handle.port, job_id)["state"]
                    if not states or states[-1] != state:
                        states.append(state)
                    if state in JobState.TERMINAL:
                        break
                    time.sleep(0.01)
                records = fetch_records(handle.port, job_id)
                outcomes[i] = {"states": states, "records": records}
            except BaseException as exc:  # surfaced by the main thread
                outcomes[i] = {"error": repr(exc)}

        with ServiceHandle(config) as handle:
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(documents))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

        for i, outcome in enumerate(outcomes):
            assert outcome is not None, f"client {i} never finished"
            assert "error" not in outcome, (i, outcome)
            assert outcome["states"][-1] == JobState.DONE, (i, outcome["states"])
            ranks = [JobState.ORDER[state] for state in outcome["states"]]
            assert ranks == sorted(ranks), (i, outcome["states"])
            assert outcome["records"] == direct_records(documents[i]), i

    def test_full_queue_is_503_with_retry_after(self, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "data"), workers=1, queue_size=2
        )
        with ServiceHandle(config) as handle:
            running = submit(handle.port, slow_job(name="hog", seed=61))
            wait_for(
                lambda: poll_job(handle.port, running)["state"] == JobState.RUNNING,
                message="the hog job to start",
            )
            queued = [
                submit(handle.port, tiny_job(name=f"q{i}", seed=70 + i))
                for i in range(2)
            ]
            status, body = request_json(
                handle.port, "POST", "/v1/jobs", tiny_job(name="overflow", seed=80)
            )
            assert status == 503
            assert body["error"]["status"] == 503

            # rejected submissions leave no orphan rows behind
            status, listing = request_json(handle.port, "GET", "/v1/jobs")
            names = [job["name"] for job in listing["jobs"]]
            assert "overflow" not in names

            for job_id in [running] + queued:
                request_json(handle.port, "DELETE", f"/v1/jobs/{job_id}")
            for job_id in [running] + queued:
                wait_terminal(handle.port, job_id)


class TestGracefulShutdown:
    def test_sigterm_drains_running_persists_queued(self, tmp_path):
        data_dir = str(tmp_path / "data")
        running_doc = slow_job(name="draining", seed=67)
        queued_docs = [tiny_job(name=f"parked-{i}", seed=90 + i) for i in range(2)]

        with ServerProcess(data_dir, "--workers", "1") as first:
            running_id = submit(first.port, running_doc)
            wait_for(
                lambda: poll_job(first.port, running_id)
                .get("progress", {})
                .get("done", 0)
                > 0,
                message="the draining job to make progress",
            )
            queued_ids = [submit(first.port, doc) for doc in queued_docs]
            for job_id in queued_ids:
                assert poll_job(first.port, job_id)["state"] == JobState.QUEUED

            exit_code = first.sigterm(timeout=120)
            assert exit_code == 0, "".join(first.stderr_lines)

        # The drained server finished its in-flight job and wrote the
        # result; the queued jobs were persisted untouched. A restart
        # proves both by serving the former and completing the latter.
        with ServerProcess(data_dir, "--workers", "1") as second:
            final = poll_job(second.port, running_id)
            assert final["state"] == JobState.DONE
            assert final["attempts"] == 1  # finished by generation one
            records = fetch_records(second.port, running_id)
            assert json.dumps(records, sort_keys=True) == json.dumps(
                direct_records(running_doc), sort_keys=True
            )

            for job_id, document in zip(queued_ids, queued_docs):
                assert wait_terminal(second.port, job_id)["state"] == JobState.DONE
                assert fetch_records(second.port, job_id) == direct_records(document)
