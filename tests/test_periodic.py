"""Periodic task support: hyperperiod and LCM unrolling."""

import pytest

from repro.errors import ValidationError
from repro.graph.periodic import CrossTaskArc, PeriodicTask, hyperperiod, unroll
from repro.graph.taskgraph import TaskGraph


def single_node_task(name: str, wcet: float, deadline: float) -> TaskGraph:
    g = TaskGraph(name=name)
    g.add_subtask("n", wcet=wcet, release=0.0, end_to_end_deadline=deadline)
    return g


class TestHyperperiod:
    def test_integers(self):
        assert hyperperiod([10, 20, 40]) == 40.0
        assert hyperperiod([3, 5]) == 15.0

    def test_single(self):
        assert hyperperiod([7]) == 7.0

    def test_fractions(self):
        assert hyperperiod([0.5, 0.75]) == pytest.approx(1.5)

    def test_empty(self):
        with pytest.raises(ValidationError):
            hyperperiod([])


class TestPeriodicTask:
    def test_deadline_must_fit_period(self):
        g = single_node_task("t", wcet=5.0, deadline=30.0)
        with pytest.raises(ValidationError, match="period"):
            PeriodicTask("T", g, period=20.0)

    def test_ok(self):
        g = single_node_task("t", wcet=5.0, deadline=10.0)
        assert PeriodicTask("T", g, period=20.0).period == 20.0

    def test_nonpositive_period(self):
        g = single_node_task("t", wcet=5.0, deadline=10.0)
        with pytest.raises(ValidationError):
            PeriodicTask("T", g, period=0.0)


class TestUnroll:
    def test_instance_counts(self):
        t1 = PeriodicTask("A", single_node_task("a", 2.0, 8.0), period=10.0)
        t2 = PeriodicTask("B", single_node_task("b", 3.0, 15.0), period=20.0)
        out = unroll([t1, t2])
        # hyperperiod 20: two A instances, one B instance.
        assert out.n_subtasks == 3
        assert "A#0:n" in out and "A#1:n" in out and "B#0:n" in out

    def test_instance_anchors_shift_by_period(self):
        t1 = PeriodicTask("A", single_node_task("a", 2.0, 8.0), period=10.0)
        t2 = PeriodicTask("B", single_node_task("b", 3.0, 15.0), period=20.0)
        out = unroll([t1, t2])
        assert out.node("A#0:n").release == 0.0
        assert out.node("A#0:n").end_to_end_deadline == 8.0
        assert out.node("A#1:n").release == 10.0
        assert out.node("A#1:n").end_to_end_deadline == 18.0

    def test_intra_task_edges_replicated(self):
        g = TaskGraph("t")
        g.add_subtask("x", wcet=1.0, release=0.0)
        g.add_subtask("y", wcet=1.0, end_to_end_deadline=5.0)
        g.add_edge("x", "y", message_size=2.0)
        out = unroll([PeriodicTask("A", g, period=5.0)])
        assert out.has_edge("A#0:x", "A#0:y")
        assert out.message("A#0:x", "A#0:y").size == 2.0

    def test_cross_task_arc_rate_transition(self):
        # Producer period 10 (2 instances), consumer period 20 (1 instance):
        # only A#0 (window [0,10)) feeds B#0 (released at 0).
        t1 = PeriodicTask("A", single_node_task("a", 2.0, 8.0), period=10.0)
        t2 = PeriodicTask("B", single_node_task("b", 3.0, 15.0), period=20.0)
        out = unroll(
            [t1, t2], [CrossTaskArc("A", "n", "B", "n", message_size=1.0)]
        )
        assert out.has_edge("A#0:n", "B#0:n")
        assert not out.has_edge("A#1:n", "B#0:n")

    def test_cross_task_arc_fan_out(self):
        # Producer period 20 feeds both consumer instances of period 10.
        t1 = PeriodicTask("A", single_node_task("a", 2.0, 18.0), period=20.0)
        t2 = PeriodicTask("B", single_node_task("b", 3.0, 8.0), period=10.0)
        out = unroll(
            [t1, t2], [CrossTaskArc("A", "n", "B", "n")]
        )
        assert out.has_edge("A#0:n", "B#0:n")
        assert out.has_edge("A#0:n", "B#1:n")

    def test_duplicate_names_rejected(self):
        t = PeriodicTask("A", single_node_task("a", 1.0, 4.0), period=5.0)
        with pytest.raises(ValidationError, match="unique"):
            unroll([t, t])

    def test_unknown_arc_endpoints_rejected(self):
        t1 = PeriodicTask("A", single_node_task("a", 2.0, 8.0), period=10.0)
        with pytest.raises(ValidationError):
            unroll([t1], [CrossTaskArc("A", "n", "ZZ", "n")])
        with pytest.raises(ValidationError):
            unroll([t1, t1_copy("B")], [CrossTaskArc("A", "zzz", "B", "n")])

    def test_empty_task_set_rejected(self):
        with pytest.raises(ValidationError):
            unroll([])


def t1_copy(name: str) -> PeriodicTask:
    return PeriodicTask(name, single_node_task("n2", 2.0, 8.0), period=10.0)
