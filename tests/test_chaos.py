"""Chaos engine: new fault kinds, supervision (stall/escalation/
failover), and the seeded chaos campaigns.

Like test_fault_tolerance.py, everything here is deterministic: plans
are seeded, fire-once markers make process-killing faults converge, and
the parent-pid guard bounds every campaign. Supervision timeouts are
shortened far below the CLI defaults so the suite stays fast.
"""

import os
import time

import pytest

from repro.errors import ExperimentError, ExperimentWarning
from repro.feast import faultinject
from repro.feast.backends.work import RetryPolicy
from repro.feast.chaos import (
    build_fault_plan,
    chaos_config,
    plan_expectations,
    render_chaos_report,
    run_chaos,
)
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.faultinject import FaultPlan, FaultSpec
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


def chaos_test_config(**kwargs):
    defaults = dict(
        name="chaos-t",
        description="chaos engine test",
        methods=(MethodSpec(label="PURE", metric="PURE"),),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(6, 8), depth_range=(2, 3)
        ),
        scenarios=("MDET",),
        n_graphs=6,
        system_sizes=(2,),
        seed=23,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


#: Supervision policy with test-fast stall detection and backoffs.
SUPERVISED = RetryPolicy(
    max_attempts=4,
    backoff_base=0.01,
    backoff_factor=2.0,
    backoff_max=0.05,
    stall_timeout=0.8,
    stall_grace=0.5,
)


def dicts(result):
    return [r.as_dict() for r in result.records]


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faultinject.uninstall()
    yield
    faultinject.uninstall()


class TestNewFaultKinds:
    def test_all_builtin_kinds_construct(self):
        for kind in ("crash", "error", "hang", "stubborn-hang", "spin",
                     "slow-io", "exit", "truncate-journal"):
            FaultSpec(scenario="MDET", index=0, kind=kind)

    def test_spec_roundtrip_preserves_once_and_amount(self):
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=1, kind="truncate-journal",
                      once=True, amount=37),
        ), parent_pid=9, state_dir="/tmp/x")
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_spin_and_slow_io_delay_without_failing(self):
        for kind in ("spin", "slow-io"):
            spec = FaultSpec(scenario="MDET", index=0, kind=kind,
                             seconds=0.05)
            plan = FaultPlan(faults=(spec,), parent_pid=1)
            with faultinject.active(plan):
                began = time.monotonic()
                faultinject.maybe_inject("MDET", 0, 0)
                assert time.monotonic() - began >= 0.04

    def test_lethal_kinds_never_fire_in_parent(self):
        for kind in ("exit", "truncate-journal", "stubborn-hang"):
            plan = FaultPlan(faults=(
                FaultSpec(scenario="MDET", index=0, kind=kind,
                          attempts=None, seconds=30.0),
            ))
            with faultinject.active(plan):
                # We ARE the installing process: must be a no-op.
                faultinject.maybe_inject("MDET", 0, 0)

    def test_truncate_without_journal_context_is_noop(self):
        faultinject.set_journal_context(None)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="truncate-journal",
                      attempts=None),
        ), parent_pid=1)
        with faultinject.active(plan):
            faultinject.maybe_inject("MDET", 0, 0)  # no os._exit, no error

    def test_once_fault_fires_exactly_once(self, tmp_path):
        spec = FaultSpec(scenario="MDET", index=0, kind="error", once=True)
        plan = FaultPlan(faults=(spec,), parent_pid=1,
                         state_dir=str(tmp_path))
        with faultinject.active(plan):
            with pytest.raises(faultinject.InjectedFaultError):
                faultinject.maybe_inject("MDET", 0, 0)
            faultinject.maybe_inject("MDET", 0, 0)  # marker: no refire
        assert any(f.endswith(".fired") for f in os.listdir(tmp_path))

    def test_install_provisions_and_active_cleans_state_dir(self):
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="error", once=True),
        ))
        with faultinject.active(plan):
            installed = FaultPlan.from_json(
                os.environ[faultinject.ENV_VAR]
            )
            assert installed.state_dir
            assert os.path.isdir(installed.state_dir)
        assert not os.path.isdir(installed.state_dir)

    def test_register_custom_fault_kind(self):
        fired = []
        faultinject.register_fault_kind("note", lambda spec: fired.append(
            spec.message
        ))
        try:
            plan = FaultPlan(faults=(
                FaultSpec(scenario="MDET", index=0, kind="note",
                          message="hello"),
            ), parent_pid=1)
            with faultinject.active(plan):
                faultinject.maybe_inject("MDET", 0, 0)
            assert fired == ["hello"]
        finally:
            faultinject.FAULT_KINDS.pop("note", None)


class TestSupervision:
    """Stall detection, escalation, and failover on the shard fleet."""

    def test_hang_is_stall_detected_and_recovered(self, tmp_path):
        cfg = chaos_test_config()
        expected = dicts(run_experiment(cfg, jobs=1))
        scenario, index = list(cfg.chunk_keys())[0]  # shard 0, chunk 0
        plan = FaultPlan(faults=(
            FaultSpec(scenario=scenario, index=index, kind="hang",
                      once=True, seconds=30.0),
        ))
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="stalled"):
                result = run_experiment(
                    cfg, backend="subprocess", shards=2,
                    checkpoint=str(tmp_path / "ck"), retry=SUPERVISED,
                )
        assert dicts(result) == expected
        assert result.supervision.stalls_detected >= 1
        assert result.supervision.relaunches >= 1
        assert result.fallback_reason is None

    def test_stubborn_hang_escalates_to_sigkill(self, tmp_path):
        cfg = chaos_test_config(n_graphs=4)
        expected = dicts(run_experiment(cfg, jobs=1))
        scenario, index = list(cfg.chunk_keys())[0]
        plan = FaultPlan(faults=(
            FaultSpec(scenario=scenario, index=index, kind="stubborn-hang",
                      once=True, seconds=30.0),
        ))
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="SIGKILL"):
                result = run_experiment(
                    cfg, backend="subprocess", shards=2,
                    checkpoint=str(tmp_path / "ck"), retry=SUPERVISED,
                )
        assert dicts(result) == expected
        assert result.supervision.stalls_detected >= 1
        assert result.supervision.kills_escalated >= 1

    def test_poisoned_shard_fails_over_to_survivors(self, tmp_path):
        cfg = chaos_test_config()
        expected = dicts(run_experiment(cfg, jobs=1))
        # Shard 1's second chunk (2 shards): dies there on every launch.
        scenario, index = list(cfg.chunk_keys())[3]
        plan = FaultPlan(faults=(
            FaultSpec(scenario=scenario, index=index, kind="exit",
                      attempts=None),
        ))
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="failing over"):
                result = run_experiment(
                    cfg, backend="subprocess", shards=2,
                    checkpoint=str(tmp_path / "ck"), retry=SUPERVISED,
                )
        assert dicts(result) == expected
        assert result.supervision.shards_failed_over == 1
        assert result.supervision.chunks_reassigned >= 1
        # The poisoned chunk itself ran in the parent, where the fault
        # is inert; nothing may be quarantined or lost.
        assert result.quarantined == []
        assert result.fallback_reason is not None
        ck = tmp_path / "ck"
        assert any(
            name.startswith("failover-1-") for name in os.listdir(ck)
        )

    def test_journal_truncation_is_repaired_and_replayed(self, tmp_path):
        cfg = chaos_test_config()
        expected = dicts(run_experiment(cfg, jobs=1))
        # Shard 0's third chunk: by then two chunks are journaled, so
        # the truncation tears a real record.
        scenario, index = list(cfg.chunk_keys())[4]
        plan = FaultPlan(faults=(
            FaultSpec(scenario=scenario, index=index,
                      kind="truncate-journal", once=True, amount=25),
        ))
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="relaunching"):
                result = run_experiment(
                    cfg, backend="subprocess", shards=2,
                    checkpoint=str(tmp_path / "ck"), retry=SUPERVISED,
                )
        assert dicts(result) == expected
        assert result.supervision.relaunches >= 1
        assert result.supervision.chunks_replayed >= 1

    def test_supervision_stats_surface_on_clean_runs_too(self):
        cfg = chaos_test_config(n_graphs=2)
        result = run_experiment(cfg, backend="subprocess", shards=2)
        assert result.supervision is not None
        assert not result.supervision.any()


class TestChaosCampaign:
    def test_fault_plan_is_seed_deterministic(self):
        cfg = chaos_config(5)
        a = build_fault_plan(5, cfg, "subprocess", 3)
        b = build_fault_plan(5, cfg, "subprocess", 3)
        assert a.faults == b.faults
        assert build_fault_plan(6, cfg, "subprocess", 3).faults != a.faults

    def test_subprocess_plan_guarantees_required_coverage(self):
        cfg = chaos_config(0)
        plan = build_fault_plan(0, cfg, "subprocess", 3)
        kinds = [s.kind for s in plan.faults]
        assert "hang" in kinds
        assert "truncate-journal" in kinds
        assert "exit" in kinds
        ordinals = {k: i for i, k in enumerate(cfg.chunk_keys())}
        shards_hit = {
            ordinals[(s.scenario, s.index)] % 3
            for s in plan.faults if s.kind in ("hang", "truncate-journal",
                                               "exit")
        }
        assert len(shards_hit) >= 2

    def test_subprocess_plan_requires_two_shards(self):
        cfg = chaos_config(0)
        with pytest.raises(ExperimentError, match=">= 2 shards"):
            build_fault_plan(0, cfg, "subprocess", 1)

    def test_expectations_derived_from_plan(self):
        cfg = chaos_config(0)
        plan = build_fault_plan(0, cfg, "subprocess", 3)
        names = {e.counter for e in plan_expectations(plan, "subprocess")}
        assert {"stalls_detected", "shards_failed_over",
                "chunks_replayed", "relaunches"} <= names
        assert plan_expectations(plan, "serial") == []

    def test_serial_campaign_passes(self):
        report = run_chaos(
            seed=1, backend="serial",
            config=chaos_test_config(name="chaos"),
        )
        assert report.ok and report.identical
        assert "PASS" in render_chaos_report(report)

    def test_campaign_report_flags_divergence(self):
        report = run_chaos(
            seed=1, backend="serial",
            config=chaos_test_config(name="chaos"),
        )
        report.identical = False
        assert not report.ok
        assert report.as_dict()["ok"] is False
        assert "FAIL" in render_chaos_report(report)

    def test_subprocess_campaign_end_to_end(self, tmp_path):
        """The acceptance campaign: hang + exit + truncation across
        shards, byte-identical records, stall + failover exercised."""
        report = run_chaos(
            seed=2, backend="subprocess", shards=3,
            out=str(tmp_path / "artifacts"),
            config=chaos_test_config(name="chaos", n_graphs=9),
            policy=SUPERVISED,
        )
        assert report.identical
        assert report.quarantined == []
        assert report.supervision.stalls_detected >= 1
        assert report.supervision.shards_failed_over >= 1
        assert all(e.met for e in report.expectations)
        assert report.ok
        artifacts = tmp_path / "artifacts"
        assert (artifacts / "fault-plan.json").exists()
        assert (artifacts / "report.json").exists()
        assert (artifacts / "chaos.events.jsonl").exists()
