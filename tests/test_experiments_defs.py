"""Canonical experiment definitions: registry completeness and contracts."""

import pytest

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig
from repro.feast.experiments import (
    EXPERIMENTS,
    build_experiment,
    figure2,
    figure3,
    figure4,
    figure5,
)
from repro.feast.runner import run_experiment


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for figure in ("figure2", "figure3", "figure4", "figure5"):
            assert figure in EXPERIMENTS

    def test_all_section8_extensions_registered(self):
        for ext in (
            "ext-ccr", "ext-met", "ext-parallelism", "ext-topology",
            "ext-structured", "ext-policy", "ext-locality",
            "ext-baselines", "ext-heterogeneous", "ext-realistic",
        ):
            assert ext in EXPERIMENTS

    def test_all_ablations_registered(self):
        for ablation in (
            "ablation-olr", "ablation-bus", "ablation-release",
            "ablation-clamp",
        ):
            assert ablation in EXPERIMENTS

    def test_all_builders_produce_valid_configs(self):
        for name in EXPERIMENTS:
            configs = build_experiment(name, n_graphs=2, system_sizes=(2, 4))
            assert configs, name
            for cfg in configs:
                assert isinstance(cfg, ExperimentConfig)
                assert cfg.n_graphs == 2

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            build_experiment("figure99")


class TestFigureDefinitions:
    def test_figure2_methods(self):
        (cfg,) = figure2()
        labels = {m.label for m in cfg.methods}
        assert labels == {"PURE/CCNE", "PURE/CCAA", "NORM/CCNE", "NORM/CCAA"}
        assert cfg.n_graphs == 128
        assert cfg.scenarios == ("LDET", "MDET", "HDET")

    def test_figure3_surpluses(self):
        (cfg,) = figure3()
        surpluses = {m.surplus for m in cfg.methods}
        assert surpluses == {1.0, 2.0, 4.0}
        assert all(m.metric == "THRES" for m in cfg.methods)

    def test_figure4_thresholds(self):
        (cfg,) = figure4()
        factors = {m.threshold_factor for m in cfg.methods}
        assert factors == {0.75, 1.0, 1.25}
        assert all(m.surplus == 1.0 for m in cfg.methods)

    def test_figure5_methods(self):
        (cfg,) = figure5()
        assert [m.label for m in cfg.methods] == ["PURE", "THRES", "ADAPT"]
        thres = next(m for m in cfg.methods if m.label == "THRES")
        assert thres.surplus == 1.0 and thres.threshold_factor == 1.25


class TestExtensionDefinitions:
    def test_ext_ccr_one_config_per_ratio(self):
        configs = build_experiment("ext-ccr", n_graphs=2)
        ratios = [
            c.graph_config.communication_to_computation_ratio for c in configs
        ]
        assert ratios == [0.1, 0.5, 1.0, 2.0, 4.0]

    def test_ext_topology_configs(self):
        configs = build_experiment("ext-topology", n_graphs=2)
        assert [c.topology for c in configs] == [
            "bus", "fully-connected", "ring", "mesh",
        ]

    def test_ext_structured_factories_run(self):
        configs = build_experiment(
            "ext-structured", n_graphs=1, system_sizes=(2,)
        )
        for cfg in configs:
            result = run_experiment(cfg)
            assert len(result) == 2  # two methods x one graph x one size

    def test_ext_locality_pins_fraction(self):
        import random

        configs = build_experiment("ext-locality", n_graphs=1)
        full = configs[-1]
        graph = full.graph_factory(
            full.graph_config, random.Random(0)
        )
        assert len(graph.pinned_subtasks()) == graph.n_subtasks
        # Pins stay within the smallest swept system size.
        assert all(
            graph.node(n).pinned_to < min(full.system_sizes)
            for n in graph.pinned_subtasks()
        )

    def test_ablation_release_flags(self):
        configs = build_experiment("ablation-release", n_graphs=1)
        assert [c.respect_release_times for c in configs] == [False, True]

    def test_ablation_olr_covers_both_bases(self):
        configs = build_experiment("ablation-olr", n_graphs=1)
        bases = {c.graph_config.olr_basis for c in configs}
        assert bases == {"graph-workload", "path-workload"}

    def test_ablation_clamp_method_flags(self):
        (config,) = build_experiment("ablation-clamp", n_graphs=1)
        flags = {m.label: m.clamp_to_anchors for m in config.methods}
        assert flags == {
            "PURE/clamped": True, "ADAPT/clamped": True,
            "PURE/raw": False, "ADAPT/raw": False,
        }
        raw = next(m for m in config.methods if m.label == "PURE/raw")
        assert raw.build().clamp_to_anchors is False

    def test_ext_realistic_factories_run(self):
        configs = build_experiment(
            "ext-realistic", n_graphs=1, system_sizes=(2,)
        )
        assert [c.name.split("-")[-1] for c in configs] == [
            "automotive", "radar", "video",
        ]
        result = run_experiment(configs[0])
        assert len(result) == 2  # two methods x one graph x one size

    def test_ext_heterogeneous_profiles(self):
        configs = build_experiment("ext-heterogeneous", n_graphs=1)
        assert [c.speed_profile for c in configs] == [
            "uniform", "mixed", "one-fast",
        ]
        labels = {m.label for m in configs[0].methods}
        assert labels == {"PURE", "ADAPT", "ADAPT-C"}
