"""Adversarial-input corpus: hostile documents and hostile transports.

The contract under test: *every* malformed or hostile input yields a
structured 4xx naming the offending field — never a 500, never a hung
connection. The corpus covers both layers:

* document-level attacks (the parametrized corpus): truncated JSON,
  non-finite tokens, cyclic graphs, unknown fields, type confusion,
  schema violations — all shaped like things the ``repro fuzz``
  campaign emits (its reproducer files embed ``repro-taskgraph``
  documents, which is exactly the service's graph schema);
* transport-level attacks (raw sockets): garbage request lines,
  slow-loris reads, lying Content-Length, oversized heads and bodies,
  unsupported transfer encodings.

Every case here is a pinned regression: if validation is ever loosened,
the corpus says exactly which hostile shape got through.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve.app import ServiceConfig, ServiceHandle
from tests.serve_client import explicit_job, request, tiny_job

#: Tight read deadline so the slow-loris test concludes quickly.
REQUEST_TIMEOUT = 2.0


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        data_dir=str(tmp_path_factory.mktemp("serve-adversarial")),
        workers=1,
        request_timeout=REQUEST_TIMEOUT,
    )
    with ServiceHandle(config) as handle:
        yield handle


def _doc(**overrides):
    document = tiny_job(name="corpus", seed=1)
    document.update(overrides)
    return document


def _cyclic_graph():
    return {
        "format": "repro-taskgraph", "version": 1, "name": "cyc",
        "subtasks": [
            {"id": "a", "wcet": 1.0, "release": 0.0},
            {"id": "b", "wcet": 1.0, "end_to_end_deadline": 10.0},
        ],
        "edges": [{"src": "a", "dst": "b"}, {"src": "b", "dst": "a"}],
    }


def _anchorless_graph():
    return {
        "format": "repro-taskgraph", "version": 1, "name": "anchorless",
        "subtasks": [{"id": "a", "wcet": 1.0}, {"id": "b", "wcet": 1.0}],
        "edges": [{"src": "a", "dst": "b"}],
    }


def _fuzz_reproducer_shape():
    """The ``repro fuzz`` failure-file envelope posted as a job: the
    embedded graph is valid, but the envelope is the wrong format —
    the rejection must say so by field, not crash."""
    return {
        "format": "repro-qa-failure", "version": 1, "scenario": 7,
        "failing_checks": ["windows"], "details": {},
        "graph": explicit_job(seed=9, n=1)["graphs"][0],
    }


#: (name, body bytes, expected status, field-path substring or None).
CORPUS = [
    ("truncated_json", b'{"format": "repro-j', 400, None),
    ("empty_body", b"", 400, None),
    ("not_an_object", b"[1, 2, 3]", 400, None),
    ("scalar_body", b'"hello"', 400, None),
    ("invalid_utf8", b'{"name": "\xff\xfe"}', 400, None),
    ("nan_token", b'{"format": "repro-job", "version": 1, "x": NaN}', 400, None),
    ("infinity_token", b'{"a": Infinity}', 400, None),
    ("negative_infinity", b'{"a": -Infinity}', 400, None),
    ("duplicate_keys", b'{"format": "repro-job", "format": "repro-job"}', 400, None),
    ("wrong_format", json.dumps(_doc(format="not-a-job")).encode(), 400, "format"),
    ("wrong_version", json.dumps(_doc(version=99)).encode(), 400, "version"),
    ("fuzz_reproducer_envelope",
     json.dumps(_fuzz_reproducer_shape()).encode(), 400, "format"),
    ("unknown_top_field", json.dumps(_doc(bogus=1)).encode(), 400, "bogus"),
    ("empty_name", json.dumps(_doc(name="  ")).encode(), 400, "name"),
    ("long_name", json.dumps(_doc(name="x" * 200)).encode(), 400, "name"),
    ("no_workload_no_graphs",
     json.dumps({"format": "repro-job", "version": 1,
                 "methods": [{"label": "P", "metric": "PURE", "comm": "CCNE"}]}).encode(),
     400, None),
    ("both_workload_and_graphs",
     json.dumps(_doc(graphs=explicit_job(n=1)["graphs"])).encode(), 400, None),
    ("cyclic_graph",
     json.dumps({**explicit_job(n=1), "graphs": [_cyclic_graph()]}).encode(),
     400, "graphs[0]"),
    ("anchorless_graph",
     json.dumps({**explicit_job(n=1), "graphs": [_anchorless_graph()]}).encode(),
     400, "graphs[0]"),
    ("graph_not_object",
     json.dumps({**explicit_job(n=1), "graphs": ["nope"]}).encode(), 400, "graphs[0]"),
    ("empty_graphs", json.dumps({**explicit_job(n=1), "graphs": []}).encode(),
     400, "graphs"),
    ("negative_wcet",
     json.dumps({**explicit_job(n=1), "graphs": [{
         "format": "repro-taskgraph", "version": 1,
         "subtasks": [{"id": "a", "wcet": -1.0, "release": 0.0,
                       "end_to_end_deadline": 5.0}],
         "edges": []}]}).encode(),
     400, "graphs[0]"),
    ("string_wcet",
     json.dumps({**explicit_job(n=1), "graphs": [{
         "format": "repro-taskgraph", "version": 1,
         "subtasks": [{"id": "a", "wcet": "NaN", "release": 0.0,
                       "end_to_end_deadline": 5.0}],
         "edges": []}]}).encode(),
     400, "graphs[0].subtasks[0].wcet"),
    ("workload_not_object",
     json.dumps(_doc(workload="fast please")).encode(), 400, "workload"),
    ("zero_n_graphs",
     json.dumps(_doc(workload={"n_graphs": 0})).encode(), 400, "workload.n_graphs"),
    ("huge_n_graphs",
     json.dumps(_doc(workload={"n_graphs": 10**9})).encode(), 400, "workload.n_graphs"),
    ("bool_n_graphs",
     json.dumps(_doc(workload={"n_graphs": True})).encode(), 400, "workload.n_graphs"),
    ("unknown_scenario",
     json.dumps(_doc(workload={"scenarios": ["XDET"]})).encode(),
     400, "workload.scenarios[0]"),
    ("unknown_workload_field",
     json.dumps(_doc(workload={"speed": 11})).encode(), 400, "workload.speed"),
    ("bad_graph_config_range",
     json.dumps(_doc(workload={"graph_config": {"n_subtasks_range": [5]}})).encode(),
     400, "workload.graph_config.n_subtasks_range"),
    ("inverted_graph_config_range",
     json.dumps(_doc(workload={"graph_config": {"n_subtasks_range": [9, 2]}})).encode(),
     400, "workload.graph_config"),
    ("unsatisfiable_generator_ranges",
     # n_subtasks_range below the *default* depth_range: generation
     # would fail mid-run (need n >= depth), so submission must fail
     # instead — found by driving the live server, pinned here.
     json.dumps(_doc(workload={"graph_config": {"n_subtasks_range": [6, 8]}})).encode(),
     400, "workload.graph_config"),
    ("bad_deviation",
     json.dumps(_doc(workload={"graph_config": {"execution_time_deviation": 2.5}})).encode(),
     400, "workload.graph_config"),
    ("unknown_graph_config_field",
     json.dumps(_doc(workload={"graph_config": {"swagger": 1}})).encode(),
     400, "workload.graph_config.swagger"),
    ("empty_system_sizes",
     json.dumps(_doc(platform={"system_sizes": []})).encode(),
     400, "platform.system_sizes"),
    ("zero_processor",
     json.dumps(_doc(platform={"system_sizes": [2, 0]})).encode(),
     400, "platform.system_sizes[1]"),
    ("float_processor",
     json.dumps(_doc(platform={"system_sizes": [2.5]})).encode(),
     400, "platform.system_sizes[0]"),
    ("unknown_topology",
     json.dumps(_doc(platform={"topology": "hypercube"})).encode(),
     400, "platform.topology"),
    ("unknown_policy",
     json.dumps(_doc(platform={"policy": "FIFO"})).encode(), 400, "platform.policy"),
    ("unknown_speed_profile",
     json.dumps(_doc(platform={"speed_profile": "ludicrous"})).encode(),
     400, "platform.speed_profile"),
    ("missing_methods",
     json.dumps({k: v for k, v in _doc().items() if k != "methods"}).encode(),
     400, "methods"),
    ("empty_methods", json.dumps(_doc(methods=[])).encode(), 400, "methods"),
    ("method_not_object", json.dumps(_doc(methods=["PURE"])).encode(),
     400, "methods[0]"),
    ("method_without_label",
     json.dumps(_doc(methods=[{"metric": "PURE", "comm": "CCNE"}])).encode(),
     400, "methods[0].label"),
    ("unknown_metric",
     json.dumps(_doc(methods=[{"label": "X", "metric": "MAGIC", "comm": "CCNE"}])).encode(),
     400, "methods[0]"),
    ("unknown_method_field",
     json.dumps(_doc(methods=[{"label": "X", "metric": "PURE", "comm": "CCNE",
                               "turbo": True}])).encode(),
     400, "methods[0].turbo"),
    ("non_numeric_surplus",
     json.dumps(_doc(methods=[{"label": "X", "metric": "PURE", "comm": "CCNE",
                               "surplus": "lots"}])).encode(),
     400, "methods[0].surplus"),
    ("duplicate_labels",
     json.dumps(_doc(methods=[{"label": "X", "metric": "PURE", "comm": "CCNE"},
                              {"label": "X", "metric": "NORM", "comm": "CCNE"}])).encode(),
     400, "methods"),
]


@pytest.mark.parametrize(
    "name,body,expected_status,path_fragment",
    CORPUS,
    ids=[case[0] for case in CORPUS],
)
def test_corpus_rejected_structurally(server, name, body, expected_status, path_fragment):
    status, headers, raw = request(
        server.port, "POST", "/v1/jobs", body,
        {"Content-Type": "application/json"}, timeout=30,
    )
    assert status == expected_status, (name, status, raw[:300])
    assert 400 <= status < 500, name
    envelope = json.loads(raw)
    error = envelope["error"]
    assert error["status"] == expected_status
    assert error["title"]
    assert isinstance(error["fields"], list)
    if path_fragment is not None:
        paths = [field["path"] for field in error["fields"]]
        assert any(path_fragment in path for path in paths), (name, paths)
        for field in error["fields"]:
            assert field["message"], name


class TestTransportHostility:
    def test_wrong_content_type(self, server):
        status, _, raw = request(
            server.port, "POST", "/v1/jobs",
            json.dumps(tiny_job()).encode(), {"Content-Type": "text/plain"},
        )
        assert status == 415
        assert json.loads(raw)["error"]["status"] == 415

    def test_missing_content_type(self, server):
        conn_status, _, raw = request(
            server.port, "POST", "/v1/jobs", json.dumps(tiny_job()).encode(),
            {"Content-Type": ""},
        )
        assert conn_status == 415

    def test_oversized_body_is_413_not_oom(self, server):
        huge = b"x" * (3 * 1024 * 1024)
        status, _, raw = request(
            server.port, "POST", "/v1/jobs", huge,
            {"Content-Type": "application/json"},
        )
        assert status == 413
        assert json.loads(raw)["error"]["status"] == 413

    def test_unknown_route_and_method(self, server):
        status, _, raw = request(server.port, "GET", "/v2/jobs")
        assert status == 404
        assert json.loads(raw)["error"]["status"] == 404

        status, headers, raw = request(server.port, "PUT", "/v1/jobs", b"{}",
                                       {"Content-Type": "application/json"})
        assert status == 405
        assert "POST" in headers["allow"]

    def test_malformed_job_id_is_404(self, server):
        status, _, raw = request(server.port, "GET", "/v1/jobs/../../etc/passwd")
        assert status == 404

    def test_garbage_request_line(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            reply = _read_all(sock)
        assert b"400" in reply.split(b"\r\n", 1)[0]

    def test_chunked_transfer_encoding_refused(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            reply = _read_all(sock)
        assert b"501" in reply.split(b"\r\n", 1)[0]

    def test_post_without_content_length(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
            reply = _read_all(sock)
        assert b"411" in reply.split(b"\r\n", 1)[0]

    def test_lying_content_length_never_hangs(self, server):
        """Client declares 4096 bytes, sends 10, closes: 400, no hang."""
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 4096\r\n\r\n" + b'{"a": 1}'
            )
            sock.shutdown(socket.SHUT_WR)
            reply = _read_all(sock)
        assert b"400" in reply.split(b"\r\n", 1)[0]

    def test_slow_loris_times_out_with_408(self, server):
        """A stalled half-request is cut off at the read deadline, not
        held open forever."""
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost:")
            sock.settimeout(REQUEST_TIMEOUT + 10)
            reply = _read_all(sock)
        assert reply == b"" or b"408" in reply.split(b"\r\n", 1)[0]

    def test_oversized_header_block(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(
                b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n"
                + b"X-Filler: " + b"a" * 100_000 + b"\r\n\r\n"
            )
            reply = _read_all(sock)
        assert b"431" in reply.split(b"\r\n", 1)[0]

    def test_server_still_healthy_after_corpus(self, server):
        """The point of it all: a server that has eaten the entire
        corpus still serves clean requests."""
        status, _, raw = request(server.port, "GET", "/v1/healthz")
        assert status == 200
        assert json.loads(raw)["status"] == "ok"


class TestEdgeGates:
    """Auth and rate-limit rejections follow the same error contract."""

    def test_token_auth_gates_jobs_but_not_probes(self, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "data"), workers=1,
            auth="token", auth_token="sesame",
        )
        with ServiceHandle(config) as handle:
            status, _, raw = request(
                handle.port, "POST", "/v1/jobs",
                json.dumps(tiny_job()).encode(),
                {"Content-Type": "application/json"},
            )
            assert status == 401
            assert json.loads(raw)["error"]["status"] == 401

            status, _, raw = request(
                handle.port, "POST", "/v1/jobs",
                json.dumps(tiny_job()).encode(),
                {"Content-Type": "application/json",
                 "Authorization": "Bearer wrong"},
            )
            assert status == 401

            status, _, _ = request(
                handle.port, "POST", "/v1/jobs",
                json.dumps(tiny_job()).encode(),
                {"Content-Type": "application/json",
                 "Authorization": "Bearer sesame"},
            )
            assert status == 202

            # probes stay open: credentials rot, monitoring must not
            status, _, _ = request(handle.port, "GET", "/v1/healthz")
            assert status == 200
            status, _, _ = request(handle.port, "GET", "/v1/metrics")
            assert status == 200

    def test_rate_limit_throttles_submissions_with_retry_after(self, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "data"), workers=1,
            rate_limit=1.0, rate_burst=2,
        )
        with ServiceHandle(config) as handle:
            statuses = []
            for i in range(4):
                status, headers, raw = request(
                    handle.port, "POST", "/v1/jobs",
                    json.dumps(tiny_job(seed=200 + i)).encode(),
                    {"Content-Type": "application/json"},
                )
                statuses.append(status)
                if status == 429:
                    assert float(headers["retry-after"]) > 0
                    assert json.loads(raw)["error"]["status"] == 429
            assert statuses.count(202) == 2, statuses
            assert statuses.count(429) == 2, statuses

            # reads are not rate limited
            for _ in range(5):
                status, _, _ = request(handle.port, "GET", "/v1/jobs")
                assert status == 200


def _read_all(sock: socket.socket) -> bytes:
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except socket.timeout:
        pass
    return b"".join(chunks)
