"""The discrete-event run-time simulator."""

import pytest

from repro.core.slicer import bst
from repro.errors import SchedulingError, ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler
from repro.sched.simulator import (
    JitterModel,
    allocation_of,
    simulate_dynamic,
    simulate_fixed,
)


def assign(graph):
    return bst("PURE", "CCNE").distribute(graph)


@pytest.fixture
def chain():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=20.0)
    g.add_subtask("c", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b", message_size=5.0)
    g.add_edge("b", "c", message_size=5.0)
    return g


class TestJitterModel:
    def test_worst_case_default(self):
        assert JitterModel().actual("x", 10.0) == 10.0

    def test_scaling(self):
        assert JitterModel(low=0.5, high=0.5).actual("x", 10.0) == 5.0

    def test_deterministic_per_seed_and_node(self):
        j = JitterModel(low=0.5, high=1.0, seed=3)
        assert j.actual("x", 10.0) == j.actual("x", 10.0)
        assert j.actual("x", 10.0) != j.actual("y", 10.0)
        other = JitterModel(low=0.5, high=1.0, seed=4)
        assert j.actual("x", 10.0) != other.actual("x", 10.0)

    def test_within_bounds(self):
        j = JitterModel(low=0.4, high=0.9, seed=1)
        for node in "abcdefgh":
            assert 4.0 - 1e-9 <= j.actual(node, 10.0) <= 9.0 + 1e-9

    def test_bad_bounds(self):
        with pytest.raises(ValidationError):
            JitterModel(low=0.0, high=1.0)
        with pytest.raises(ValidationError):
            JitterModel(low=0.8, high=0.5)
        with pytest.raises(ValidationError):
            JitterModel(low=1.0, high=1.5)


class TestDynamic:
    def test_chain_runs_sequentially(self, chain):
        trace = simulate_dynamic(chain, assign(chain), System(2))
        # Co-located chain: completions stack up with no comm cost.
        assert trace.completion_time("a") == 10.0
        assert trace.completion_time("b") == 30.0
        assert trace.completion_time("c") == 40.0
        assert trace.makespan() == 40.0
        assert trace.preemptions == 0

    def test_jitter_shrinks_makespan(self, chain):
        full = simulate_dynamic(chain, assign(chain), System(2))
        half = simulate_dynamic(
            chain, assign(chain), System(2),
            jitter=JitterModel(low=0.5, high=0.5),
        )
        assert half.makespan() == pytest.approx(full.makespan() / 2)

    def test_matches_list_scheduler_on_worst_case(self, random_graph):
        """With WCET execution the dynamic executive is a (possibly
        different) valid schedule: same work, consistent trace, and a
        makespan in the same ballpark as the static list schedule."""
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        static = ListScheduler(System(4)).schedule(random_graph, assignment)
        trace = simulate_dynamic(random_graph, assignment, System(4))
        assert set(trace.completions) == set(random_graph.node_ids())
        assert trace.makespan() <= static.makespan() * 1.5

    def test_respects_pins(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        trace = simulate_dynamic(g, assign(g), System(4))
        assert trace.placements == {"a": 1, "b": 1}
        assert trace.makespan() == 20.0

    def test_lateness_accessors(self, chain):
        assignment = assign(chain)
        trace = simulate_dynamic(chain, assignment, System(2))
        lateness = trace.lateness(assignment)
        assert set(lateness) == {"a", "b", "c"}
        assert trace.max_lateness(assignment) == max(lateness.values())


class TestFixed:
    def test_replays_static_allocation(self, random_graph):
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        static = ListScheduler(System(4)).schedule(random_graph, assignment)
        allocation = allocation_of(static)
        trace = simulate_fixed(
            random_graph, assignment, System(4), allocation
        )
        assert trace.placements == allocation
        assert set(trace.completions) == set(random_graph.node_ids())

    def test_nonpreemptive_runs_to_completion(self):
        # Low-priority long task starts first (only ready task); the
        # higher-priority one arrives later and must wait.
        g = TaskGraph()
        g.add_subtask("long", wcet=50.0, release=0.0, end_to_end_deadline=300.0)
        g.add_subtask("gate", wcet=10.0, release=0.0)
        g.add_subtask("hot", wcet=5.0, end_to_end_deadline=30.0)
        g.add_edge("gate", "hot")
        allocation = {"long": 0, "gate": 1, "hot": 0}
        assignment = assign(g)
        trace = simulate_fixed(g, assignment, System(2), allocation)
        assert trace.preemptions == 0
        assert trace.completion_time("hot") == pytest.approx(55.0)

    def test_preemptive_preempts(self):
        g = TaskGraph()
        g.add_subtask("long", wcet=50.0, release=0.0, end_to_end_deadline=300.0)
        g.add_subtask("gate", wcet=10.0, release=0.0)
        g.add_subtask("hot", wcet=5.0, end_to_end_deadline=30.0)
        g.add_edge("gate", "hot")
        allocation = {"long": 0, "gate": 1, "hot": 0}
        assignment = assign(g)
        trace = simulate_fixed(
            g, assignment, System(2), allocation, preemptive=True
        )
        assert trace.preemptions >= 1
        # hot runs as soon as it is ready (gate done at 10).
        assert trace.completion_time("hot") == pytest.approx(15.0)
        # long still executes its full 50 units across segments.
        assert trace.completion_time("long") == pytest.approx(55.0)
        assert len(trace.segments_of("long")) == 2

    def test_cross_processor_transfer_delays_readiness(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=200.0)
        g.add_edge("a", "b", message_size=20.0)
        assignment = assign(g)
        trace = simulate_fixed(
            g, assignment, System(2), {"a": 0, "b": 1}
        )
        assert trace.completion_time("b") == pytest.approx(40.0)  # 10+20+10
        assert len(trace.transfers) == 1
        assert trace.transfers[0].arrival == pytest.approx(30.0)

    def test_missing_allocation_rejected(self, chain):
        with pytest.raises(SchedulingError, match="misses"):
            simulate_fixed(chain, assign(chain), System(2), {"a": 0})

    def test_pin_contradiction_rejected(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=50.0,
                      pinned_to=0)
        with pytest.raises(SchedulingError, match="contradicts"):
            simulate_fixed(g, assign(g), System(2), {"a": 1})

    def test_preemptive_with_jitter_consistent(self, random_graph):
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        static = ListScheduler(System(3)).schedule(random_graph, assignment)
        trace = simulate_fixed(
            random_graph, assignment, System(3), allocation_of(static),
            preemptive=True, jitter=JitterModel(low=0.6, high=1.0, seed=9),
        )
        # validate() ran inside; spot-check jitter took effect.
        assert trace.makespan() < static.makespan()
