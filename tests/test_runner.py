"""The experiment runner: records, pairing, caching, custom factories."""

import random

import pytest

from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.runner import run_experiment, run_trial
from repro.graph.generator import RandomGraphConfig, generate_task_graph


def tiny_config(**kwargs):
    defaults = dict(
        name="tiny",
        description="test experiment",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 14), depth_range=(3, 5)
        ),
        scenarios=("MDET",),
        n_graphs=3,
        system_sizes=(2, 4),
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    def test_record_count_and_fields(self):
        result = run_experiment(tiny_config())
        assert len(result) == 1 * 2 * 2 * 3  # scen x sizes x methods x graphs
        record = result.records[0]
        assert record.experiment == "tiny"
        assert record.scenario == "MDET"
        assert record.method in ("PURE", "ADAPT")
        assert record.n_processors in (2, 4)
        assert isinstance(record.max_lateness, float)
        assert record.as_dict()["graph_index"] == record.graph_index
        assert result.elapsed_seconds > 0

    def test_filter(self):
        result = run_experiment(tiny_config())
        sub = result.filter(method="PURE", n_processors=2)
        assert len(sub) == 3
        assert all(r.method == "PURE" and r.n_processors == 2 for r in sub)

    def test_deterministic(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert [r.max_lateness for r in a.records] == [
            r.max_lateness for r in b.records
        ]

    def test_progress_hook(self):
        calls = []
        run_experiment(tiny_config(), progress=lambda d, t: calls.append((d, t)))
        assert calls[0] == (1, 12)
        assert calls[-1] == (12, 12)

    def test_graph_factory(self):
        from repro.graph.structured import generate_pipeline

        cfg = tiny_config(
            graph_factory=lambda gc, rng: generate_pipeline(
                6, config=gc, rng=rng
            ),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        result = run_experiment(cfg)
        # A 6-stage pipeline on any system finishes in exactly the chain
        # time, so makespans repeat across sizes per graph.
        assert len(result) == 6
        by_graph = {}
        for r in result.records:
            by_graph.setdefault(r.graph_index, set()).add(r.makespan)
        assert all(len(v) == 1 for v in by_graph.values())


class TestRunTrial:
    def test_single_trial(self):
        from repro.core.slicer import bst
        from repro.machine.system import System

        graph = generate_task_graph(
            RandomGraphConfig(n_subtasks_range=(10, 12), depth_range=(3, 4)),
            rng=random.Random(0),
        )
        assignment = bst().distribute(graph)
        metrics = run_trial(graph, assignment, System(2))
        assert metrics.n_subtasks == graph.n_subtasks
        assert metrics.makespan > 0
