"""The experiment runner: records, pairing, caching, custom factories."""

import random

import pytest

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.runner import (
    distribute_for_trial,
    graph_for_trial,
    run_experiment,
    run_trial,
    scenario_seed,
    trial_seed,
)
from repro.graph.generator import RandomGraphConfig, generate_task_graph
from repro.graph.serialization import graph_to_dict


def tiny_config(**kwargs):
    defaults = dict(
        name="tiny",
        description="test experiment",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 14), depth_range=(3, 5)
        ),
        scenarios=("MDET",),
        n_graphs=3,
        system_sizes=(2, 4),
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestRunExperiment:
    def test_record_count_and_fields(self):
        result = run_experiment(tiny_config())
        assert len(result) == 1 * 2 * 2 * 3  # scen x sizes x methods x graphs
        record = result.records[0]
        assert record.experiment == "tiny"
        assert record.scenario == "MDET"
        assert record.method in ("PURE", "ADAPT")
        assert record.n_processors in (2, 4)
        assert isinstance(record.max_lateness, float)
        assert record.as_dict()["graph_index"] == record.graph_index
        assert result.elapsed_seconds > 0

    def test_filter(self):
        result = run_experiment(tiny_config())
        sub = result.filter(method="PURE", n_processors=2)
        assert len(sub) == 3
        assert all(r.method == "PURE" and r.n_processors == 2 for r in sub)

    def test_deterministic(self):
        a = run_experiment(tiny_config())
        b = run_experiment(tiny_config())
        assert [r.max_lateness for r in a.records] == [
            r.max_lateness for r in b.records
        ]

    def test_progress_hook(self):
        calls = []
        run_experiment(tiny_config(), progress=lambda d, t: calls.append((d, t)))
        assert calls[0] == (1, 12)
        assert calls[-1] == (12, 12)

    def test_graph_factory(self):
        from repro.graph.structured import generate_pipeline

        cfg = tiny_config(
            graph_factory=lambda gc, rng: generate_pipeline(
                6, config=gc, rng=rng
            ),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        result = run_experiment(cfg)
        # A 6-stage pipeline on any system finishes in exactly the chain
        # time, so makespans repeat across sizes per graph.
        assert len(result) == 6
        by_graph = {}
        for r in result.records:
            by_graph.setdefault(r.graph_index, set()).add(r.makespan)
        assert all(len(v) == 1 for v in by_graph.values())


class TestDistributionCache:
    """Regression: the reuse cache used to freeze the *first* sweep size's
    platform into every later size's assignment metadata."""

    def graph(self):
        return generate_task_graph(
            RandomGraphConfig(n_subtasks_range=(10, 12), depth_range=(3, 4)),
            rng=random.Random(7),
        )

    def test_cached_assignment_restamped_per_size(self):
        method = MethodSpec(label="PURE", metric="PURE")
        distributor = method.build()
        graph = self.graph()
        cache = {}
        first = distribute_for_trial(
            method, distributor, graph, 2, 2.0, cache, "PURE"
        )
        assert first.n_processors == 2
        later = distribute_for_trial(
            method, distributor, graph, 16, 16.0, cache, "PURE"
        )
        # The bug: this reported 2 on the reused assignment.
        assert later.n_processors == 16
        # Reuse actually happened (same underlying windows)...
        assert later.windows is first.windows

    def test_cached_agrees_with_fresh(self):
        """Cached (platform-oblivious) and fresh (platform-stamped)
        assignments must agree window-for-window at every size."""
        method = MethodSpec(label="PURE", metric="PURE")
        graph = self.graph()
        cache = {}
        for size in (2, 8, 16):
            cached = distribute_for_trial(
                method, method.build(), graph, size, float(size),
                cache, "PURE",
            )
            fresh = method.build().distribute(
                graph, n_processors=size, total_capacity=float(size)
            )
            assert cached.windows == fresh.windows, size
            assert cached.message_windows == fresh.message_windows, size
            assert cached.n_processors == fresh.n_processors == size

    def test_baseline_restamped_too(self):
        method = MethodSpec(label="ED", metric="PURE", baseline="ED")
        distributor = method.build()
        graph = self.graph()
        cache = {}
        distribute_for_trial(method, distributor, graph, 2, 2.0, cache, "ED")
        later = distribute_for_trial(
            method, distributor, graph, 8, 8.0, cache, "ED"
        )
        assert later.n_processors == 8

    def test_adapt_never_cached(self):
        method = MethodSpec(label="ADAPT", metric="ADAPT")
        distributor = method.build()
        graph = self.graph()
        cache = {}
        a2 = distribute_for_trial(
            method, distributor, graph, 2, 2.0, cache, "ADAPT"
        )
        a8 = distribute_for_trial(
            method, distributor, graph, 8, 8.0, cache, "ADAPT"
        )
        assert not cache
        assert a2.n_processors == 2 and a8.n_processors == 8
        # ADAPT's surplus depends on the size, so windows must differ.
        assert a2.windows != a8.windows


class TestSeedingContract:
    """Regression: the factory path used to seed from the experiment seed
    and index alone, ignoring the scenario — breaking the documented
    per-(scenario, index) pairing."""

    def config(self, **kwargs):
        return tiny_config(scenarios=("LDET", "MDET"), **kwargs)

    def test_trial_seed_folds_scenario(self):
        assert trial_seed(5, "LDET", 0) != trial_seed(5, "MDET", 0)
        assert trial_seed(5, "LDET", 0) != trial_seed(5, "LDET", 1)
        # Stable across calls (and, via blake2b, across processes).
        assert scenario_seed(5, "HDET") == scenario_seed(5, "HDET")

    def test_same_pair_regenerates_identical_graph(self):
        cfg = self.config()
        gc = cfg.graph_config.with_scenario("MDET")
        a = graph_for_trial(cfg, gc, "MDET", 1)
        b = graph_for_trial(cfg, gc, "MDET", 1)
        assert graph_to_dict(a) == graph_to_dict(b)

    def test_scenarios_draw_independent_workloads(self):
        cfg = self.config()
        a = graph_for_trial(cfg, cfg.graph_config.with_scenario("LDET"),
                            "LDET", 0)
        b = graph_for_trial(cfg, cfg.graph_config.with_scenario("MDET"),
                            "MDET", 0)
        # Different structure, not merely different execution times.
        assert (
            a.n_subtasks != b.n_subtasks
            or sorted(e for e in graph_to_dict(a)["edges"])
            != sorted(e for e in graph_to_dict(b)["edges"])
        )

    def test_factory_seeds_depend_on_scenario(self):
        from repro.graph.structured import generate_pipeline

        streams = {}

        def factory(gc, rng):
            streams.setdefault(gc.execution_time_deviation, []).append(
                rng.random()
            )
            return generate_pipeline(4, config=gc, rng=rng)

        run_experiment(self.config(
            graph_factory=factory,
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        ))
        ldet, mdet = streams[0.25], streams[0.50]
        assert len(ldet) == len(mdet) == 3
        # Pre-fix, both scenarios received identical rng streams.
        assert ldet != mdet

    def test_factory_rng_matches_generator_path(self):
        """A factory receives exactly the seeded rng the built-in
        generator would use for that (scenario, index)."""
        cfg = self.config(
            graph_factory=lambda gc, rng: generate_task_graph(gc, rng=rng),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        plain = tiny_config(
            scenarios=("LDET", "MDET"),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        a = run_experiment(cfg)
        b = run_experiment(plain)
        assert [r.as_dict() for r in a.records] == [
            r.as_dict() for r in b.records
        ]


class TestWorkloadSourceValidation:
    """Regression: progress totals must be trustworthy — a misbehaving
    factory cannot silently change the record count."""

    def test_factory_returning_list_rejected(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: [
                generate_task_graph(gc, rng=rng) for _ in range(2)
            ],
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        with pytest.raises(ExperimentError, match="one TaskGraph per call"):
            run_experiment(cfg)

    def test_factory_returning_none_rejected(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: None,
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        with pytest.raises(ExperimentError, match="one TaskGraph per call"):
            run_experiment(cfg)

    def test_progress_never_exceeds_total(self):
        from repro.graph.structured import generate_pipeline

        calls = []
        cfg = tiny_config(
            graph_factory=lambda gc, rng: generate_pipeline(
                4, config=gc, rng=rng
            ),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        run_experiment(cfg, progress=lambda d, t: calls.append((d, t)))
        assert all(d <= t for d, t in calls)
        assert calls[-1] == (cfg.n_trials, cfg.n_trials)


class TestRunTrial:
    def test_single_trial(self):
        from repro.core.slicer import bst
        from repro.machine.system import System

        graph = generate_task_graph(
            RandomGraphConfig(n_subtasks_range=(10, 12), depth_range=(3, 4)),
            rng=random.Random(0),
        )
        assignment = bst().distribute(graph)
        metrics = run_trial(graph, assignment, System(2))
        assert metrics.n_subtasks == graph.n_subtasks
        assert metrics.makespan > 0
