"""End-to-end lifecycle tests for ``repro.serve`` over a real socket.

The service's whole value is a contract: anything submitted over HTTP
produces *exactly* what a direct :func:`~repro.feast.runner.run_experiment`
call produces, survives server death, and can always be cancelled. These
tests exercise that contract the way a client would — ephemeral port,
real requests, no reaching into service internals except to assert on
the durable artifacts (journal, store) the restart test depends on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.app import ServiceConfig, ServiceHandle
from repro.serve.jobs import JobState
from tests.serve_client import (
    ServerProcess,
    direct_records,
    explicit_job,
    fetch_records,
    poll_job,
    request,
    request_json,
    slow_job,
    submit,
    tiny_job,
    wait_for,
    wait_terminal,
)


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(data_dir=str(tmp_path / "data"), workers=2)
    with ServiceHandle(config) as handle:
        yield handle


class TestLifecycle:
    def test_submit_poll_result(self, server):
        document = tiny_job(name="lifecycle", seed=11, sizes=(2, 3))
        status, body = request_json(server.port, "POST", "/v1/jobs", document)
        assert status == 202
        assert body["state"] == JobState.QUEUED
        assert body["name"] == "lifecycle"
        job_id = body["id"]
        assert body["location"] == f"/v1/jobs/{job_id}"

        final = wait_terminal(server.port, job_id)
        assert final["state"] == JobState.DONE
        assert final["progress"]["done"] == final["progress"]["total"]
        assert final["started"] >= final["created"]
        assert final["finished"] >= final["started"]

        records = fetch_records(server.port, job_id)
        assert records == direct_records(document)

        status, listing = request_json(server.port, "GET", "/v1/jobs")
        assert status == 200
        assert job_id in [job["id"] for job in listing["jobs"]]

    def test_result_bytes_identical_to_direct_run(self, server):
        """Byte-level, not just structural: the serialized record arrays
        must be the same bytes a batch caller would persist."""
        document = tiny_job(name="bytes", seed=23, n_graphs=3, sizes=(2, 4))
        job_id = submit(server.port, document)
        assert wait_terminal(server.port, job_id)["state"] == JobState.DONE

        served = json.dumps(fetch_records(server.port, job_id), sort_keys=True)
        direct = json.dumps(direct_records(document), sort_keys=True)
        assert served.encode("utf-8") == direct.encode("utf-8")

    def test_explicit_graph_documents(self, server):
        """Graphs shipped inline (repro-taskgraph schema) round-trip to
        the same records as compiling the document locally."""
        document = explicit_job(seed=5)
        job_id = submit(server.port, document)
        assert wait_terminal(server.port, job_id)["state"] == JobState.DONE
        assert fetch_records(server.port, job_id) == direct_records(document)

    def test_result_before_done_is_conflict_not_error(self, server):
        job_id = submit(server.port, slow_job(seed=31))
        status, body = request_json(server.port, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 409
        assert body["error"]["state"] in (JobState.QUEUED, JobState.RUNNING)
        # cancel so teardown's drain doesn't sit through the full sweep
        request_json(server.port, "DELETE", f"/v1/jobs/{job_id}")
        wait_terminal(server.port, job_id)

    def test_healthz_and_metrics(self, server):
        job_id = submit(server.port, tiny_job(seed=7))
        wait_terminal(server.port, job_id)

        status, health = request_json(server.port, "GET", "/v1/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["jobs"].get(JobState.DONE, 0) >= 1
        assert health["workers"] == 2

        status, headers, body = request(server.port, "GET", "/v1/metrics")
        assert status == 200
        assert "openmetrics" in headers["content-type"]
        text = body.decode("utf-8")
        assert text.rstrip().endswith("# EOF")
        assert "repro_serve_requests_total" in text
        assert "repro_serve_job_seconds" in text
        assert "repro_serve_queue_depth" in text

    def test_events_stream_shape(self, server):
        document = tiny_job(name="events", seed=13)
        job_id = submit(server.port, document)
        wait_terminal(server.port, job_id)

        status, headers, body = request(
            server.port, "GET", f"/v1/jobs/{job_id}/events"
        )
        assert status == 200
        assert headers["content-type"] == "application/x-ndjson"
        events = [json.loads(line) for line in body.decode().splitlines()]
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "header"
        assert kinds[-1] == "final"
        assert "progress" in kinds
        assert events[-1]["state"] == JobState.DONE
        sequences = [event["seq"] for event in events]
        assert sequences == sorted(sequences)

    def test_events_follow_tails_until_terminal(self, server):
        job_id = submit(server.port, tiny_job(name="follow", seed=17))
        status, _, body = request(
            server.port, "GET", f"/v1/jobs/{job_id}/events?follow=1"
        )
        assert status == 200
        events = [json.loads(line) for line in body.decode().splitlines()]
        assert events[-1]["kind"] == "final"
        assert events[-1]["state"] == JobState.DONE


class TestCancel:
    def test_cancel_mid_run(self, server):
        document = slow_job(name="cancel-me", seed=41)
        job_id = submit(server.port, document)
        # Let real work start so this exercises the cooperative path,
        # not the queued shortcut.
        wait_for(
            lambda: poll_job(server.port, job_id).get("progress", {}).get("done", 0) > 0,
            message="first completed chunk",
        )
        status, body = request_json(server.port, "DELETE", f"/v1/jobs/{job_id}")
        assert status == 202
        assert body["cancel_requested"] is True

        final = wait_terminal(server.port, job_id)
        assert final["state"] == JobState.CANCELLED
        assert final["progress"]["done"] < final["progress"]["total"]

        status, body = request_json(server.port, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 409
        assert body["error"]["state"] == JobState.CANCELLED

        # cancelling a terminal job is a conflict, not a repeat
        status, body = request_json(server.port, "DELETE", f"/v1/jobs/{job_id}")
        assert status == 409

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        config = ServiceConfig(data_dir=str(tmp_path / "data"), workers=1)
        with ServiceHandle(config) as handle:
            blocker = submit(handle.port, slow_job(name="blocker", seed=43))
            queued = submit(handle.port, tiny_job(name="victim", seed=44))
            status, body = request_json(handle.port, "DELETE", f"/v1/jobs/{queued}")
            assert status == 202
            assert body["state"] == JobState.CANCELLED
            assert poll_job(handle.port, queued)["state"] == JobState.CANCELLED
            request_json(handle.port, "DELETE", f"/v1/jobs/{blocker}")
            wait_terminal(handle.port, blocker)

    def test_unknown_job_is_404_everywhere(self, server):
        ghost = "00000000000000aa"
        for method, path in (
            ("GET", f"/v1/jobs/{ghost}"),
            ("GET", f"/v1/jobs/{ghost}/result"),
            ("GET", f"/v1/jobs/{ghost}/events"),
            ("DELETE", f"/v1/jobs/{ghost}"),
        ):
            status, body = request_json(server.port, method, path)
            assert status == 404, (method, path)
            assert body["error"]["status"] == 404


class TestFailedJobs:
    """done means *complete* — a run the engine could not fully finish
    must land ``failed`` with the cause, never ``done`` with a gap."""

    def test_runtime_failure_lands_failed_with_error(self, tmp_path, monkeypatch):
        import repro.serve.queue as queue_mod

        def boom(config, **kwargs):
            raise RuntimeError("induced backend failure")

        monkeypatch.setattr(queue_mod, "run_experiment", boom)
        config = ServiceConfig(data_dir=str(tmp_path / "data"), workers=1)
        with ServiceHandle(config) as handle:
            job_id = submit(handle.port, tiny_job(name="doomed", seed=3))
            final = wait_terminal(handle.port, job_id)
            assert final["state"] == JobState.FAILED
            assert "induced backend failure" in final["error"]
            status, body = request_json(
                handle.port, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 409
            assert body["error"]["state"] == JobState.FAILED
            assert "induced backend failure" in body["error"]["detail"]

    def test_quarantined_chunks_fail_the_job(self, tmp_path, monkeypatch):
        """The supervised engine quarantines deterministically-failing
        chunks and returns a *partial* result; served as-is that would
        silently violate byte-identity, so the job must fail instead."""
        import types

        import repro.serve.queue as queue_mod

        fake = types.SimpleNamespace(quarantined=[("MDET", 0)], failures=[])
        monkeypatch.setattr(
            queue_mod, "run_experiment", lambda config, **kwargs: fake
        )
        config = ServiceConfig(data_dir=str(tmp_path / "data"), workers=1)
        with ServiceHandle(config) as handle:
            job_id = submit(handle.port, tiny_job(name="partial", seed=5))
            final = wait_terminal(handle.port, job_id)
            assert final["state"] == JobState.FAILED
            assert "quarantined" in final["error"]
            status, body = request_json(
                handle.port, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 409


class TestRestartResume:
    def test_sigkill_and_restart_completes_from_journal(self, tmp_path):
        """The acceptance criterion: a killed-and-restarted server
        finishes its in-flight job from the checkpoint journal, and the
        result is byte-identical to an uninterrupted direct run."""
        data_dir = str(tmp_path / "data")
        document = slow_job(name="survivor", seed=47)

        with ServerProcess(data_dir) as first:
            job_id = submit(first.port, document)
            checkpoint = os.path.join(data_dir, "jobs", f"{job_id}.ckpt")
            # at least one chunk journaled (header line + chunk line),
            # so the restart genuinely resumes rather than restarts
            wait_for(
                lambda: os.path.exists(checkpoint)
                and sum(1 for _ in open(checkpoint)) >= 2,
                message="a journaled chunk",
            )
            first.sigkill()

        with ServerProcess(data_dir) as second:
            final = wait_terminal(second.port, job_id)
            assert final["state"] == JobState.DONE
            assert final["attempts"] == 2  # one per server generation
            records = fetch_records(second.port, job_id)

        direct = direct_records(document)
        assert json.dumps(records, sort_keys=True) == json.dumps(direct, sort_keys=True)
