"""Related-work deadline-assignment baselines."""

import pytest

from repro.core.baselines import (
    BASELINES,
    EffectiveDeadline,
    EqualFlexibility,
    EqualSlack,
    EvenFlexibility,
    UltimateDeadline,
    make_baseline,
)
from repro.errors import DistributionError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler


@pytest.fixture
def chain():
    """a(10) -> b(20) -> c(10), release 0, end-to-end deadline 100."""
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=20.0)
    g.add_subtask("c", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestUltimateDeadline:
    def test_all_deadlines_tightened_for_consistency(self, chain):
        # Raw UD gives every node deadline 100; the consistency pass pulls
        # interior deadlines to deadline(succ) - c(succ).
        a = UltimateDeadline().distribute(chain)
        assert a.absolute_deadline("c") == 100.0
        assert a.absolute_deadline("b") == 90.0   # 100 - c(c)
        assert a.absolute_deadline("a") == 70.0   # 90 - c(b)
        assert a.metric_name == "UD"

    def test_releases_are_earliest_starts(self, chain):
        a = UltimateDeadline().distribute(chain)
        assert a.release("a") == 0.0
        assert a.release("b") == 10.0
        assert a.release("c") == 30.0


class TestEffectiveDeadline:
    def test_subtracts_downstream_work(self, chain):
        a = EffectiveDeadline().distribute(chain)
        assert a.absolute_deadline("c") == 100.0
        assert a.absolute_deadline("b") == 90.0   # 100 - c(c)
        assert a.absolute_deadline("a") == 70.0   # 100 - (c(b) + c(c))


class TestEqualSlack:
    def test_chain_recomputes_slack_per_stage(self, chain):
        # Classical EQS: each stage sees the slack from its own earliest
        # arrival and keeps an equal share of it. Stage b arrives at 10
        # (not at a's deadline 30), sees slack 60, keeps half.
        a = EqualSlack().distribute(chain)
        assert a.absolute_deadline("a") == pytest.approx(30.0)   # 10 + 60/3
        assert a.absolute_deadline("b") == pytest.approx(60.0)   # 30 + 60/2
        assert a.absolute_deadline("c") == pytest.approx(100.0)  # 40 + 60


class TestEqualFlexibility:
    def test_chain_proportional_to_remaining_work(self, chain):
        # EQF: each stage keeps slack * c_i / (remaining work incl. self),
        # recomputed from its earliest arrival.
        a = EqualFlexibility().distribute(chain)
        assert a.absolute_deadline("a") == pytest.approx(25.0)   # 10 + 60*10/40
        assert a.absolute_deadline("b") == pytest.approx(70.0)   # 30 + 60*20/30
        assert a.absolute_deadline("c") == pytest.approx(100.0)  # 40 + 60*10/10


class TestEvenFlexibility:
    def test_chain_divides_window_evenly(self, chain):
        # DIV ignores execution times: thirds of [0, 100].
        a = EvenFlexibility().distribute(chain)
        assert a.absolute_deadline("a") == pytest.approx(100.0 / 3)
        assert a.absolute_deadline("b") == pytest.approx(200.0 / 3)
        assert a.absolute_deadline("c") == pytest.approx(100.0)


class TestOnDags:
    def test_binding_output_is_the_tightest(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("tight", wcet=10.0, end_to_end_deadline=40.0)
        g.add_subtask("loose", wcet=10.0, end_to_end_deadline=400.0)
        g.add_edge("a", "tight")
        g.add_edge("a", "loose")
        a = EffectiveDeadline().distribute(g)
        # a's binding output is 'tight': 40 - 10 = 30.
        assert a.absolute_deadline("a") == pytest.approx(30.0)

    def test_deadline_consistency_on_random_graph(self, random_graph):
        for name in BASELINES:
            a = make_baseline(name).distribute(random_graph)
            for src, dst in random_graph.edges():
                assert (
                    a.absolute_deadline(src)
                    <= a.absolute_deadline(dst)
                    - random_graph.node(dst).wcet + 1e-6
                ), (name, src, dst)

    def test_schedulable_end_to_end(self, random_graph):
        for name in BASELINES:
            a = make_baseline(name).distribute(random_graph)
            schedule = ListScheduler(System(4)).schedule(random_graph, a)
            schedule.validate()


class TestFactory:
    def test_all_names(self):
        for name in BASELINES:
            assert make_baseline(name).name == name

    def test_unknown(self):
        with pytest.raises(DistributionError):
            make_baseline("XYZ")

    def test_requires_valid_graph(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0)  # no anchors
        with pytest.raises(Exception):
            make_baseline("UD").distribute(g)
