"""Parameter sweeps and parallel experiment execution."""

import pytest

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.sweep import run_experiments, sweep_field, sweep_grid
from repro.graph.generator import RandomGraphConfig


def base_config():
    return ExperimentConfig(
        name="sweepme",
        description="sweep test",
        methods=(MethodSpec(label="PURE", metric="PURE"),),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(8, 10), depth_range=(3, 4)
        ),
        scenarios=("MDET",),
        n_graphs=2,
        system_sizes=(2,),
        seed=3,
    )


class TestSweepField:
    def test_experiment_field(self):
        configs = sweep_field(base_config(), "topology", ["bus", "ring"])
        assert [c.topology for c in configs] == ["bus", "ring"]
        assert configs[0].name == "sweepme-topology=bus"
        assert configs[1].name == "sweepme-topology=ring"

    def test_graph_field(self):
        configs = sweep_field(
            base_config(), "overall_laxity_ratio", [1.1, 2.0]
        )
        assert [
            c.graph_config.overall_laxity_ratio for c in configs
        ] == [1.1, 2.0]
        # Base experiment fields survive.
        assert all(c.scenarios == ("MDET",) for c in configs)

    def test_unknown_field(self):
        with pytest.raises(ExperimentError, match="unknown sweep field"):
            sweep_field(base_config(), "warp_factor", [1])

    def test_empty_values(self):
        with pytest.raises(ExperimentError):
            sweep_field(base_config(), "topology", [])


class TestSweepGrid:
    def test_cartesian_product(self):
        configs = sweep_grid(
            base_config(),
            {"topology": ["bus", "ring"], "policy": ["EDF", "LLF"]},
        )
        assert len(configs) == 4
        combos = {(c.topology, c.policy) for c in configs}
        assert combos == {
            ("bus", "EDF"), ("bus", "LLF"), ("ring", "EDF"), ("ring", "LLF"),
        }
        assert all(c.name.startswith("sweepme-") for c in configs)
        assert len({c.name for c in configs}) == 4

    def test_mixed_levels(self):
        configs = sweep_grid(
            base_config(),
            {"overall_laxity_ratio": [1.1, 1.5], "topology": ["bus"]},
        )
        assert len(configs) == 2
        assert {c.graph_config.overall_laxity_ratio for c in configs} == {
            1.1, 1.5,
        }

    def test_empty_grid(self):
        with pytest.raises(ExperimentError):
            sweep_grid(base_config(), {})


class TestRunExperiments:
    def test_serial(self):
        configs = sweep_field(base_config(), "topology", ["bus", "ideal"])
        done = []
        results = run_experiments(
            configs, progress=lambda i, n: done.append((i, n))
        )
        assert len(results) == 2
        assert done == [(1, 2), (2, 2)]
        assert all(len(r) == 2 for r in results)  # 1 size x 1 method x 2 graphs

    def test_parallel_matches_serial(self):
        configs = sweep_field(base_config(), "seed", [3, 4])
        serial = run_experiments(configs, processes=1)
        parallel = run_experiments(configs, processes=2)
        for a, b in zip(serial, parallel):
            assert [r.max_lateness for r in a.records] == [
                r.max_lateness for r in b.records
            ]

    def test_factory_configs_fall_back_to_serial(self):
        from repro.feast.experiments import build_experiment

        configs = build_experiment(
            "ext-structured", n_graphs=1, system_sizes=(2,)
        )[:2]
        results = run_experiments(configs, processes=4)
        assert len(results) == 2

    def test_trial_jobs_match_serial(self):
        configs = sweep_field(base_config(), "seed", [3, 4])
        serial = run_experiments(configs)
        fanned = run_experiments(configs, jobs=2)
        for a, b in zip(serial, fanned):
            assert [r.as_dict() for r in a.records] == [
                r.as_dict() for r in b.records
            ]

    def test_nested_parallelism_rejected(self):
        with pytest.raises(ExperimentError, match="one parallelism axis"):
            run_experiments([base_config()], processes=2, jobs=2)

    def test_checkpoint_dir_resumes_batch(self, tmp_path):
        import os

        configs = sweep_field(base_config(), "seed", [3, 4])
        ckpt = str(tmp_path / "ckpts")
        first = run_experiments(configs, checkpoint_dir=ckpt)
        assert sorted(os.listdir(ckpt)) == sorted(
            f"{c.name}.ckpt" for c in configs
        )
        again = run_experiments(configs, checkpoint_dir=ckpt)
        for a, b in zip(first, again):
            assert [r.as_dict() for r in a.records] == [
                r.as_dict() for r in b.records
            ]

    def test_checkpoint_dir_rejects_processes_axis(self, tmp_path):
        with pytest.raises(ExperimentError, match="checkpoint_dir"):
            run_experiments(
                [base_config()], processes=2,
                checkpoint_dir=str(tmp_path),
            )

    def test_checkpoint_dir_rejects_duplicate_names(self, tmp_path):
        with pytest.raises(ExperimentError, match="unique"):
            run_experiments(
                [base_config(), base_config()],
                checkpoint_dir=str(tmp_path),
            )

    def test_empty(self):
        assert run_experiments([]) == []

    def test_bad_processes(self):
        with pytest.raises(ExperimentError):
            run_experiments([base_config()], processes=0)
