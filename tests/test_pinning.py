"""Locality-constraint utilities."""

import random

import pytest

from repro.core.pinning import (
    pin_boundary_subtasks,
    pin_random_fraction,
    pin_subtasks,
    pinned_fraction,
    validate_pins,
)
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph


class TestPinSubtasks:
    def test_returns_pinned_copy(self, diamond_graph):
        pinned = pin_subtasks(diamond_graph, {"a": 0, "d": 1})
        assert pinned.node("a").pinned_to == 0
        assert pinned.node("d").pinned_to == 1
        # Original untouched.
        assert diamond_graph.node("a").pinned_to is None

    def test_unknown_subtask(self, diamond_graph):
        with pytest.raises(ValidationError):
            pin_subtasks(diamond_graph, {"zzz": 0})

    def test_negative_processor(self, diamond_graph):
        with pytest.raises(ValidationError):
            pin_subtasks(diamond_graph, {"a": -1})


class TestPinRandomFraction:
    def test_fraction_zero(self, random_graph):
        pinned = pin_random_fraction(random_graph, 0.0, 4, rng=random.Random(0))
        assert pinned.pinned_subtasks() == []

    def test_fraction_one(self, random_graph):
        pinned = pin_random_fraction(random_graph, 1.0, 4, rng=random.Random(0))
        assert len(pinned.pinned_subtasks()) == pinned.n_subtasks
        assert pinned_fraction(pinned) == 1.0

    def test_fraction_half(self, random_graph):
        pinned = pin_random_fraction(random_graph, 0.5, 4, rng=random.Random(0))
        assert pinned_fraction(pinned) == pytest.approx(0.5, abs=0.05)
        for n in pinned.pinned_subtasks():
            assert 0 <= pinned.node(n).pinned_to < 4

    def test_bad_fraction(self, random_graph):
        with pytest.raises(ValidationError):
            pin_random_fraction(random_graph, 1.5, 4)

    def test_bad_processors(self, random_graph):
        with pytest.raises(ValidationError):
            pin_random_fraction(random_graph, 0.5, 0)

    def test_deterministic(self, random_graph):
        a = pin_random_fraction(random_graph, 0.3, 4, rng=random.Random(7))
        b = pin_random_fraction(random_graph, 0.3, 4, rng=random.Random(7))
        assert a.pinned_subtasks() == b.pinned_subtasks()


class TestPinBoundary:
    def test_exactly_boundary_pinned(self, diamond_graph):
        pinned = pin_boundary_subtasks(diamond_graph, 2, rng=random.Random(0))
        assert sorted(pinned.pinned_subtasks()) == ["a", "d"]

    def test_sensor_actuator_pattern(self, random_graph):
        pinned = pin_boundary_subtasks(random_graph, 4, rng=random.Random(0))
        boundary = set(random_graph.input_subtasks()) | set(
            random_graph.output_subtasks()
        )
        assert set(pinned.pinned_subtasks()) == boundary


class TestValidatePins:
    def test_ok(self, diamond_graph):
        pinned = pin_subtasks(diamond_graph, {"a": 1})
        validate_pins(pinned, n_processors=2)

    def test_out_of_range(self, diamond_graph):
        pinned = pin_subtasks(diamond_graph, {"a": 5})
        with pytest.raises(ValidationError, match="only 2 processors"):
            validate_pins(pinned, n_processors=2)

    def test_pinned_fraction_empty(self):
        with pytest.raises(ValidationError):
            pinned_fraction(TaskGraph())
