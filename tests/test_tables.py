"""Table and report rendering."""

import pytest

from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.runner import run_experiment
from repro.feast.tables import (
    lateness_panel,
    lateness_report,
    render_table,
    series,
    to_csv,
)
from repro.graph.generator import RandomGraphConfig


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(
        name="tables",
        description="render test",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="NORM", metric="NORM"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 12), depth_range=(3, 4)
        ),
        scenarios=("LDET", "MDET"),
        n_graphs=2,
        system_sizes=(2, 4),
        seed=1,
    )
    return run_experiment(cfg)


class TestRenderTable:
    def test_alignment_and_floats(self):
        text = render_table(
            ["x", "value"], [[1, -1.25], [10, -100.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "value" in lines[1]
        assert "-1.2" in text and "-100.0" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestPanels:
    def test_panel_contains_all_sizes_and_methods(self, result):
        text = lateness_panel(result, "LDET")
        assert "PURE" in text and "NORM" in text
        lines = text.splitlines()
        assert lines[-1].strip().startswith("4")
        assert lines[-2].strip().startswith("2")

    def test_report_has_one_panel_per_scenario(self, result):
        text = lateness_report(result)
        assert text.count("scenario") == 2
        assert "trials in" in text

    def test_series_shape(self, result):
        curve = series(result, "LDET", "PURE")
        assert [size for size, _ in curve] == [2, 4]
        assert all(isinstance(v, float) for _, v in curve)


class TestEndToEndPanel:
    def test_renders_strategy_independent_measure(self, result):
        from repro.feast.tables import end_to_end_panel

        text = end_to_end_panel(result, "LDET")
        assert "end-to-end lateness" in text
        assert "PURE" in text and "NORM" in text
        # Values differ from the per-strategy panel (different measure).
        from repro.feast.tables import lateness_panel

        assert text != lateness_panel(result, "LDET")


class TestCsv:
    def test_round_trippable(self, result):
        text = to_csv(result)
        lines = text.splitlines()
        header = lines[0].split(",")
        assert "max_lateness" in header
        assert len(lines) == 1 + len(result)
        row = dict(zip(header, lines[1].split(",")))
        assert row["experiment"] == "tables"
        float(row["max_lateness"])  # parseable
