"""The run registry: durable append log, lookup, and regression gating."""

import json

import pytest

from repro.errors import SerializationError
from repro.obs.registry import (
    MIN_GATE_SECONDS,
    REGISTRY_VERSION,
    RunRecord,
    RunRegistry,
    diff_runs,
    records_digest,
    render_run_diff,
    render_run_list,
    render_run_show,
)


def make_record(run_id="run-aaaa", **overrides):
    base = dict(
        run_id=run_id,
        experiment="figure5",
        fingerprint="f" * 32,
        backend="pool",
        jobs=4,
        shards=0,
        started=1000.0,
        wall_seconds=10.0,
        n_trials=100,
        n_records=600,
        phase_seconds={"generate": 2.0, "schedule": 6.0, "simulate": 1.5},
        records_digest="d" * 32,
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRunRecord:
    def test_round_trip(self):
        record = make_record(
            supervision={"supervision.relaunches": 2.0},
            replayed_trials=3,
            failures=1,
            retries=2,
            quarantined=1,
            trace_path="traces/figure5.events.jsonl",
        )
        again = RunRecord.from_dict(
            json.loads(json.dumps(record.as_dict()))
        )
        assert again == record
        assert again.version == REGISTRY_VERSION

    def test_throughput(self):
        assert make_record().throughput == pytest.approx(10.0)
        assert make_record(wall_seconds=0.0).throughput == 0.0

    def test_from_dict_malformed(self):
        with pytest.raises(SerializationError, match="malformed"):
            RunRecord.from_dict({"experiment": "x"})  # no run_id
        with pytest.raises(SerializationError, match="malformed"):
            RunRecord.from_dict({"run_id": "r", "experiment": "x",
                                 "n_trials": "many"})


class TestRecordsDigest:
    def test_order_sensitive_and_stable(self):
        a = [{"x": 1}, {"x": 2}]
        assert records_digest(a) == records_digest([{"x": 1}, {"x": 2}])
        assert records_digest(a) != records_digest([{"x": 2}, {"x": 1}])
        assert records_digest([]) != records_digest(a)

    def test_uses_as_dict_when_available(self):
        class Rec:
            def as_dict(self):
                return {"x": 1}

        assert records_digest([Rec()]) == records_digest([{"x": 1}])


class TestRunRegistry:
    def test_append_and_load(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        assert registry.load() == []
        registry.append(make_record("run-a"))
        registry.append(make_record("run-b"))
        loaded = registry.load()
        assert [r.run_id for r in loaded] == ["run-a", "run-b"]
        assert loaded[0] == make_record("run-a")

    def test_torn_tail_tolerated_midfile_garbage_not(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        registry.append(make_record("run-a"))
        with open(registry.path, "a") as fp:
            fp.write('{"run_id": "torn')
        assert [r.run_id for r in registry.load()] == ["run-a"]
        with open(registry.path, "a") as fp:
            fp.write('\n' + json.dumps(make_record("run-b").as_dict()) + "\n")
        with pytest.raises(SerializationError, match="invalid JSON"):
            registry.load()

    def test_get_by_id_prefix_and_last(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        registry.append(make_record("run-aaaa"))
        registry.append(make_record("run-abbb"))
        registry.append(make_record("run-cccc"))
        assert registry.get("run-aaaa").run_id == "run-aaaa"
        assert registry.get("run-c").run_id == "run-cccc"
        assert registry.get("last").run_id == "run-cccc"
        assert registry.get("last~0").run_id == "run-cccc"
        assert registry.get("last~2").run_id == "run-aaaa"

    def test_get_errors(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        with pytest.raises(SerializationError, match="empty"):
            registry.get("last")
        registry.append(make_record("run-aaaa"))
        registry.append(make_record("run-abbb"))
        with pytest.raises(SerializationError, match="ambiguous"):
            registry.get("run-a")
        with pytest.raises(SerializationError, match="no registered run"):
            registry.get("run-zzzz")
        with pytest.raises(SerializationError, match="past"):
            registry.get("last~5")
        with pytest.raises(SerializationError, match="bad run reference"):
            registry.get("last~soon")

    def test_get_prefix_of_reregistered_id_returns_latest(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        registry.append(make_record("run-aaaa", wall_seconds=5.0))
        registry.append(make_record("run-aaaa", wall_seconds=7.0))
        assert registry.get("run-aaaa").wall_seconds == 7.0


class TestDiffAndGate:
    def test_clean_diff_passes_gate(self):
        diff = diff_runs(make_record("run-a"), make_record("run-b"))
        assert diff.comparable
        assert diff.digests_match is True
        assert diff.regressions(10.0) == []

    def test_injected_slowdown_trips_gate(self):
        # The acceptance-criteria scenario: a synthetic candidate whose
        # schedule phase is 50% slower (and throughput correspondingly
        # lower) must fail a 10% gate and pass a 100% gate.
        baseline = make_record("run-base")
        slow = make_record(
            "run-slow",
            wall_seconds=15.0,
            phase_seconds={"generate": 2.0, "schedule": 9.0,
                           "simulate": 1.5},
        )
        diff = diff_runs(baseline, slow)
        problems = diff.regressions(10.0)
        assert any("phase schedule" in p and "+50.0%" in p
                   for p in problems)
        assert any("throughput" in p for p in problems)
        assert diff.regressions(100.0) == []

    def test_sub_noise_phases_ignored(self):
        baseline = make_record(
            "run-a", phase_seconds={"tiny": MIN_GATE_SECONDS / 2}
        )
        candidate = make_record(
            "run-b", phase_seconds={"tiny": MIN_GATE_SECONDS * 5}
        )
        diff = diff_runs(baseline, candidate)
        assert all("tiny" not in p for p in diff.regressions(10.0))

    def test_digest_mismatch_is_a_regression(self):
        diff = diff_runs(
            make_record("run-a"),
            make_record("run-b", records_digest="e" * 32),
        )
        assert diff.digests_match is False
        assert any("digest mismatch" in p for p in diff.regressions(10.0))

    def test_unrecorded_digest_is_not_compared(self):
        diff = diff_runs(
            make_record("run-a", records_digest=""),
            make_record("run-b"),
        )
        assert diff.digests_match is None
        assert diff.regressions(10.0) == []

    def test_different_fingerprints_not_comparable(self):
        diff = diff_runs(
            make_record("run-a"),
            make_record("run-b", fingerprint="g" * 32),
        )
        assert not diff.comparable

    def test_missing_phase_counts_as_zero(self):
        diff = diff_runs(
            make_record("run-a", phase_seconds={"generate": 1.0}),
            make_record("run-b", phase_seconds={"simulate": 1.0}),
        )
        assert diff.phase_deltas["generate"] == (1.0, 0.0, -100.0)
        assert diff.phase_deltas["simulate"][2] == 0.0  # no baseline


class TestRendering:
    def test_list_newest_first(self):
        text = render_run_list(
            [make_record("run-old"), make_record("run-new")], now=2000.0
        )
        assert text.index("run-new") < text.index("run-old")
        assert "RUN" in text and "TRIALS/S" in text

    def test_list_empty(self):
        assert render_run_list([]) == "no registered runs"

    def test_show(self):
        text = render_run_show(make_record(
            supervision={"supervision.relaunches": 2.0}
        ))
        assert "run run-aaaa (figure5)" in text
        assert "supervision.relaunches" in text
        assert "records digest" in text

    def test_diff_render_flags_regression(self):
        slow = make_record(
            "run-slow",
            phase_seconds={"generate": 2.0, "schedule": 9.0,
                           "simulate": 1.5},
        )
        text = render_run_diff(diff_runs(make_record(), slow), 10.0)
        assert "REGRESSIONS (gate 10%)" in text
        assert " !" in text
        clean = render_run_diff(
            diff_runs(make_record(), make_record("run-b")), 10.0
        )
        assert "gate" in clean and "pass" in clean
