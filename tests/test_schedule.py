"""The Schedule container: queries, validation, Gantt."""

import pytest

from repro.errors import SchedulingError, UnknownNodeError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.schedule import (
    HopReservation,
    Schedule,
    ScheduledMessage,
    ScheduledTask,
)


def chain():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b", message_size=5.0)
    return g


def valid_schedule():
    g = chain()
    s = Schedule(g, System(2))
    s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
    s.place_message(
        ScheduledMessage(
            src="a", dst="b", src_processor=0, dst_processor=1, size=5.0,
            hops=(HopReservation("bus", 10.0, 15.0),),
        )
    )
    s.place_task(ScheduledTask("b", 1, 15.0, 25.0))
    return s


class TestQueries:
    def test_basic(self):
        s = valid_schedule()
        assert s.finish_time("b") == 25.0
        assert s.processor_of("a") == 0
        assert s.makespan() == 25.0
        assert s.message("a", "b").arrival == 15.0
        assert s.message("b", "a") is None

    def test_tasks_on(self):
        s = valid_schedule()
        assert [t.node_id for t in s.tasks_on(0)] == ["a"]
        assert [t.node_id for t in s.tasks_on(1)] == ["b"]

    def test_utilization(self):
        s = valid_schedule()
        util = s.processor_utilization()
        assert util[0] == pytest.approx(10.0 / 25.0)
        assert util[1] == pytest.approx(10.0 / 25.0)

    def test_communication_volume(self):
        assert valid_schedule().total_communication_volume() == 5.0

    def test_unknown_task(self):
        with pytest.raises(UnknownNodeError):
            valid_schedule().task("zzz")

    def test_empty_makespan(self):
        assert Schedule(chain(), System(2)).makespan() == 0.0


class TestConstructionErrors:
    def test_double_place_task(self):
        s = valid_schedule()
        with pytest.raises(SchedulingError):
            s.place_task(ScheduledTask("a", 0, 30.0, 40.0))

    def test_double_place_message(self):
        s = valid_schedule()
        with pytest.raises(SchedulingError):
            s.place_message(
                ScheduledMessage("a", "b", 0, 1, 5.0, hops=())
            )


class TestValidate:
    def test_valid(self):
        valid_schedule().validate()

    def test_missing_task(self):
        g = chain()
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        with pytest.raises(SchedulingError, match="missing"):
            s.validate()

    def test_pin_violation(self):
        g = chain()
        g.node("a").pinned_to = 1
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        s.place_task(ScheduledTask("b", 0, 10.0, 20.0))
        with pytest.raises(SchedulingError, match="pinned"):
            s.validate()

    def test_processor_overlap(self):
        g = chain()
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        s.place_task(ScheduledTask("b", 0, 5.0, 15.0))
        with pytest.raises(SchedulingError, match="overlap"):
            s.validate()

    def test_link_overlap(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0)
        g.add_subtask("b", wcet=1.0, release=0.0)
        g.add_subtask("c", wcet=1.0, end_to_end_deadline=50.0)
        g.add_subtask("d", wcet=1.0, end_to_end_deadline=50.0)
        g.add_edge("a", "c", message_size=5.0)
        g.add_edge("b", "d", message_size=5.0)
        s = Schedule(g, System(4))
        s.place_task(ScheduledTask("a", 0, 0.0, 1.0))
        s.place_task(ScheduledTask("b", 1, 0.0, 1.0))
        s.place_message(ScheduledMessage(
            "a", "c", 0, 2, 5.0, hops=(HopReservation("bus", 1.0, 6.0),)
        ))
        s.place_message(ScheduledMessage(
            "b", "d", 1, 3, 5.0, hops=(HopReservation("bus", 3.0, 8.0),)
        ))
        s.place_task(ScheduledTask("c", 2, 6.0, 7.0))
        s.place_task(ScheduledTask("d", 3, 8.0, 9.0))
        with pytest.raises(SchedulingError, match="overlap on link"):
            s.validate()

    def test_missing_transfer_for_cross_processor_arc(self):
        g = chain()
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        s.place_task(ScheduledTask("b", 1, 10.0, 20.0))
        with pytest.raises(SchedulingError, match="no scheduled transfer"):
            s.validate()

    def test_message_departs_before_producer_finishes(self):
        g = chain()
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        s.place_message(ScheduledMessage(
            "a", "b", 0, 1, 5.0, hops=(HopReservation("bus", 5.0, 10.0),)
        ))
        s.place_task(ScheduledTask("b", 1, 10.0, 20.0))
        with pytest.raises(SchedulingError, match="departs"):
            s.validate()

    def test_consumer_starts_before_arrival(self):
        g = chain()
        s = Schedule(g, System(2))
        s.place_task(ScheduledTask("a", 0, 0.0, 10.0))
        s.place_message(ScheduledMessage(
            "a", "b", 0, 1, 5.0, hops=(HopReservation("bus", 10.0, 15.0),)
        ))
        s.place_task(ScheduledTask("b", 1, 12.0, 22.0))
        with pytest.raises(SchedulingError, match="before its"):
            s.validate()


class TestGantt:
    def test_renders_rows_per_processor(self):
        text = valid_schedule().gantt()
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("P00 |")
        assert lines[1].startswith("P01 |")

    def test_empty(self):
        assert "(empty schedule)" in Schedule(chain(), System(1)).gantt()
