"""Processors, systems, and interconnect topologies."""

import pytest

from repro.errors import ValidationError
from repro.machine.processor import Processor
from repro.machine.system import System
from repro.machine.topology import (
    TOPOLOGIES,
    FullyConnected,
    IdealNetwork,
    Mesh2D,
    Ring,
    SharedBus,
    make_interconnect,
)


class TestProcessor:
    def test_execution_time_scaled_by_speed(self):
        assert Processor(0, speed=2.0).execution_time(10.0) == 5.0
        assert Processor(0).execution_time(10.0) == 10.0

    def test_bad_params(self):
        with pytest.raises(ValidationError):
            Processor(-1)
        with pytest.raises(ValidationError):
            Processor(0, speed=0.0)


class TestSystem:
    def test_default_is_paper_platform(self):
        s = System(4)
        assert s.n_processors == 4
        assert s.interconnect.name == "bus"
        assert s.is_homogeneous

    def test_heterogeneous_speeds(self):
        s = System(2, speeds=[1.0, 2.0])
        assert not s.is_homogeneous
        assert s.execution_time(1, 10.0) == 5.0

    def test_speed_count_mismatch(self):
        with pytest.raises(ValidationError):
            System(3, speeds=[1.0, 2.0])

    def test_interconnect_size_mismatch(self):
        with pytest.raises(ValidationError):
            System(4, interconnect=SharedBus(8))

    def test_processor_lookup_bounds(self):
        s = System(2)
        with pytest.raises(ValidationError):
            s.processor(2)
        with pytest.raises(ValidationError):
            System(0)


class TestSharedBus:
    def test_single_link(self):
        bus = SharedBus(4)
        assert bus.route(0, 1) == ["bus"]
        assert bus.route(3, 2) == ["bus"]
        assert bus.route(2, 2) == []

    def test_hop_cost_one_unit_per_item(self):
        assert SharedBus(2).hop_cost(7.0) == 7.0
        assert SharedBus(2, cost_per_item=0.5).hop_cost(7.0) == 3.5

    def test_uncontended_latency(self):
        bus = SharedBus(4)
        assert bus.uncontended_latency(0, 1, 6.0) == 6.0
        assert bus.uncontended_latency(1, 1, 6.0) == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ValidationError):
            SharedBus(2).route(0, 5)


class TestFullyConnected:
    def test_per_pair_links(self):
        fc = FullyConnected(4)
        assert fc.route(0, 1) == ["link(0,1)"]
        assert fc.route(1, 0) == ["link(0,1)"]  # duplex
        assert fc.route(2, 3) != fc.route(0, 1)


class TestRing:
    def test_adjacent(self):
        ring = Ring(6)
        assert ring.route(0, 1) == ["ring(0,1)"]

    def test_shorter_direction(self):
        ring = Ring(6)
        # 0 -> 5 is one hop backward, not five forward.
        assert ring.route(0, 5) == ["ring(0,5)"]
        # 0 -> 2 forward.
        assert ring.route(0, 2) == ["ring(0,1)", "ring(1,2)"]

    def test_route_length_never_exceeds_half(self):
        ring = Ring(8)
        for src in range(8):
            for dst in range(8):
                assert len(ring.route(src, dst)) <= 4

    def test_route_is_connected(self):
        ring = Ring(5)
        for src in range(5):
            for dst in range(5):
                hops = ring.route(src, dst)
                assert len(hops) == min((dst - src) % 5, (src - dst) % 5)


class TestMesh:
    def test_grid_layout(self):
        mesh = Mesh2D(9)  # 3x3
        assert mesh.cols == 3
        # 0 -> 8: two columns east, two rows south = 4 hops.
        assert len(mesh.route(0, 8)) == 4

    def test_xy_routing_deterministic(self):
        mesh = Mesh2D(9)
        assert mesh.route(0, 4) == ["mesh(0,1)", "mesh(1,4)"]

    def test_same_row(self):
        mesh = Mesh2D(9)
        assert mesh.route(3, 5) == ["mesh(3,4)", "mesh(4,5)"]

    def test_partial_last_row(self):
        mesh = Mesh2D(7)  # 3 cols, last row partial
        assert mesh.route(0, 6) == ["mesh(0,3)", "mesh(3,6)"]


class TestIdealNetwork:
    def test_uncontended(self):
        net = IdealNetwork(4)
        assert not net.contended
        assert len(net.route(0, 3)) == 1
        assert net.uncontended_latency(0, 3, 5.0) == 5.0


class TestFactory:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_make_all(self, name):
        net = make_interconnect(name, 4)
        assert net.n_processors == 4
        assert net.name == name or name in ("fully-connected",)

    def test_unknown(self):
        with pytest.raises(ValidationError):
            make_interconnect("torus", 4)
