"""SVG and JSON export of schedules and traces."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.slicer import bst
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.export import schedule_to_json, schedule_to_svg, trace_to_svg
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule
from repro.sched.simulator import simulate_dynamic


@pytest.fixture
def scheduled():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0, pinned_to=0)
    g.add_subtask("b", wcet=10.0, end_to_end_deadline=100.0, pinned_to=1)
    g.add_edge("a", "b", message_size=5.0)
    assignment = bst("PURE", "CCNE").distribute(g)
    schedule = ListScheduler(System(2)).schedule(g, assignment)
    return g, assignment, schedule


class TestScheduleSvg:
    def test_valid_xml_with_expected_elements(self, scheduled):
        _, assignment, schedule = scheduled
        svg = schedule_to_svg(schedule, assignment)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        texts = [
            el.text for el in root.iter()
            if el.tag.endswith("text") and el.text
        ]
        assert "P00" in texts and "P01" in texts
        assert "net" in texts  # the message row exists
        assert any(t == "a" for t in texts)

    def test_late_subtask_marked_red(self):
        g = TaskGraph()
        g.add_subtask("x", wcet=10.0, release=0.0, end_to_end_deadline=5.0)
        assignment = bst("PURE", "CCNE").distribute(g)
        schedule = ListScheduler(System(1)).schedule(g, assignment)
        svg = schedule_to_svg(schedule, assignment)
        assert "#C44E52" in svg

    def test_windows_drawn_when_assignment_given(self, scheduled):
        _, assignment, schedule = scheduled
        with_windows = schedule_to_svg(schedule, assignment)
        without = schedule_to_svg(schedule)
        assert with_windows.count("#E8E8E8") > without.count("#E8E8E8")

    def test_empty_schedule_rejected(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0, end_to_end_deadline=5.0)
        empty = Schedule(g, System(1))
        with pytest.raises(ValidationError):
            schedule_to_svg(empty)


class TestTraceSvg:
    def test_valid_xml(self, scheduled):
        g, assignment, _ = scheduled
        trace = simulate_dynamic(g, assignment, System(2))
        svg = trace_to_svg(trace)
        root = ET.fromstring(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        # background + one rect per segment at least
        assert len(rects) >= 1 + len(trace.segments)


class TestScheduleJson:
    def test_round_trippable_and_sorted(self, scheduled):
        _, __, schedule = scheduled
        data = json.loads(schedule_to_json(schedule))
        assert data["format"] == "repro-schedule"
        assert data["n_processors"] == 2
        ids = [t["id"] for t in data["tasks"]]
        assert ids == ["a", "b"]
        starts = [t["start"] for t in data["tasks"]]
        assert starts == sorted(starts)
        assert data["messages"][0]["hops"][0]["link"] == "bus"
        assert data["makespan"] == schedule.makespan()
