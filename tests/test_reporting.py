"""Markdown report generation."""

import pytest

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.reporting import (
    improvement_section,
    lateness_section,
    render_report,
)
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(
        name="report-exp",
        description="reporting test experiment",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 12), depth_range=(3, 4)
        ),
        scenarios=("MDET",),
        n_graphs=4,
        system_sizes=(2, 4),
        seed=2,
    )
    return run_experiment(cfg)


class TestLatenessSection:
    def test_contains_tables_and_metadata(self, result):
        text = lateness_section(result)
        assert text.startswith("## report-exp")
        assert "### MDET" in text
        assert "| procs | PURE | ADAPT |" in text
        assert "| 2 |" in text and "| 4 |" in text
        assert "4 graphs/combination" in text

    def test_values_are_formatted_floats(self, result):
        text = lateness_section(result)
        rows = [l for l in text.splitlines() if l.startswith("| 2 |")]
        cells = rows[0].split("|")[2:4]
        for cell in cells:
            float(cell.strip())


class TestImprovementSection:
    def test_contains_relative_values(self, result):
        text = improvement_section(result, "PURE")
        assert "Improvement over PURE" in text
        assert "%" in text
        assert "ADAPT" in text

    def test_unknown_baseline(self, result):
        with pytest.raises(ExperimentError):
            improvement_section(result, "NOPE")

    def test_baseline_only_experiment_rejected(self):
        cfg = ExperimentConfig(
            name="solo",
            description="d",
            methods=(MethodSpec(label="PURE", metric="PURE"),),
            graph_config=RandomGraphConfig(
                n_subtasks_range=(8, 10), depth_range=(3, 4)
            ),
            scenarios=("MDET",),
            n_graphs=1,
            system_sizes=(2,),
        )
        solo = run_experiment(cfg)
        with pytest.raises(ExperimentError):
            improvement_section(solo, "PURE")


class TestRenderReport:
    def test_full_document(self, result):
        text = render_report([result], title="My title", baseline="PURE")
        assert text.startswith("# My title")
        assert "## report-exp" in text
        assert "Improvement over PURE" in text

    def test_without_baseline(self, result):
        text = render_report([result])
        assert "Improvement over" not in text

    def test_missing_baseline_skipped_gracefully(self, result):
        text = render_report([result], baseline="NOT-THERE")
        assert "Improvement over" not in text

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_report([])


class TestCliIntegration:
    def test_markdown_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main([
            "run", "figure5", "--graphs", "2", "--sizes", "2", "--quiet",
            "--markdown", str(out), "--baseline", "PURE",
        ])
        assert code == 0
        text = out.read_text()
        assert text.startswith("# Experiment report: figure5")
        assert "Improvement over PURE" in text
