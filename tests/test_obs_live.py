"""Live telemetry: status streams, the sampler, the board, OpenMetrics."""

import json
import os
import threading
import time

import pytest

from repro.errors import ExperimentWarning, SerializationError
from repro.feast.instrumentation import Instrumentation
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.board import find_status_file, render_board, sparkline
from repro.obs.live import (
    STATUS_FORMAT,
    STATUS_VERSION,
    StatusSampler,
    StatusStream,
    activate_status,
    active_status,
    probe,
    publish,
    read_status,
)
from repro.obs.promexport import metric_name, openmetrics_text, write_openmetrics


def make_stream(tmp_path, name="fig"):
    return StatusStream(
        str(tmp_path / f"{name}.status.jsonl"), name, "run-1"
    )


class TestStatusStream:
    def test_header_then_events_then_final(self, tmp_path):
        stream = make_stream(tmp_path)
        stream.emit("progress", scenario="MDET", index=0, trials=6)
        stream.close(records=36)
        events = read_status(stream.path)
        assert [e["kind"] for e in events] == ["header", "progress", "final"]
        header = events[0]
        assert header["format"] == STATUS_FORMAT
        assert header["version"] == STATUS_VERSION
        assert header["experiment"] == "fig"
        assert header["run_id"] == "run-1"
        assert events[-1]["records"] == 36

    def test_seq_is_monotonic_and_ts_present(self, tmp_path):
        stream = make_stream(tmp_path)
        for i in range(5):
            stream.emit("progress", index=i)
        stream.close()
        events = read_status(stream.path)
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(isinstance(e["ts"], float) for e in events)

    def test_concurrent_emits_produce_whole_lines(self, tmp_path):
        stream = make_stream(tmp_path)

        def spam(n):
            for i in range(50):
                stream.emit("progress", worker=n, index=i)

        threads = [
            threading.Thread(target=spam, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stream.close()
        events = read_status(stream.path)
        # header + 200 progress + final, every line parseable, seqs unique
        assert len(events) == 202
        assert len({e["seq"] for e in events}) == len(events)

    def test_write_failure_disables_stream_with_warning(self, tmp_path):
        stream = make_stream(tmp_path)
        stream._fp.close()  # simulate the disk going away
        with pytest.warns(ExperimentWarning, match="live telemetry"):
            stream.emit("progress", index=0)
        # Later emits are silent no-ops, not repeated warnings.
        stream.emit("progress", index=1)
        stream.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        stream = make_stream(tmp_path)
        stream.emit("progress", index=0)
        with open(stream.path, "a") as fp:
            fp.write('{"kind": "progress", "trunca')
        events = read_status(stream.path)
        assert [e["kind"] for e in events] == ["header", "progress"]

    def test_midfile_garbage_raises(self, tmp_path):
        stream = make_stream(tmp_path)
        stream.emit("progress", index=0)
        with open(stream.path, "a") as fp:
            fp.write("not json\n")
            fp.write(json.dumps({"kind": "final", "seq": 9, "ts": 0.0}) + "\n")
        with pytest.raises(SerializationError, match="invalid JSON"):
            read_status(stream.path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.status.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(SerializationError, match="unknown kind"):
            read_status(str(path))

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "wrong.status.jsonl"
        path.write_text(json.dumps({
            "kind": "header", "format": "repro-trace", "version": 1,
            "seq": 0, "ts": 0.0,
        }) + "\n")
        with pytest.raises(SerializationError, match="not a status stream"):
            read_status(str(path))

    def test_missing_and_empty_files_raise(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            read_status(str(tmp_path / "nope.status.jsonl"))
        empty = tmp_path / "empty.status.jsonl"
        empty.write_text("")
        with pytest.raises(SerializationError, match="empty"):
            read_status(str(empty))


class TestAmbientHooks:
    def test_publish_is_noop_without_active_stream(self):
        assert active_status() is None
        publish("progress", index=0)  # must not raise

    def test_activate_publish_probe(self, tmp_path):
        stream = make_stream(tmp_path)
        with activate_status(stream):
            assert active_status() is stream
            publish("progress", index=1)
            with probe("fleet", lambda: {"slots": []}):
                assert stream.probe_snapshot() == {"fleet": {"slots": []}}
            assert stream.probe_snapshot() == {}
        assert active_status() is None
        stream.close()
        kinds = [e["kind"] for e in read_status(stream.path)]
        assert kinds == ["header", "progress", "final"]

    def test_probe_noop_without_stream(self):
        with probe("fleet", lambda: {}):
            pass  # must not raise

    def test_raising_probe_reports_error(self, tmp_path):
        stream = make_stream(tmp_path)

        def bad():
            raise RuntimeError("probe boom")

        stream.add_probe("bad", bad)
        snap = stream.probe_snapshot()
        assert "RuntimeError: probe boom" in snap["bad"]["error"]
        stream.close()


class TestStatusSampler:
    def make_inst(self, done=12, total=36):
        inst = Instrumentation(telemetry=Telemetry())
        inst.start(total)
        inst.trials_completed = done
        inst.timings.add("generate", 0.5)
        inst.timings.add("schedule", 1.5)
        return inst

    def test_snapshot_shape(self, tmp_path):
        stream = make_stream(tmp_path)
        sampler = StatusSampler(
            stream, self.make_inst(), backend="pool", jobs=4, shards=0
        )
        snap = sampler.snapshot()
        assert snap["trials"] == {"done": 12, "total": 36, "replayed": 0}
        assert snap["throughput"]["overall"] > 0
        assert snap["eta_seconds"] is not None
        assert snap["phases"]["generate"] == 0.5
        assert snap["engine"] == {"backend": "pool", "jobs": 4, "shards": 0}
        assert snap["parent"]["pid"] == os.getpid()
        stream.close()

    def test_probe_output_lands_in_snapshot(self, tmp_path):
        stream = make_stream(tmp_path)
        stream.add_probe("fleet", lambda: {"slots": [{"ident": "s0"}]})
        sampler = StatusSampler(stream, self.make_inst())
        snap = sampler.snapshot()
        assert snap["probes"]["fleet"]["slots"][0]["ident"] == "s0"
        stream.close()

    def test_thread_samples_and_final_tick(self, tmp_path):
        stream = make_stream(tmp_path)
        sampler = StatusSampler(stream, self.make_inst(), interval=0.02)
        with sampler:
            time.sleep(0.1)
        stream.close()
        statuses = [
            e for e in read_status(stream.path) if e["kind"] == "status"
        ]
        # several periodic ticks plus the final stop() tick
        assert len(statuses) >= 2
        assert sampler.samples_taken == len(statuses)

    def test_metrics_out_written_atomically(self, tmp_path):
        out = tmp_path / "metrics.prom"
        sampler = StatusSampler(
            None, self.make_inst(), metrics_out=str(out)
        )
        sampler._tick()
        text = out.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_trials_done" in text

    def test_metrics_export_failure_disables_export(self, tmp_path):
        bad = tmp_path / "no" / "such" / "dir" / "m.prom"
        sampler = StatusSampler(
            None, self.make_inst(), metrics_out=str(bad)
        )
        with pytest.warns(ExperimentWarning, match="export disabled"):
            sampler._tick()
        assert sampler.metrics_out is None
        sampler._tick()  # silent no-op now

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(SerializationError, match="interval"):
            StatusSampler(None, self.make_inst(), interval=0)

    def test_recent_rate_uses_delta(self, tmp_path):
        inst = self.make_inst(done=10)
        sampler = StatusSampler(None, inst)
        sampler.snapshot()
        inst.trials_completed = 30
        snap = sampler.snapshot()
        assert snap["throughput"]["recent"] > 0


class TestBoard:
    def finished_stream(self, tmp_path):
        stream = make_stream(tmp_path)
        inst = Instrumentation()
        inst.start(36)
        inst.trials_completed = 18
        inst.timings.add("schedule", 1.0)
        sampler = StatusSampler(stream, inst)
        stream.add_probe("fleet", lambda: {"slots": [{
            "ident": "shard-0-of-2", "shard": 0, "state": "running",
            "pid": 4242, "launches": 1, "records_seen": 3,
            "heartbeat_age": 0.4,
        }]})
        stream.emit("status", **sampler.snapshot())
        stream.emit(
            "supervision", event="relaunch", ident="shard-0-of-2",
            detail="exit 86; relaunching in 0.05s",
        )
        stream.close(records=36)
        return stream.path

    def test_render_board_sections(self, tmp_path):
        board = render_board(read_status(self.finished_stream(tmp_path)))
        assert "repro top — fig" in board
        assert "18/36 trials" in board
        assert "shard-0-of-2" in board and "running" in board
        assert "supervision incidents (1)" in board
        assert "relaunch" in board
        assert "[finished]" in board

    def test_render_board_without_snapshots(self, tmp_path):
        stream = make_stream(tmp_path)
        stream.emit("progress", scenario="MDET", index=0, trials=6)
        stream.close()
        board = render_board(read_status(stream.path))
        assert "no status snapshots yet" in board

    def test_find_status_file_picks_newest_in_dir(self, tmp_path):
        older = make_stream(tmp_path, "older")
        older.close()
        time.sleep(0.02)
        newer = make_stream(tmp_path, "newer")
        newer.close()
        os.utime(older.path, (1, 1))
        assert find_status_file(str(tmp_path)) == newer.path

    def test_find_status_file_errors(self, tmp_path):
        with pytest.raises(SerializationError, match="--trace"):
            find_status_file(str(tmp_path))
        with pytest.raises(SerializationError, match="no such"):
            find_status_file(str(tmp_path / "gone.status.jsonl"))

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[-1] == "█"


class TestPromExport:
    def test_metric_name_sanitization(self):
        assert metric_name("phase.generate.seconds") == (
            "repro_phase_generate_seconds"
        )
        assert metric_name("weird name!") == "repro_weird_name"
        assert metric_name("9lives") == "repro_m_9lives"

    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.count("engine.retries", 3)
        reg.gauge("worker.rss_max_kb", 1024)
        reg.observe("phase.schedule.seconds", 0.002, buckets=(0.001, 0.01))
        reg.observe("phase.schedule.seconds", 5.0)
        telemetry = Telemetry()
        telemetry.metrics.merge(reg)
        text = openmetrics_text(
            registry=telemetry.metrics, experiment="fig", run_id="r1"
        )
        assert "# TYPE repro_engine_retries counter" in text
        assert (
            'repro_engine_retries_total{experiment="fig",run_id="r1"} 3.0'
            in text
        )
        assert "# TYPE repro_worker_rss_max_kb gauge" in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'le="0.001"' in text and 'le="+Inf"' in text
        inf_line = next(
            line for line in text.splitlines() if 'le="+Inf"' in line
        )
        assert inf_line.endswith(" 2.0")
        assert "repro_phase_schedule_seconds_count" in text
        assert text.endswith("# EOF\n")

    def test_cumulative_bucket_counts(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 2.5):
            reg.observe("m", v, buckets=(1.0, 2.0))
        text = openmetrics_text(registry=reg)
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_m_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == [1.0, 2.0, 3.0]  # cumulative

    def test_empty_exposition_is_valid(self):
        assert openmetrics_text() == "# EOF\n"

    def test_write_openmetrics_atomic(self, tmp_path):
        out = tmp_path / "m.prom"
        write_openmetrics(str(out), snapshot={
            "trials": {"done": 1, "total": 2, "replayed": 0},
            "throughput": {"overall": 1.0, "recent": 2.0},
            "eta_seconds": 3.0,
            "wall_elapsed": 1.0,
            "phases": {"generate": 0.5},
            "faults": {"retries": 1},
            "parent": {"rss_max_kb": 100},
        }, experiment="fig", run_id="r1")
        text = out.read_text()
        assert 'repro_eta_seconds{experiment="fig",run_id="r1"} 3.0' in text
        assert 'phase="generate"' in text
        assert 'fault="retries"' in text
        assert not list(tmp_path.glob("*.tmp"))

    def test_label_escaping(self):
        text = openmetrics_text(
            snapshot={"trials": {}, "throughput": {}},
            experiment='we"ird\\name',
        )
        assert '\\"' in text and "\\\\" in text
