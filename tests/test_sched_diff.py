"""Schedule diffing."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.slicer import ast, bst
from repro.errors import ValidationError
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.diff import diff_schedules
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule, ScheduledTask


import random


@pytest.fixture
def workload():
    return generate_task_graph(
        RandomGraphConfig(n_subtasks_range=(12, 16), depth_range=(3, 5)),
        rng=random.Random(8),
    )


class TestDiff:
    def test_identical_schedules(self, workload):
        assignment = bst("PURE", "CCNE").distribute(workload)
        schedule = ListScheduler(System(4)).schedule(workload, assignment)
        diff = diff_schedules(schedule, schedule, assignment, assignment)
        assert diff.migrations == []
        assert diff.makespan_delta == 0.0
        assert diff.communication_delta == 0.0
        assert diff.bottleneck_before == diff.bottleneck_after
        assert all(d.start_delta == 0.0 for d in diff.deltas)

    def test_different_metrics_produce_structured_diff(self, workload):
        pure = bst("PURE", "CCNE").distribute(workload)
        adapt = ast("ADAPT").distribute(workload, n_processors=2)
        s_pure = ListScheduler(System(2)).schedule(workload, pure)
        s_adapt = ListScheduler(System(2)).schedule(workload, adapt)
        diff = diff_schedules(s_pure, s_adapt, pure, adapt)
        assert len(diff.deltas) == workload.n_subtasks
        assert diff.max_lateness_before is not None
        assert diff.max_lateness_after is not None
        text = diff.summary()
        assert "migrated" in text and "max lateness" in text

    def test_topology_change_shows_in_communication(self, workload):
        assignment = bst("PURE", "CCNE").distribute(workload)
        bus = ListScheduler(System(8)).schedule(workload, assignment)
        ideal = ListScheduler(
            System(8, interconnect=IdealNetwork(8))
        ).schedule(workload, assignment)
        diff = diff_schedules(bus, ideal)
        # Without assignments, bottlenecks stay unset but structure works.
        assert diff.bottleneck_before is None
        assert diff.makespan_after <= diff.makespan_before + 1e-6

    def test_mismatched_graphs_rejected(self, workload):
        assignment = bst("PURE", "CCNE").distribute(workload)
        schedule = ListScheduler(System(2)).schedule(workload, assignment)
        other_graph = TaskGraph()
        other_graph.add_subtask(
            "x", wcet=1.0, release=0.0, end_to_end_deadline=5.0
        )
        other_assignment = bst("PURE", "CCNE").distribute(other_graph)
        other = ListScheduler(System(2)).schedule(
            other_graph, other_assignment
        )
        with pytest.raises(ValidationError, match="different subtask sets"):
            diff_schedules(schedule, other)

    def test_migration_detection(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
        g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
        assignment = bst("PURE", "CCNE").distribute(g)
        two = ListScheduler(System(2)).schedule(g, assignment)
        one = ListScheduler(System(1)).schedule(g, assignment)
        # Rebuild 'one' on a 2-proc system for an apples-to-apples set:
        g1 = g.copy()
        g1.node("a").pinned_to = 0
        g1.node("b").pinned_to = 0
        a1 = bst("PURE", "CCNE").distribute(g1)
        pinned = ListScheduler(System(2)).schedule(g1, a1)
        diff = diff_schedules(two, pinned)
        assert len(diff.migrations) == 1  # b moved from P1 to P0
        assert diff.migrations[0].node_id == "b"


def _two_task_graph():
    g = TaskGraph(name="ab")
    g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
    g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
    return g


def _hand_schedule(graph, placements):
    """A Schedule built directly from (node, proc, start, finish) rows."""
    schedule = Schedule(graph, System(2, interconnect=IdealNetwork(2)))
    for node_id, proc, start, finish in placements:
        schedule.place_task(
            ScheduledTask(
                node_id=node_id, processor=proc, start=start, finish=finish
            )
        )
    return schedule


class TestDiffExactFields:
    """Hand-built schedules with every TaskDelta field pinned exactly."""

    def test_migration_delta_fields(self):
        graph = _two_task_graph()
        before = _hand_schedule(
            graph, [("a", 0, 0.0, 10.0), ("b", 1, 0.0, 10.0)]
        )
        after = _hand_schedule(
            graph, [("a", 0, 0.0, 10.0), ("b", 0, 10.0, 20.0)]
        )
        diff = diff_schedules(before, after)

        assert [d.node_id for d in diff.deltas] == ["a", "b"]  # sorted
        a, b = diff.deltas
        assert (a.processor_before, a.processor_after) == (0, 0)
        assert (a.start_delta, a.finish_delta) == (0.0, 0.0)
        assert not a.migrated
        assert (b.processor_before, b.processor_after) == (1, 0)
        assert (b.start_delta, b.finish_delta) == (10.0, 10.0)
        assert b.migrated
        assert diff.migrations == [b]
        assert diff.makespan_before == 10.0
        assert diff.makespan_after == 20.0
        assert diff.makespan_delta == 10.0
        assert diff.communication_delta == 0.0

    def test_identical_hand_schedules_have_empty_delta(self):
        graph = _two_task_graph()
        rows = [("a", 0, 0.0, 10.0), ("b", 1, 2.0, 12.0)]
        diff = diff_schedules(
            _hand_schedule(graph, rows), _hand_schedule(graph, rows)
        )
        assert diff.migrations == []
        assert all(
            (d.start_delta, d.finish_delta) == (0.0, 0.0)
            for d in diff.deltas
        )
        assert diff.makespan_delta == 0.0
        # Without assignments the lateness side stays unset entirely.
        assert diff.max_lateness_before is None
        assert diff.max_lateness_after is None
        assert diff.bottleneck_before is None

    def test_bottleneck_and_lateness_from_assignments(self):
        graph = _two_task_graph()
        assignment = DeadlineAssignment(
            graph=graph, metric_name="X", comm_strategy_name="Y",
            windows={
                "a": Window(release=0.0, absolute_deadline=15.0, cost=10.0),
                "b": Window(release=0.0, absolute_deadline=30.0, cost=10.0),
            },
            message_windows={},
        )
        before = _hand_schedule(
            graph, [("a", 0, 0.0, 10.0), ("b", 1, 0.0, 10.0)]
        )
        after = _hand_schedule(
            graph, [("a", 0, 10.0, 20.0), ("b", 1, 0.0, 10.0)]
        )
        diff = diff_schedules(before, after, assignment, assignment)
        # before: lateness a = -5, b = -20 -> bottleneck a at -5.
        assert diff.bottleneck_before == "a"
        assert diff.max_lateness_before == pytest.approx(-5.0)
        # after: a finishes at 20 -> lateness +5, still the bottleneck.
        assert diff.bottleneck_after == "a"
        assert diff.max_lateness_after == pytest.approx(5.0)
        assert "max lateness" in diff.summary()

    def test_subset_subtask_sets_rejected(self):
        graph = _two_task_graph()
        full = _hand_schedule(
            graph, [("a", 0, 0.0, 10.0), ("b", 1, 0.0, 10.0)]
        )
        partial = _hand_schedule(graph, [("a", 0, 0.0, 10.0)])
        with pytest.raises(ValidationError, match="different subtask sets"):
            diff_schedules(full, partial)
        with pytest.raises(ValidationError, match="different subtask sets"):
            diff_schedules(partial, full)
