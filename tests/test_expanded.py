"""The expanded graph: communication-subtask materialization."""

import pytest

from repro.core.commcost import CCAA, CCNE
from repro.core.expanded import ExpandedGraph
from repro.graph.taskgraph import TaskGraph


def build():
    g = TaskGraph()
    g.add_subtask("a", wcet=1.0, release=0.0)
    g.add_subtask("b", wcet=2.0)
    g.add_subtask("c", wcet=3.0, end_to_end_deadline=30.0)
    g.add_edge("a", "b", message_size=5.0)
    g.add_edge("b", "c", message_size=0.0)  # pure precedence
    return g


class TestCCNEExpansion:
    def test_no_comm_nodes(self):
        e = ExpandedGraph(build(), CCNE())
        assert len(e) == 3
        assert e.comm_nodes() == []
        assert e.successors("a") == ["b"]

    def test_anchors(self):
        e = ExpandedGraph(build(), CCNE())
        assert e.static_release == {"a": 0.0}
        assert e.static_deadline == {"c": 30.0}


class TestCCAAExpansion:
    def test_comm_node_spliced(self):
        e = ExpandedGraph(build(), CCAA())
        assert len(e) == 4  # 3 tasks + 1 comm node for the sized message
        comm = e.comm_nodes()
        assert len(comm) == 1
        assert comm[0].eid == "chi(a->b)"
        assert comm[0].cost == 5.0
        assert e.successors("a") == ["chi(a->b)"]
        assert e.predecessors("b") == ["chi(a->b)"]

    def test_zero_size_message_not_materialized(self):
        e = ExpandedGraph(build(), CCAA())
        # b -> c carries no data: stays a plain edge even under CCAA.
        assert e.successors("b") == ["c"]

    def test_topological_order_respects_comm_nodes(self):
        e = ExpandedGraph(build(), CCAA())
        order = e.topological_order()
        assert order.index("a") < order.index("chi(a->b)") < order.index("b")

    def test_node_kinds(self):
        e = ExpandedGraph(build(), CCAA())
        assert e.node("a").is_task and not e.node("a").is_comm
        assert e.node("chi(a->b)").is_comm
        assert e.node("chi(a->b)").edge == ("a", "b")
        assert "chi(a->b)" in e
        assert len(e.task_nodes()) == 3


class TestPinnedExpansion:
    def test_pinned_same_proc_no_comm_node_under_ccaa(self):
        g = build()
        g.node("a").pinned_to = 0
        g.node("b").pinned_to = 0
        e = ExpandedGraph(g, CCAA())
        assert e.comm_nodes() == []

    def test_pinned_cross_proc_comm_node_under_ccne(self):
        g = build()
        g.node("a").pinned_to = 0
        g.node("b").pinned_to = 1
        e = ExpandedGraph(g, CCNE())
        assert [n.eid for n in e.comm_nodes()] == ["chi(a->b)"]
