"""Statistical aggregation over trial records."""

import math

import pytest

from repro.errors import ExperimentError
from repro.feast.aggregate import (
    group_records,
    improvement_over,
    mean_max_lateness,
    summarize,
    summarize_by,
)
from repro.feast.runner import TrialRecord


def record(method="A", scenario="MDET", size=2, lateness=-10.0, index=0):
    return TrialRecord(
        experiment="e",
        scenario=scenario,
        n_processors=size,
        method=method,
        graph_index=index,
        max_lateness=lateness,
        mean_lateness=lateness / 2,
        n_late=0,
        makespan=100.0,
        mean_utilization=0.5,
        min_laxity=5.0,
    )


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std == pytest.approx(math.sqrt(5.0 / 3.0))

    def test_ci_contains_mean(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        lo, hi = s.ci95
        assert lo < s.mean < hi
        # t(3) = 3.182
        assert s.ci95_half_width == pytest.approx(
            3.182 * s.std / 2.0, rel=1e-3
        )

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.mean == 7.0
        assert s.std == 0.0
        assert math.isnan(s.ci95_half_width)

    def test_large_sample_uses_normal_quantile(self):
        s = summarize(list(range(200)))
        assert s.ci95_half_width == pytest.approx(
            1.96 * s.std / math.sqrt(200), rel=1e-2
        )

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])


class TestGrouping:
    def test_group_records(self):
        records = [record(method="A"), record(method="B"), record(method="A")]
        groups = group_records(records, key=lambda r: (r.method,))
        assert {k: len(v) for k, v in groups.items()} == {("A",): 2, ("B",): 1}

    def test_summarize_by(self):
        records = [
            record(method="A", lateness=-10.0),
            record(method="A", lateness=-20.0),
            record(method="B", lateness=-5.0),
        ]
        out = summarize_by(records, key=lambda r: (r.method,))
        assert out[("A",)].mean == -15.0
        assert out[("B",)].mean == -5.0

    def test_mean_max_lateness_keys(self):
        records = [
            record(method="A", scenario="LDET", size=2, lateness=-10.0),
            record(method="A", scenario="LDET", size=2, lateness=-30.0),
            record(method="A", scenario="LDET", size=4, lateness=-50.0),
        ]
        means = mean_max_lateness(records)
        assert means[("LDET", "A", 2)] == -20.0
        assert means[("LDET", "A", 4)] == -50.0


class TestImprovement:
    def test_positive_when_method_beats_baseline(self):
        records = [
            record(method="PURE", lateness=-100.0, index=0),
            record(method="ADAPT", lateness=-150.0, index=0),
        ]
        imp = improvement_over(records, "PURE")
        assert imp[("MDET", "ADAPT", 2)] == pytest.approx(0.5)

    def test_negative_when_method_worse(self):
        records = [
            record(method="PURE", lateness=-100.0),
            record(method="ADAPT", lateness=-80.0),
        ]
        imp = improvement_over(records, "PURE")
        assert imp[("MDET", "ADAPT", 2)] == pytest.approx(-0.2)

    def test_baseline_not_reported(self):
        records = [
            record(method="PURE", lateness=-100.0),
            record(method="ADAPT", lateness=-80.0),
        ]
        imp = improvement_over(records, "PURE")
        assert ("MDET", "PURE", 2) not in imp

    def test_missing_baseline_skipped(self):
        records = [record(method="ADAPT", lateness=-80.0)]
        assert improvement_over(records, "PURE") == {}
