"""Communication-cost estimation strategies."""

import pytest

from repro.core.commcost import CCAA, CCNE, Oracle, Scaled, make_estimator
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph


def build(pin_a=None, pin_b=None):
    g = TaskGraph()
    g.add_subtask("a", wcet=1.0, release=0.0, pinned_to=pin_a)
    g.add_subtask("b", wcet=1.0, end_to_end_deadline=10.0, pinned_to=pin_b)
    g.add_edge("a", "b", message_size=6.0)
    return g


class TestCCNE:
    def test_relaxed_is_zero(self):
        g = build()
        assert CCNE().estimate(g, g.message("a", "b")) == 0.0

    def test_pinned_same_processor_zero(self):
        g = build(pin_a=1, pin_b=1)
        assert CCNE().estimate(g, g.message("a", "b")) == 0.0

    def test_pinned_different_processors_actual(self):
        # Known cross-processor pairs override the optimistic estimate.
        g = build(pin_a=0, pin_b=1)
        assert CCNE().estimate(g, g.message("a", "b")) == 6.0

    def test_cost_per_item(self):
        g = build(pin_a=0, pin_b=1)
        assert CCNE(cost_per_item=2.0).estimate(g, g.message("a", "b")) == 12.0


class TestCCAA:
    def test_relaxed_is_full_cost(self):
        g = build()
        assert CCAA().estimate(g, g.message("a", "b")) == 6.0

    def test_pinned_same_processor_zero(self):
        # Known co-located pairs override the pessimistic estimate.
        g = build(pin_a=2, pin_b=2)
        assert CCAA().estimate(g, g.message("a", "b")) == 0.0

    def test_half_pinned_still_estimated(self):
        g = build(pin_a=2, pin_b=None)
        assert CCAA().estimate(g, g.message("a", "b")) == 6.0


class TestScaled:
    def test_interpolates(self):
        g = build()
        assert Scaled(0.0).estimate(g, g.message("a", "b")) == 0.0
        assert Scaled(1.0).estimate(g, g.message("a", "b")) == 6.0
        assert Scaled(0.5).estimate(g, g.message("a", "b")) == 3.0

    def test_name_encodes_factor(self):
        assert Scaled(0.5).name == "CC50"

    def test_bad_factor(self):
        with pytest.raises(ValidationError):
            Scaled(1.5)


class TestOracle:
    def test_same_processor(self):
        g = build()
        oracle = Oracle({"a": 0, "b": 0})
        assert oracle.estimate(g, g.message("a", "b")) == 0.0

    def test_cross_processor(self):
        g = build()
        oracle = Oracle({"a": 0, "b": 1})
        assert oracle.estimate(g, g.message("a", "b")) == 6.0

    def test_missing_assignment(self):
        g = build()
        with pytest.raises(ValidationError, match="missing"):
            Oracle({"a": 0}).estimate(g, g.message("a", "b"))


class TestFactory:
    def test_make(self):
        assert isinstance(make_estimator("ccne"), CCNE)
        assert isinstance(make_estimator("CCAA"), CCAA)
        assert make_estimator("CCNE", cost_per_item=3.0).cost_per_item == 3.0

    def test_unknown(self):
        with pytest.raises(ValidationError):
            make_estimator("XXX")

    def test_negative_cost_per_item(self):
        with pytest.raises(ValidationError):
            CCNE(cost_per_item=-1.0)
