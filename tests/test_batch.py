"""The vectorized batch distribute kernel: routing, bit-identity, caching.

The kernel's contract (:mod:`repro.core.batch`) is **bit-identity** with
the scalar pipeline for every supported request and transparent scalar
fallback for the rest. These tests pin the contract on crafted edge
cases — exact ratio ties, near-tie floats, degenerate graphs,
over-constrained anchors — on structural/attribute mutation between
calls (stale-cache regressions), and on the ``--batch`` engine wiring;
``test_golden_corpus`` freezes it against the recorded corpus and the
hypothesis property here sweeps random mixed-size batches.
"""

import random

import pytest

pytest.importorskip("numpy")

from hypothesis import given
from hypothesis import strategies as st

from repro.core import DeadlineDistributor, ast, bst
from repro.core.baselines import make_baseline
from repro.core.batch import (
    DistributeRequest,
    batch_distribute,
    distribute_many,
    fallback_reason,
)
from repro.core.commcost import CCNE, make_estimator
from repro.core.metrics import PureLaxityRatio, make_metric
from repro.errors import DistributionError
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph
from tests.strategies import (
    default_settings,
    generated_graphs,
    stress_graph_configs,
)

SETTINGS = default_settings(max_examples=20)


def snap(assignment):
    """Exact image of a distribution, including iteration order."""
    return (
        assignment.metric_name,
        assignment.comm_strategy_name,
        assignment.n_processors,
        [(n, w.release, w.absolute_deadline, w.cost)
         for n, w in assignment.windows.items()],
        [(e, w.release, w.absolute_deadline, w.cost)
         for e, w in assignment.message_windows.items()],
        [(s.nodes, s.ratio, s.release, s.deadline)
         for s in assignment.slices],
    )


def scalar(request):
    kwargs = {}
    if request.n_processors is not None:
        kwargs["n_processors"] = request.n_processors
    if request.total_capacity is not None:
        kwargs["total_capacity"] = request.total_capacity
    return request.distributor.distribute(request.graph, **kwargs)


def random_graph(seed, n=12, olr=1.5, ccr=1.0, met=1.0):
    config = RandomGraphConfig(
        n_subtasks_range=(n, n),
        depth_range=(2, min(5, n)),
        overall_laxity_ratio=olr,
        communication_to_computation_ratio=ccr,
        mean_execution_time=met,
    )
    return generate_task_graph(config, rng=random.Random(seed))


# ----------------------------------------------------------------------
# Fallback routing
# ----------------------------------------------------------------------
class TestFallbackRouting:
    def test_pure_family_is_supported(self):
        assert fallback_reason(bst("PURE", "CCNE")) is None
        assert fallback_reason(bst("PURE", "CCAA")) is None
        assert fallback_reason(ast("THRES")) is None
        assert fallback_reason(ast("ADAPT")) is None

    def test_norm_falls_back(self):
        assert "count" in fallback_reason(bst("NORM", "CCNE"))

    def test_baselines_fall_back(self):
        assert fallback_reason(make_baseline("UD")) is not None

    def test_distributor_subclass_falls_back(self):
        class Custom(DeadlineDistributor):
            pass

        custom = Custom(make_metric("PURE"), CCNE())
        assert "DeadlineDistributor" in fallback_reason(custom)

    def test_metric_ratio_override_falls_back(self):
        class Skewed(PureLaxityRatio):
            def ratio(self, laxity, count, context):
                return laxity / (count + 1)

        distributor = DeadlineDistributor(Skewed(), CCNE())
        assert "ratio" in fallback_reason(distributor)

    def test_mixed_requests_keep_order_and_match_scalar(self):
        graph = random_graph(5)
        requests = [
            DistributeRequest(graph=graph, distributor=bst("PURE", "CCNE")),
            DistributeRequest(graph=graph, distributor=bst("NORM", "CCAA")),
            DistributeRequest(graph=graph, distributor=make_baseline("UD"),
                              n_processors=3),
            DistributeRequest(graph=graph, distributor=ast("ADAPT"),
                              n_processors=4),
        ]
        results = distribute_many(requests)
        assert [snap(r) for r in results] == [
            snap(scalar(req)) for req in requests
        ]

    def test_empty_request_list(self):
        assert distribute_many([]) == []


# ----------------------------------------------------------------------
# Bit-identity on crafted edge cases
# ----------------------------------------------------------------------
def _assert_identical(graph, distributors=None):
    if distributors is None:
        distributors = [
            (bst("PURE", "CCNE"), None),
            (ast("THRES"), None),
            (ast("ADAPT"), 4),
        ]
    for distributor, n_processors in distributors:
        request = DistributeRequest(
            graph=graph, distributor=distributor, n_processors=n_processors
        )
        assert snap(distribute_many([request])[0]) == snap(scalar(request))


class TestDegenerateGraphs:
    def test_single_subtask(self):
        g = TaskGraph()
        g.add_subtask("solo", wcet=3.0, release=0.0,
                      end_to_end_deadline=10.0)
        _assert_identical(g)

    def test_zero_edges(self):
        g = TaskGraph()
        for i in range(5):
            g.add_subtask(f"n{i}", wcet=1.0 + i, release=0.0,
                          end_to_end_deadline=20.0)
        _assert_identical(g)

    def test_over_constrained_collapses_identically(self):
        # Deadline below the path workload: the documented collapsed-
        # window regime, where clamping dominates the arithmetic.
        g = TaskGraph()
        g.add_subtask("a", wcet=5.0, release=0.0)
        g.add_subtask("b", wcet=5.0)
        g.add_subtask("c", wcet=5.0, end_to_end_deadline=6.0)
        g.add_edge("a", "b", message_size=2.0)
        g.add_edge("b", "c", message_size=2.0)
        _assert_identical(g)

    def test_near_zero_costs(self):
        _assert_identical(random_graph(11, n=8, ccr=0.0, met=0.001))


class TestTieBreaks:
    """Satellite audit: float accumulation order and tie-break parity.

    The DP accumulates ``cost = pred_cost + vc`` left to right and ties
    on *exact* float equality (never an epsilon); the kernel must
    replay both. An exact two-arm tie resolves by (count, lex path
    sequence) — deterministically to the ``b1`` arm — and a near-tie
    within 1e-12 must NOT collapse into a tie.
    """

    @staticmethod
    def _two_arm(delta=0.0):
        g = TaskGraph()
        g.add_subtask("a", wcet=2.0, release=0.0)
        g.add_subtask("b1", wcet=4.0)
        g.add_subtask("b2", wcet=4.0 + delta)
        g.add_subtask("z", wcet=1.0, end_to_end_deadline=40.0)
        g.add_edge("a", "b1")
        g.add_edge("a", "b2")
        g.add_edge("b1", "z")
        g.add_edge("b2", "z")
        return g

    def test_exact_tie_resolves_identically(self):
        g = self._two_arm()
        request = DistributeRequest(graph=g, distributor=bst("PURE", "CCNE"))
        batched = distribute_many([request])[0]
        reference = scalar(request)
        assert snap(batched) == snap(reference)
        # Pin the resolution itself: equal-ratio arms break to the
        # lexicographically smaller path, so b1 is sliced first.
        assert "b1" in reference.slices[0].nodes
        assert "b2" not in reference.slices[0].nodes

    def test_near_tie_is_not_a_tie(self):
        g = self._two_arm(delta=1e-12)
        request = DistributeRequest(graph=g, distributor=bst("PURE", "CCNE"))
        assert snap(distribute_many([request])[0]) == snap(scalar(request))

    def test_long_chain_accumulation_order(self):
        # Non-associative float sums: a long chain of decimal costs
        # makes any reassociation of the left-fold visible bit-wise.
        g = TaskGraph()
        prev = None
        for i in range(40):
            nid = f"c{i:02d}"
            g.add_subtask(nid, wcet=0.1 + 0.01 * (i % 7))
            if prev is not None:
                g.add_edge(prev, nid, message_size=0.3)
            prev = nid
        g.node("c00").release = 0.0
        g.node(prev).end_to_end_deadline = 50.0
        _assert_identical(g)


# ----------------------------------------------------------------------
# Mutation then recompute (stale-cache regressions)
# ----------------------------------------------------------------------
class TestMutationRecompute:
    """Distribute, mutate the graph, distribute again: every cached
    layer (GraphIndex, expanded overlay, the kernel's packed view) must
    rebuild, matching a from-scratch copy bit for bit."""

    @staticmethod
    def _fresh(graph, distributor):
        return distributor.distribute(graph.copy())

    def test_add_then_remove_subtask(self):
        g = random_graph(21)
        d = bst("PURE", "CCNE")
        before = snap(batch_distribute(d, [g])[0])
        assert before == snap(self._fresh(g, d))

        tail = g.node_ids()[-1]
        g.add_subtask("extra", wcet=2.5, end_to_end_deadline=90.0)
        g.add_edge(tail, "extra", message_size=1.0)
        mutated = snap(batch_distribute(d, [g])[0])
        assert mutated == snap(self._fresh(g, d))
        assert mutated != before

        g.remove_subtask("extra")
        assert snap(batch_distribute(d, [g])[0]) == before

    def test_remove_edge_recomputes(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=2.0, release=0.0)
        g.add_subtask("b", wcet=3.0, release=0.0)
        g.add_subtask("z", wcet=1.0, end_to_end_deadline=30.0)
        g.add_edge("a", "z", message_size=1.0)
        g.add_edge("b", "z", message_size=4.0)
        d = bst("PURE", "CCNE")
        before = snap(batch_distribute(d, [g])[0])

        g.remove_edge("b", "z")
        g.node("b").end_to_end_deadline = 30.0  # re-anchor the new output
        after = snap(batch_distribute(d, [g])[0])
        assert after == snap(self._fresh(g, d))
        assert after != before

    def test_attribute_mutation_recomputes(self):
        g = random_graph(22)
        d = ast("THRES")
        before = snap(batch_distribute(d, [g], n_processors=4)[0])
        node = g.node(g.node_ids()[0])
        node.wcet = node.wcet * 1.5
        after = snap(batch_distribute(d, [g], n_processors=4)[0])
        assert after == snap(d.distribute(g.copy(), n_processors=4))
        assert after != before


# ----------------------------------------------------------------------
# Packing and engine wiring
# ----------------------------------------------------------------------
class TestPackingAndEngine:
    def test_forced_pack_splitting_is_identical(self):
        graphs = [random_graph(100 + i, n=10 + i) for i in range(6)]
        d = bst("PURE", "CCNE")
        requests = [DistributeRequest(graph=g, distributor=d) for g in graphs]
        whole = [snap(r) for r in distribute_many(requests)]
        split = [snap(r) for r in distribute_many(requests, max_cells=500)]
        assert whole == split

    def test_batch_experiment_records_identical(self):
        from dataclasses import replace

        from repro.feast.config import ExperimentConfig, MethodSpec
        from repro.feast.runner import run_experiment

        config = ExperimentConfig(
            name="batch-wiring",
            description="batch engine parity",
            methods=(
                MethodSpec(label="PURE", metric="PURE"),
                MethodSpec(label="NORM", metric="NORM", comm="CCAA"),
                MethodSpec(label="ADAPT", metric="ADAPT"),
                MethodSpec(label="UD", metric="PURE", baseline="UD"),
            ),
            n_graphs=3,
            seed=9091,
            system_sizes=(2, 4),
        )
        base = run_experiment(config)
        batched = run_experiment(replace(config, batch=True))
        assert [r.as_dict() for r in base.records] == [
            r.as_dict() for r in batched.records
        ]

    def test_batch_is_excluded_from_config_identity(self):
        from dataclasses import replace

        from repro.feast.config import ExperimentConfig, MethodSpec
        from repro.feast.persistence import config_fingerprint

        config = ExperimentConfig(
            name="fp", description="", methods=(MethodSpec(label="P", metric="PURE"),)
        )
        assert config_fingerprint(config) == config_fingerprint(
            replace(config, batch=True)
        )


# ----------------------------------------------------------------------
# Property: batch == scalar over random mixed batches
# ----------------------------------------------------------------------
@SETTINGS
@given(
    graphs=st.lists(
        generated_graphs(config_strategy=stress_graph_configs()),
        min_size=1,
        max_size=4,
    ),
    metric=st.sampled_from(["PURE", "THRES", "ADAPT"]),
    comm=st.sampled_from(["CCNE", "CCAA"]),
    n_processors=st.sampled_from([None, 2, 8]),
)
def test_batch_matches_scalar_on_random_batches(
    graphs, metric, comm, n_processors
):
    """Mixed-size packs over the stress regimes (OLR < 1, CCR = 0,
    near-zero METs) are bit-identical to the scalar pipeline — and when
    the scalar path raises, the kernel raises the same error class."""
    if metric == "ADAPT" and n_processors is None:
        n_processors = 4
    distributor = DeadlineDistributor(
        make_metric(metric), make_estimator(comm)
    )
    requests = [
        DistributeRequest(
            graph=g, distributor=distributor, n_processors=n_processors
        )
        for g in graphs
    ]
    expected = []
    for request in requests:
        try:
            expected.append(snap(scalar(request)))
        except DistributionError as exc:
            expected.append(type(exc).__name__)
    for request, want in zip(requests, expected):
        if isinstance(want, str):
            with pytest.raises(DistributionError):
                distribute_many([request])
        else:
            assert snap(distribute_many([request])[0]) == want
    clean = [
        (request, want)
        for request, want in zip(requests, expected)
        if not isinstance(want, str)
    ]
    if clean:
        packed = distribute_many([request for request, _ in clean])
        assert [snap(r) for r in packed] == [want for _, want in clean]
