"""Execution backends: registry, cross-backend parity, shard merge,
kill-and-resume fault tolerance, streaming aggregation, journal repair."""

import os

import pytest

from repro.errors import CheckpointError, ExperimentError, ExperimentWarning
from repro.feast.aggregate import StreamingAggregator
from repro.feast.backends import (
    BACKENDS,
    ExecutionBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.feast.backends.serial import SerialBackend
from repro.feast.backends.shardworker import shard_keys
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import Instrumentation
from repro.feast.parallel import run_parallel_experiment
from repro.feast.persistence import (
    compact_journals,
    inspect_journal,
    iter_journal,
    journal_paths,
)
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


def tiny_config(**kwargs):
    defaults = dict(
        name="bke",
        description="backend test",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 14), depth_range=(3, 5)
        ),
        scenarios=("MDET",),
        n_graphs=3,
        system_sizes=(2, 4),
        seed=11,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def dicts(result):
    return [r.as_dict() for r in result.records]


def group_means(records):
    groups = {}
    for r in records:
        groups.setdefault(
            (r.scenario, r.method, r.n_processors), []
        ).append(r.max_lateness)
    return {k: sum(v) / len(v) for k, v in groups.items()}


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {"serial", "pool", "subprocess"}
        for name in backend_names():
            engine = make_backend(name)
            assert isinstance(engine, ExecutionBackend)
            assert engine.name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError, match="unknown execution"):
            make_backend("quantum")
        with pytest.raises(ExperimentError, match="unknown execution"):
            run_experiment(tiny_config(n_graphs=1), backend="quantum")

    def test_register_custom_backend(self):
        class LoudSerial(SerialBackend):
            name = "loud-serial"

        register_backend("loud-serial", LoudSerial)
        try:
            cfg = tiny_config(n_graphs=2)
            custom = run_experiment(cfg, backend="loud-serial")
            assert dicts(custom) == dicts(run_experiment(cfg, jobs=1))
        finally:
            BACKENDS.pop("loud-serial", None)


class TestShardPartition:
    def test_shards_cover_chunk_keys_disjointly(self):
        cfg = tiny_config(scenarios=("LDET", "MDET"), n_graphs=3)
        for n in (1, 2, 4, 7):
            parts = [shard_keys(cfg, i, n) for i in range(n)]
            merged = [k for part in parts for k in part]
            assert sorted(merged) == sorted(cfg.chunk_keys())
            assert len(merged) == len(set(merged))


class TestCrossBackendParity:
    """Every backend must reproduce the serial records byte-for-byte."""

    def test_all_backends_identical(self):
        cfg = tiny_config(scenarios=("LDET", "MDET"), n_graphs=2)
        serial = run_experiment(cfg, jobs=1)
        expected = dicts(serial)
        explicit_serial = run_experiment(cfg, backend="serial")
        pool = run_experiment(cfg, jobs=2, backend="pool")
        two_shards = run_experiment(cfg, backend="subprocess", shards=2)
        four_shards = run_experiment(cfg, backend="subprocess", shards=4)
        assert dicts(explicit_serial) == expected
        assert dicts(pool) == expected
        assert dicts(two_shards) == expected
        assert dicts(four_shards) == expected
        # ... and so must every derived aggregate.
        for result in (pool, two_shards, four_shards):
            assert group_means(result.records) == group_means(serial.records)

    def test_subprocess_progress_and_instrumentation(self):
        cfg = tiny_config(n_graphs=2)
        inst = Instrumentation()
        calls = []
        result = run_experiment(
            cfg, backend="subprocess", shards=2, instrumentation=inst,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert inst.trials_completed == cfg.n_trials
        assert calls[-1] == (cfg.n_trials, cfg.n_trials)
        assert result.timings.total > 0

    def test_pool_backend_rejects_unpicklable(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: None,
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        with pytest.raises(ExperimentError, match="unpicklable"):
            run_parallel_experiment(cfg, jobs=2, backend="pool")

    def test_subprocess_backend_rejects_unpicklable(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: None,
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        with pytest.raises(ExperimentError, match="unpicklable"):
            run_parallel_experiment(cfg, backend="subprocess")

    def test_subprocess_rejects_file_checkpoint(self, tmp_path):
        path = tmp_path / "journal.ckpt"
        path.write_text("not a directory\n")
        with pytest.raises(CheckpointError, match="directory"):
            run_experiment(
                tiny_config(n_graphs=1), backend="subprocess",
                checkpoint=str(path),
            )


class TestShardJournalAndResume:
    def test_journal_directory_layout(self, tmp_path):
        cfg = tiny_config(n_graphs=2)
        ck = tmp_path / "ck"
        run_experiment(cfg, backend="subprocess", shards=2,
                       checkpoint=str(ck))
        paths = journal_paths(str(ck))
        assert [os.path.basename(p) for p in paths] == [
            "shard-0-of-2.ckpt", "shard-1-of-2.ckpt",
        ]
        seen = []
        for path in paths:
            info = inspect_journal(path)
            assert info.experiment == cfg.name
            assert not info.duplicates and not info.torn_tail
            seen.extend(info.chunks)
        assert sorted(seen) == sorted(cfg.chunk_keys())

    def test_resume_replays_everything(self, tmp_path):
        cfg = tiny_config(n_graphs=2)
        ck = str(tmp_path / "ck")
        first = run_experiment(cfg, backend="subprocess", shards=2,
                               checkpoint=ck)
        inst = Instrumentation()
        second = run_experiment(cfg, backend="subprocess", shards=2,
                                checkpoint=ck, instrumentation=inst)
        assert dicts(second) == dicts(first)
        assert inst.replayed_trials == cfg.n_trials

    def test_killed_shard_relaunches_incrementally(self, tmp_path,
                                                   monkeypatch):
        cfg = tiny_config(scenarios=("LDET", "MDET"), n_graphs=2)
        expected = dicts(run_experiment(cfg, jobs=1))
        monkeypatch.setenv("REPRO_SHARD_KILL_AFTER", "1")
        monkeypatch.setenv("REPRO_SHARD_KILL_SHARD", "0")
        ck = str(tmp_path / "ck")
        with pytest.warns(ExperimentWarning, match="relaunching"):
            result = run_experiment(cfg, backend="subprocess", shards=2,
                                    checkpoint=ck)
        # The shard died after journaling one chunk; the relaunch must
        # replay that chunk and still merge to the serial records.
        assert os.path.exists(
            os.path.join(ck, "shard-0-of-2.ckpt.killmark")
        )
        assert dicts(result) == expected
        assert result.fallback_reason is None

    def test_compacted_journal_resumes_at_any_shard_count(self, tmp_path):
        cfg = tiny_config(n_graphs=2)
        ck = str(tmp_path / "ck")
        first = run_experiment(cfg, backend="subprocess", shards=3,
                               checkpoint=ck)
        merged = compact_journals(ck)
        assert os.path.basename(merged) == "shard-0-of-1.ckpt"
        assert sorted(k for k, _ in iter_journal(merged)) == sorted(
            cfg.chunk_keys()
        )
        inst = Instrumentation()
        resumed = run_experiment(cfg, backend="subprocess", shards=1,
                                 checkpoint=ck, instrumentation=inst)
        assert dicts(resumed) == dicts(first)
        assert inst.replayed_trials == cfg.n_trials
        # The merged single-file journal also resumes the serial engine.
        serial = run_experiment(cfg, jobs=1, checkpoint=merged,
                                backend="serial")
        assert dicts(serial) == dicts(first)


class TestStreaming:
    def test_streaming_matches_materialized_records(self):
        cfg = tiny_config(scenarios=("LDET", "MDET"), n_graphs=2)
        serial = run_experiment(cfg, jobs=1)
        agg = StreamingAggregator()
        streamed = run_experiment(cfg, record_sink=agg)
        assert streamed.records == []
        assert streamed.streamed_trials == cfg.n_trials
        assert agg.n_records == cfg.n_trials
        expected = group_means(serial.records)
        assert set(agg.means()) == set(expected)
        for key, mean in agg.means().items():
            assert mean == pytest.approx(expected[key], rel=1e-12)

    def test_streaming_identical_across_backends(self):
        cfg = tiny_config(n_graphs=2)
        results = {}
        for backend, kwargs in (
            ("serial", {}),
            ("pool", {"jobs": 2}),
            ("subprocess", {"shards": 2}),
        ):
            agg = StreamingAggregator()
            run_experiment(cfg, backend=backend, record_sink=agg, **kwargs)
            results[backend] = agg.means()
        # ExactSum makes these *equal*, not just close, despite the
        # backends delivering chunks in different orders.
        assert results["serial"] == results["pool"]
        assert results["serial"] == results["subprocess"]

    def test_streaming_resume_folds_replayed_chunks(self, tmp_path):
        cfg = tiny_config(n_graphs=2)
        ck = str(tmp_path / "run.ckpt")
        run_experiment(cfg, backend="serial", checkpoint=ck)
        agg = StreamingAggregator()
        resumed = run_experiment(cfg, backend="serial", checkpoint=ck,
                                 record_sink=agg)
        assert resumed.streamed_trials == cfg.n_trials
        assert agg.n_records == cfg.n_trials

    def test_streaming_exact_under_kill_relaunch_and_failover(
        self, tmp_path
    ):
        """Aggregates streamed through a chaotic run — one shard killed
        and relaunched (its journaled chunk replays), the other poisoned
        until failover — must *equal* the clean serial aggregates: every
        chunk is folded exactly once no matter which worker, relaunch,
        or the parent sweep finally delivered it."""
        from repro.feast import faultinject
        from repro.feast.backends.work import RetryPolicy
        from repro.feast.faultinject import FaultPlan, FaultSpec

        cfg = tiny_config(n_graphs=6)
        serial = run_experiment(cfg, jobs=1)
        expected = group_means(serial.records)
        # Shard 0 (chunks 0,2,4): crash once mid-run, relaunch replays
        # chunk 0. Shard 1 (chunks 1,3,5): dies at chunk 3 on every
        # launch, so its remaining chunks fail over.
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=2, kind="crash", once=True),
            FaultSpec(scenario="MDET", index=3, kind="exit",
                      attempts=None),
        ))
        agg = StreamingAggregator()
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01,
                             backoff_factor=2.0, backoff_max=0.05)
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="failing over"):
                result = run_experiment(
                    cfg, backend="subprocess", shards=2,
                    checkpoint=str(tmp_path / "ck"), retry=policy,
                    record_sink=agg,
                )
        assert result.records == []
        assert result.streamed_trials == cfg.n_trials
        assert agg.n_records == cfg.n_trials
        assert agg.means() == expected  # exact, not approx
        assert result.supervision.relaunches >= 1
        assert result.supervision.shards_failed_over == 1
        assert result.supervision.chunks_replayed >= 1


class TestJournalRepair:
    """A journal torn mid-record (crash during append) must resume."""

    def test_truncated_tail_recovers_on_resume(self, tmp_path):
        cfg = tiny_config(n_graphs=3)
        ck = str(tmp_path / "run.ckpt")
        complete = run_experiment(cfg, backend="serial", checkpoint=ck)
        with open(ck, "rb") as fp:
            data = fp.read()
        # Cut the final record in half, as a crash mid-write would.
        cut = data.rstrip(b"\n").rfind(b"\n") + 1 + 17
        with open(ck, "wb") as fp:
            fp.write(data[:cut])
        info = inspect_journal(ck)
        assert info.torn_tail and info.n_chunks == len(cfg.chunk_keys()) - 1
        inst = Instrumentation()
        with pytest.warns(ExperimentWarning, match="partial line"):
            resumed = run_experiment(cfg, backend="serial", checkpoint=ck,
                                     instrumentation=inst)
        assert dicts(resumed) == dicts(complete)
        # Exactly the torn chunk re-ran; the intact ones replayed.
        assert inst.replayed_trials == cfg.n_trials - cfg.trials_per_graph
        assert not inspect_journal(ck).torn_tail

    def test_iter_journal_skips_torn_tail(self, tmp_path):
        cfg = tiny_config(n_graphs=2)
        ck = str(tmp_path / "run.ckpt")
        run_experiment(cfg, backend="serial", checkpoint=ck)
        with open(ck, "rb") as fp:
            data = fp.read()
        with open(ck, "wb") as fp:
            fp.write(data[:-10])
        keys = [k for k, _ in iter_journal(ck)]
        assert len(keys) == len(cfg.chunk_keys()) - 1
        assert len(set(keys)) == len(keys)
