"""Extension points: the surfaces a downstream user subclasses.

These tests define a custom slicing metric, a custom communication-cost
estimator, a custom ready-list policy and a custom interconnect, run each
through the full pipeline, and verify the library treats them exactly
like the built-ins. If any of these breaks, the public extension story
(docs/EXTENDING.md) breaks with it.
"""

import pytest

from repro.core.commcost import CommCostEstimator
from repro.core.expanded import ENode
from repro.core.metrics import SlicingMetric
from repro.core.slicer import DeadlineDistributor
from repro.core.validation import validate_assignment
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import Interconnect
from repro.sched.list_scheduler import ListScheduler
from repro.sched.policies import SelectionPolicy


@pytest.fixture
def graph():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=30.0)
    g.add_subtask("c", wcet=20.0, end_to_end_deadline=150.0)
    g.add_edge("a", "b", message_size=4.0)
    g.add_edge("b", "c", message_size=4.0)
    return g


class ShareLaxityRatio(SlicingMetric):
    """Custom metric actually used in tests: equal share, doubled for
    communication subtasks (protects messages instead of long tasks)."""

    name = "COMMBOOST"
    uses_count = True

    def ratio(self, end_to_end, total_virtual_cost, count):
        return (end_to_end - total_virtual_cost) / count

    def relative_deadline(self, node, ratio):
        return self.virtual_cost(node) + ratio


class TestCustomMetric:
    def test_runs_through_the_pipeline(self, graph):
        distributor = DeadlineDistributor(ShareLaxityRatio())
        assignment = distributor.distribute(graph)
        assert assignment.metric_name == "COMMBOOST"
        assert validate_assignment(assignment).ok
        schedule = ListScheduler(System(2)).schedule(graph, assignment)
        schedule.validate()

    def test_broken_telescoping_is_caught(self, graph):
        class Broken(ShareLaxityRatio):
            name = "BROKEN"

            def relative_deadline(self, node, ratio):
                return node.cost + ratio + 1.0  # off by one per node

        from repro.errors import DistributionError

        with pytest.raises(DistributionError, match="telescoping"):
            DeadlineDistributor(Broken()).distribute(graph)


class HalfCost(CommCostEstimator):
    """Custom estimator: expect cross-processor placement half the time."""

    name = "CC50-custom"

    def _estimate_relaxed(self, graph, message):
        return 0.5 * self.transfer_cost(message)


class TestCustomEstimator:
    def test_materializes_scaled_comm_nodes(self, graph):
        distributor = DeadlineDistributor(
            ShareLaxityRatio(), estimator=HalfCost()
        )
        assignment = distributor.distribute(graph)
        assert assignment.comm_strategy_name == "CC50-custom"
        window = assignment.message_window("a", "b")
        assert window is not None and window.cost == 2.0


class ShortestFirst(SelectionPolicy):
    """Custom policy: SPT (shortest processing time first)."""

    name = "SPT"

    def key(self, node_id, graph, assignment):
        return (graph.node(node_id).wcet,)


class TestCustomPolicy:
    def test_orders_ready_list(self):
        g = TaskGraph()
        g.add_subtask("long", wcet=50.0, release=0.0, end_to_end_deadline=200.0)
        g.add_subtask("short", wcet=5.0, release=0.0, end_to_end_deadline=200.0)
        from repro.core.slicer import bst

        assignment = bst().distribute(g)
        schedule = ListScheduler(System(1), policy=ShortestFirst()).schedule(
            g, assignment
        )
        assert schedule.task("short").start == 0.0
        assert schedule.task("long").start == 5.0


class TwoBuses(Interconnect):
    """Custom interconnect: two buses, chosen by source parity."""

    name = "two-buses"
    contended = True

    def route(self, src, dst):
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        return [f"bus{src % 2}"]


class TestCustomInterconnect:
    def test_parallel_buses_reduce_contention(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, pinned_to=0)
        g.add_subtask("b", wcet=10.0, release=0.0, pinned_to=1)
        g.add_subtask("c", wcet=10.0, end_to_end_deadline=500.0, pinned_to=2)
        g.add_subtask("d", wcet=10.0, end_to_end_deadline=500.0, pinned_to=3)
        g.add_edge("a", "c", message_size=20.0)
        g.add_edge("b", "d", message_size=20.0)
        from repro.core.slicer import bst

        assignment = bst().distribute(g)
        single = ListScheduler(System(4)).schedule(g, assignment)
        double = ListScheduler(
            System(4, interconnect=TwoBuses(4))
        ).schedule(g, assignment)
        double.validate()
        # On one bus the transfers serialize; on two they run in parallel.
        assert double.makespan() < single.makespan()
        assert double.makespan() == pytest.approx(40.0)
        assert single.makespan() == pytest.approx(60.0)
