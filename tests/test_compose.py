"""Graph composition from namespaced fragments."""

import pytest

from repro.core import bst, validate_assignment
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.graph.transform import compose
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler


def sensor_fragment():
    g = TaskGraph("sensor")
    g.add_subtask("read", wcet=3.0, release=0.0)
    g.add_subtask("publish", wcet=2.0, end_to_end_deadline=30.0)
    g.add_edge("read", "publish", message_size=2.0)
    return g


def control_fragment():
    g = TaskGraph("control")
    g.add_subtask("law", wcet=10.0, release=0.0)
    g.add_subtask("command", wcet=3.0, end_to_end_deadline=80.0)
    g.add_edge("law", "command", message_size=1.0)
    return g


class TestCompose:
    def test_namespacing(self):
        out = compose({"s": sensor_fragment(), "c": control_fragment()})
        assert "s:read" in out and "c:law" in out
        assert out.has_edge("s:read", "s:publish")
        assert out.n_subtasks == 4

    def test_cross_fragment_arcs(self):
        out = compose(
            {"s": sensor_fragment(), "c": control_fragment()},
            arcs=[("s", "publish", "c", "law", 4.0)],
        )
        assert out.has_edge("s:publish", "c:law")
        assert out.message("s:publish", "c:law").size == 4.0
        # publish keeps its own deadline as an interior anchor.
        assert out.node("s:publish").end_to_end_deadline == 30.0

    def test_composed_system_distributes_and_schedules(self):
        out = compose(
            {"s": sensor_fragment(), "c": control_fragment()},
            arcs=[("s", "publish", "c", "law", 4.0)],
        )
        assignment = bst("PURE", "CCNE").distribute(out)
        assert validate_assignment(assignment).ok
        # The interior anchor is honoured.
        assert assignment.absolute_deadline("s:publish") <= 30.0 + 1e-9
        schedule = ListScheduler(System(2)).schedule(out, assignment)
        schedule.validate()

    def test_bad_arc_shape(self):
        with pytest.raises(ValidationError, match="tuples"):
            compose(
                {"s": sensor_fragment()},
                arcs=[("s", "publish")],
            )

    def test_namespace_with_colon_rejected(self):
        with pytest.raises(ValidationError, match="':'"):
            compose({"a:b": sensor_fragment()})

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            compose({})

    def test_same_fragment_twice_under_different_names(self):
        out = compose({"s1": sensor_fragment(), "s2": sensor_fragment()})
        assert out.n_subtasks == 4
        assert "s1:read" in out and "s2:read" in out
