"""Golden corpus: the distribution pipeline's outputs are frozen.

The indexed-graph refactor (PR 2) promises **bit-identical** outputs: the
compiled :class:`~repro.graph.indexed.GraphIndex` core, the expanded-graph
overlay and the integer-id slicer are representation changes only. This
corpus pins that promise down: every window, slice record and lateness
measurement here was recorded on main *before* the refactor, and the suite
asserts exact equality (``==`` on floats — no tolerances) ever after.

Coverage: all four paper metrics (plus the capacity-aware ADAPT variant),
several graph sizes, pinned and unpinned workloads, homogeneous and
heterogeneous platforms, and full experiment records through the runner at
worker counts 1 and 2 (the parallel engine guarantees any worker count
produces the jobs=1 records, which is separately tested at larger counts
by ``bench_parallel_runner``).

Regenerate (only when an *intentional* output change lands) with::

    PYTHONPATH=src python -m tests.test_golden_corpus --regen
"""

from __future__ import annotations

import json
import os
import random
from typing import Dict, List

import pytest

from repro.core import DeadlineDistributor, ast, bst
from repro.core.commcost import CCNE
from repro.core.metrics import AdaptiveLaxityRatio
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.runner import run_experiment
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "distribution_corpus.json")

SEED = 97031
GRAPH_SIZES = (10, 24, 48)

#: Heterogeneous platform used by the capacity-aware case: 4 processors
#: with speeds (1, 2, 1, 2) — capacity 6.0.
HET_CAPACITY = 6.0


def _graphs() -> Dict[str, TaskGraph]:
    """The corpus workloads, regenerated identically on every run."""
    graphs: Dict[str, TaskGraph] = {}
    for k, size in enumerate(GRAPH_SIZES):
        config = RandomGraphConfig(
            n_subtasks_range=(size, size),
            depth_range=(max(2, size // 8), max(3, size // 6)),
        )
        graphs[f"random-{size}"] = generate_task_graph(
            config, rng=random.Random(SEED + k), name=f"golden-{size}"
        )
    # A pinned variant: strict locality constraints on every 4th subtask,
    # exercising the estimators' pinned short-circuit.
    pinned = graphs["random-24"].copy(name="golden-24-pinned")
    for i, node_id in enumerate(pinned.node_ids()):
        if i % 4 == 0:
            pinned.node(node_id).pinned_to = i % 3
    graphs["pinned-24"] = pinned
    return graphs


def _distributors():
    """(label, distributor factory, distribute kwargs) — the corpus axes."""
    return (
        ("PURE/CCNE@4", lambda: bst("PURE", "CCNE"), {"n_processors": 4}),
        ("NORM/CCAA@4", lambda: bst("NORM", "CCAA"), {"n_processors": 4}),
        ("THRES@4", lambda: ast("THRES"), {"n_processors": 4}),
        ("ADAPT@4", lambda: ast("ADAPT"), {"n_processors": 4}),
        ("ADAPT@16", lambda: ast("ADAPT"), {"n_processors": 16}),
        (
            "ADAPT-C@4het",
            lambda: DeadlineDistributor(
                AdaptiveLaxityRatio(capacity_aware=True), CCNE()
            ),
            {"n_processors": 4, "total_capacity": HET_CAPACITY},
        ),
    )


def _snapshot(assignment) -> Dict[str, object]:
    """Exact, JSON-round-trippable image of one DeadlineAssignment.

    Captures values *and* iteration order (window/message insertion order
    is part of the frozen contract — downstream reports iterate it).
    """
    return {
        "metric": assignment.metric_name,
        "comm": assignment.comm_strategy_name,
        "n_processors": assignment.n_processors,
        "window_order": list(assignment.windows),
        "windows": {
            str(n): [w.release, w.absolute_deadline, w.cost]
            for n, w in assignment.windows.items()
        },
        "message_order": [f"{s}->{d}" for s, d in assignment.message_windows],
        "message_windows": {
            f"{s}->{d}": [w.release, w.absolute_deadline, w.cost]
            for (s, d), w in assignment.message_windows.items()
        },
        "slices": [
            [list(rec.nodes), rec.ratio, rec.release, rec.deadline]
            for rec in assignment.slices
        ],
        "min_laxity": assignment.min_laxity(),
    }


def _experiment_config() -> ExperimentConfig:
    return ExperimentConfig(
        name="golden-experiment",
        description="frozen end-to-end records for the refactor corpus",
        methods=(
            MethodSpec(label="PURE", metric="PURE", comm="CCNE"),
            MethodSpec(label="NORM", metric="NORM", comm="CCAA"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(n_subtasks_range=(14, 18)),
        scenarios=("LDET", "HDET"),
        n_graphs=2,
        seed=424242,
        system_sizes=(2, 4),
        speed_profile="mixed",
    )


def build_corpus() -> Dict[str, object]:
    corpus: Dict[str, object] = {"distributions": {}, "experiment_records": []}
    for graph_name, graph in _graphs().items():
        for label, build, kwargs in _distributors():
            assignment = build().distribute(graph, **kwargs)
            corpus["distributions"][f"{graph_name}|{label}"] = _snapshot(
                assignment
            )
    result = run_experiment(_experiment_config(), jobs=1)
    corpus["experiment_records"] = [r.as_dict() for r in result.records]
    return corpus


def _load_golden() -> Dict[str, object]:
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden corpus missing at {GOLDEN_PATH}; regenerate with "
            "`PYTHONPATH=src python -m tests.test_golden_corpus --regen`"
        )
    with open(GOLDEN_PATH) as fp:
        return json.load(fp)


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
def test_distribution_outputs_bit_identical():
    golden = _load_golden()["distributions"]
    fresh: Dict[str, object] = {}
    for graph_name, graph in _graphs().items():
        for label, build, kwargs in _distributors():
            key = f"{graph_name}|{label}"
            assignment = build().distribute(graph, **kwargs)
            snap = json.loads(json.dumps(_snapshot(assignment)))
            fresh[key] = snap
    assert set(fresh) == set(golden)
    for key in golden:
        assert fresh[key] == golden[key], (
            f"distribution output drifted for {key}"
        )


def test_batch_distribution_outputs_bit_identical():
    """The vectorized batch kernel reproduces the frozen corpus exactly.

    Every (graph, distributor) cell goes through ``distribute_many`` in
    one call and must match the golden snapshots bit for bit — including
    ``window_order``/``message_order``, pinning the satellite audit of
    float accumulation and tie-break order in the batch DP. NORM routes
    through the scalar fallback inside the kernel, so the same sweep
    also freezes the fallback path.
    """
    pytest.importorskip("numpy")
    from repro.core.batch import DistributeRequest, distribute_many

    golden = _load_golden()["distributions"]
    keys = []
    requests = []
    for graph_name, graph in _graphs().items():
        for label, build, kwargs in _distributors():
            keys.append(f"{graph_name}|{label}")
            requests.append(
                DistributeRequest(
                    graph=graph,
                    distributor=build(),
                    n_processors=kwargs.get("n_processors"),
                    total_capacity=kwargs.get("total_capacity"),
                )
            )
    assert set(keys) == set(golden)
    for key, assignment in zip(keys, distribute_many(requests)):
        snap = json.loads(json.dumps(_snapshot(assignment)))
        assert snap == golden[key], (
            f"batch kernel output drifted from golden corpus for {key}"
        )


@pytest.mark.parametrize("jobs", [1, 2])
def test_experiment_records_bit_identical(jobs):
    golden = _load_golden()["experiment_records"]
    result = run_experiment(_experiment_config(), jobs=jobs)
    fresh: List[Dict[str, object]] = [
        json.loads(json.dumps(r.as_dict())) for r in result.records
    ]
    assert fresh == golden


@pytest.mark.parametrize("jobs", [1, 2])
def test_traced_experiment_records_bit_identical(jobs):
    """Telemetry is observation only: a run with tracing enabled must
    reproduce the frozen records exactly, serial and parallel."""
    from repro.feast.instrumentation import Instrumentation
    from repro.obs import Telemetry

    golden = _load_golden()["experiment_records"]
    inst = Instrumentation(telemetry=Telemetry())
    result = run_experiment(_experiment_config(), jobs=jobs,
                            instrumentation=inst)
    fresh = [json.loads(json.dumps(r.as_dict())) for r in result.records]
    assert fresh == golden
    # And the run actually recorded something.
    assert inst.telemetry.spans.finished()
    assert inst.telemetry.metrics.counters


@pytest.mark.parametrize("jobs", [1, 2])
def test_live_sampled_experiment_records_bit_identical(jobs, tmp_path):
    """Live telemetry samples, it never participates: a run with the
    status stream active, the sampler thread ticking fast, and the
    OpenMetrics exporter rewriting a textfile must still reproduce the
    frozen records exactly."""
    from repro.feast.instrumentation import Instrumentation
    from repro.obs import (
        StatusSampler,
        StatusStream,
        Telemetry,
        activate_status,
        read_status,
    )

    golden = _load_golden()["experiment_records"]
    inst = Instrumentation(telemetry=Telemetry())
    stream = StatusStream(
        str(tmp_path / "run.status.jsonl"), "golden", "run-golden"
    )
    sampler = StatusSampler(
        stream, inst, interval=0.01,
        metrics_out=str(tmp_path / "metrics.prom"),
    )
    with activate_status(stream), sampler:
        result = run_experiment(_experiment_config(), jobs=jobs,
                                instrumentation=inst)
    stream.close()
    fresh = [json.loads(json.dumps(r.as_dict())) for r in result.records]
    assert fresh == golden
    # The observers actually observed.
    kinds = {e["kind"] for e in read_status(stream.path)}
    assert "status" in kinds and "progress" in kinds
    assert (tmp_path / "metrics.prom").read_text().endswith("# EOF\n")


def test_interrupted_checkpoint_resume_bit_identical(tmp_path):
    """A sweep interrupted mid-run and resumed from its checkpoint must
    reproduce the frozen records exactly — including the chunks that were
    journaled to JSON and replayed (float round-trip is exact)."""
    golden = _load_golden()["experiment_records"]
    config = _experiment_config()
    path = str(tmp_path / "golden.ckpt")

    count = [0]

    def interrupt_after_two(done, total):
        count[0] += 1
        if count[0] == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_experiment(config, checkpoint=path,
                       progress=interrupt_after_two)
    resumed = run_experiment(config, checkpoint=path)
    fresh = [json.loads(json.dumps(r.as_dict())) for r in resumed.records]
    assert fresh == golden
    assert resumed.complete


# ----------------------------------------------------------------------
# Regeneration entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="golden corpus recorder")
    parser.add_argument("--regen", action="store_true", required=True)
    parser.parse_args(argv)
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    corpus = build_corpus()
    with open(GOLDEN_PATH, "w") as fp:
        json.dump(corpus, fp, indent=1, sort_keys=True)
        fp.write("\n")
    n = len(corpus["distributions"])
    print(f"recorded {n} distributions + "
          f"{len(corpus['experiment_records'])} experiment records "
          f"-> {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
