"""Deterministic regressions of the paper's headline shapes.

The benchmark suite asserts these claims at scale; this module pins them
at a small fixed-seed scale inside the fast test suite, so a behavioural
regression in any layer (generator, metrics, slicer, scheduler) surfaces
in `pytest tests/` rather than only in a benchmark run. Every number here
is deterministic: fixed seeds, deterministic tie-breaking.
"""

import statistics

import pytest

from repro.core import ast, bst
from repro.graph import RandomGraphConfig, generate_task_graphs
from repro.machine import System
from repro.sched import ListScheduler, max_lateness

N_GRAPHS = 16
SEED = 11


def mean_max_lateness(graphs, distributor, n_processors):
    values = []
    for graph in graphs:
        assignment = distributor.distribute(graph, n_processors=n_processors)
        schedule = ListScheduler(System(n_processors)).schedule(
            graph, assignment
        )
        values.append(max_lateness(schedule, assignment))
    return statistics.mean(values)


@pytest.fixture(scope="module")
def hdet():
    return generate_task_graphs(
        N_GRAPHS, RandomGraphConfig().with_scenario("HDET"), seed=SEED
    )


@pytest.fixture(scope="module")
def mdet():
    return generate_task_graphs(
        N_GRAPHS, RandomGraphConfig().with_scenario("MDET"), seed=SEED
    )


class TestFigure2Shapes:
    def test_ccne_beats_ccaa(self, hdet):
        ccne = mean_max_lateness(hdet, bst("PURE", "CCNE"), 2)
        ccaa = mean_max_lateness(hdet, bst("PURE", "CCAA"), 2)
        assert ccne < ccaa - 30  # decisive, not marginal

    def test_lateness_improves_with_system_size(self, hdet):
        small = mean_max_lateness(hdet, bst("PURE", "CCNE"), 2)
        large = mean_max_lateness(hdet, bst("PURE", "CCNE"), 16)
        assert large < small - 10

    def test_norm_collapses_under_hdet(self, hdet):
        norm = mean_max_lateness(hdet, bst("NORM", "CCNE"), 8)
        pure = mean_max_lateness(hdet, bst("PURE", "CCNE"), 8)
        assert pure < norm - 15


class TestFigure5Shapes:
    def test_adapt_beats_pure_on_small_systems_hdet(self, hdet):
        adapt = mean_max_lateness(hdet, ast("ADAPT"), 2)
        pure = mean_max_lateness(hdet, bst("PURE", "CCNE"), 2)
        assert adapt < pure - 3

    def test_adapt_tracks_pure_at_saturation(self, hdet):
        adapt = mean_max_lateness(hdet, ast("ADAPT"), 16)
        pure = mean_max_lateness(hdet, bst("PURE", "CCNE"), 16)
        assert abs(adapt - pure) <= 0.05 * abs(pure)

    def test_thres_crosses_below_pure_at_saturation(self, mdet):
        thres = mean_max_lateness(mdet, ast("THRES", surplus=1.0), 16)
        pure = mean_max_lateness(mdet, bst("PURE", "CCNE"), 16)
        assert thres > pure + 2


class TestFigure3Shape:
    def test_large_surplus_detrimental_at_saturation(self, mdet):
        small_delta = mean_max_lateness(mdet, ast("THRES", surplus=1.0), 16)
        big_delta = mean_max_lateness(mdet, ast("THRES", surplus=4.0), 16)
        assert small_delta < big_delta - 5
