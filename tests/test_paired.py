"""Paired statistical comparison of methods."""

import math

import pytest

from repro.errors import ExperimentError
from repro.feast.aggregate import PairedComparison, paired_comparison
from repro.feast.runner import TrialRecord


def record(method, index, lateness, scenario="MDET", size=2):
    return TrialRecord(
        experiment="e",
        scenario=scenario,
        n_processors=size,
        method=method,
        graph_index=index,
        max_lateness=lateness,
        mean_lateness=lateness / 2,
        n_late=0,
        makespan=100.0,
        mean_utilization=0.5,
        min_laxity=5.0,
    )


class TestPairing:
    def test_pairs_by_graph_index(self):
        records = [
            record("A", 0, -10.0), record("B", 0, -14.0),
            record("A", 1, -20.0), record("B", 1, -22.0),
        ]
        pc = paired_comparison(records, "A", "B")
        assert pc.n == 2
        assert pc.mean_diff == pytest.approx(-3.0)  # B better by 3

    def test_unmatched_records_dropped(self):
        records = [
            record("A", 0, -10.0), record("B", 0, -14.0),
            record("A", 1, -20.0),  # no B partner
            record("B", 2, -30.0),  # no A partner
        ]
        pc = paired_comparison(records, "A", "B")
        assert pc.n == 1

    def test_cells_kept_separate(self):
        # Same graph index in different cells must not cross-pair.
        records = [
            record("A", 0, -10.0, size=2), record("B", 0, -12.0, size=2),
            record("A", 0, -50.0, size=4), record("B", 0, -58.0, size=4),
        ]
        pc = paired_comparison(records, "A", "B")
        assert pc.n == 2
        assert pc.mean_diff == pytest.approx((-2.0 + -8.0) / 2)

    def test_filters(self):
        records = [
            record("A", 0, -10.0, scenario="LDET"),
            record("B", 0, -12.0, scenario="LDET"),
            record("A", 0, -10.0, scenario="HDET"),
            record("B", 0, -20.0, scenario="HDET"),
        ]
        pc = paired_comparison(records, "A", "B", scenario="HDET")
        assert pc.n == 1
        assert pc.mean_diff == pytest.approx(-10.0)

    def test_no_pairs_raises(self):
        with pytest.raises(ExperimentError):
            paired_comparison([record("A", 0, -1.0)], "A", "B")


class TestStatistics:
    def test_identical_methods_not_significant(self):
        records = []
        for i in range(10):
            records.append(record("A", i, -10.0 - i))
            records.append(record("B", i, -10.0 - i))
        pc = paired_comparison(records, "A", "B")
        assert pc.mean_diff == 0.0
        assert not pc.significant
        assert pc.p_value == 1.0

    def test_consistent_difference_is_significant(self):
        records = []
        for i in range(20):
            base = -10.0 - i
            records.append(record("A", i, base))
            records.append(record("B", i, base - 5.0 - 0.1 * (i % 3)))
        pc = paired_comparison(records, "A", "B")
        assert pc.mean_diff < -4.9
        assert pc.significant
        assert pc.p_value < 1e-6
        lo, hi = pc.ci95
        assert lo < pc.mean_diff < hi < 0

    def test_noisy_difference_not_significant(self):
        records = []
        for i in range(10):
            records.append(record("A", i, -10.0))
            # B alternates better/worse: mean diff ~0.
            records.append(record("B", i, -10.0 + (5.0 if i % 2 else -5.0)))
        pc = paired_comparison(records, "A", "B")
        assert not pc.significant

    def test_constant_nonzero_difference(self):
        # Zero variance, nonzero mean: maximally significant.
        records = []
        for i in range(5):
            records.append(record("A", i, -10.0))
            records.append(record("B", i, -15.0))
        pc = paired_comparison(records, "A", "B")
        assert pc.p_value == 0.0
        assert math.isinf(pc.t_statistic)
        assert pc.significant

    def test_custom_value_function(self):
        records = [
            record("A", 0, -10.0), record("B", 0, -12.0),
        ]
        pc = paired_comparison(
            records, "A", "B", value=lambda r: r.makespan
        )
        assert pc.mean_diff == 0.0  # same makespan field
