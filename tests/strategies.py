"""Shared hypothesis strategies for seeded random workloads.

The property-test modules all need the same three inputs — a generator
configuration spanning the paper's parameter space, a graph produced by
the library's own generator, and a raw hand-anchored DAG built
edge-by-edge — and had grown private copies of each. They live here once,
seeded and shrinkable, together with the shared hypothesis settings.

Everything routes randomness through drawn integer seeds feeding
``random.Random``, so hypothesis can shrink a failing workload to a
smaller seed and examples replay deterministically.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph

#: Execution-time deviations of the paper's LDET / MDET / HDET scenarios.
DEVIATIONS = (0.25, 0.5, 0.99)


def default_settings(max_examples: int = 25) -> settings:
    """The suite's standard profile: seeded workloads are slow to build,
    so the per-example deadline is off and ``too_slow`` is suppressed."""
    return settings(
        max_examples=max_examples,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )


@st.composite
def small_graph_configs(draw) -> RandomGraphConfig:
    """Generator configurations over the paper's Section 5.2 space,
    scaled down to graphs small enough for exhaustive checking."""
    n_lo = draw(st.integers(min_value=5, max_value=15))
    n_hi = n_lo + draw(st.integers(min_value=0, max_value=10))
    d_lo = draw(st.integers(min_value=2, max_value=4))
    # Every drawn depth must be placeable for every drawn subtask count.
    d_hi = d_lo + draw(st.integers(min_value=0, max_value=max(0, n_lo - d_lo)))
    d_hi = min(d_hi, n_lo)
    return RandomGraphConfig(
        n_subtasks_range=(n_lo, n_hi),
        depth_range=(d_lo, d_hi),
        execution_time_deviation=draw(st.sampled_from(DEVIATIONS)),
        overall_laxity_ratio=draw(st.sampled_from([1.1, 1.5, 3.0])),
        communication_to_computation_ratio=draw(
            st.sampled_from([0.0, 0.5, 1.0, 2.0])
        ),
        olr_basis=draw(st.sampled_from(["graph-workload", "path-workload"])),
    )


@st.composite
def stress_graph_configs(draw) -> RandomGraphConfig:
    """Configurations stressing the distribution pipeline's edge regimes:
    laxity ratios on *both* sides of feasibility (OLR < 1 forces the
    documented over-constrained collapsed-window regime), the
    communication-free case, and near-zero mean execution times. The
    batch-vs-scalar differential draws from these."""
    n_lo = draw(st.integers(min_value=3, max_value=20))
    n_hi = n_lo + draw(st.integers(min_value=0, max_value=12))
    d_lo = min(draw(st.integers(min_value=2, max_value=4)), n_lo)
    d_hi = min(d_lo + draw(st.integers(min_value=0, max_value=3)), n_lo)
    return RandomGraphConfig(
        n_subtasks_range=(n_lo, n_hi),
        depth_range=(d_lo, d_hi),
        mean_execution_time=draw(st.sampled_from([0.001, 1.0, 20.0])),
        execution_time_deviation=draw(st.sampled_from(DEVIATIONS)),
        overall_laxity_ratio=draw(st.sampled_from([0.5, 0.9, 1.1, 2.0])),
        communication_to_computation_ratio=draw(
            st.sampled_from([0.0, 0.5, 2.0])
        ),
        olr_basis=draw(st.sampled_from(["graph-workload", "path-workload"])),
    )


@st.composite
def generated_graphs(draw, config_strategy=None) -> TaskGraph:
    """A graph from the library's own generator under a drawn config."""
    config = draw(
        config_strategy if config_strategy is not None
        else small_graph_configs()
    )
    seed = draw(st.integers(0, 10_000))
    return generate_task_graph(config, rng=random.Random(seed))


@st.composite
def workloads(draw) -> TaskGraph:
    """The extension modules' workload: a compact generated graph with
    varied deviation and CCR (fixed shape bracket)."""
    config = RandomGraphConfig(
        n_subtasks_range=(6, 16),
        depth_range=(2, 5),
        execution_time_deviation=draw(st.sampled_from(DEVIATIONS)),
        communication_to_computation_ratio=draw(
            st.sampled_from([0.0, 1.0, 2.0])
        ),
    )
    seed = draw(st.integers(0, 100_000))
    return generate_task_graph(config, rng=random.Random(seed))


@st.composite
def raw_dags(draw) -> TaskGraph:
    """A DAG built edge-by-edge (forward edges only), anchored by hand.

    Unlike :func:`generated_graphs` this is not constrained to the
    generator's level structure, so it reaches shapes (isolated nodes,
    long skip edges, arc-free graphs) the generator cannot emit.
    """
    n = draw(st.integers(min_value=2, max_value=12))
    g = TaskGraph()
    for i in range(n):
        g.add_subtask(
            f"n{i:02d}",
            wcet=draw(st.floats(min_value=0.5, max_value=50.0, allow_nan=False)),
        )
    ids = g.node_ids()
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()) and draw(st.booleans()):
                g.add_edge(
                    ids[i],
                    ids[j],
                    message_size=draw(st.floats(min_value=0.0, max_value=30.0)),
                )
    deadline = 3.0 * g.total_workload() + 10.0
    for node_id in g.input_subtasks():
        g.node(node_id).release = 0.0
    for node_id in g.output_subtasks():
        g.node(node_id).end_to_end_deadline = deadline
    return g


#: Method specs the service property tests draw from (distinct labels).
JOB_METHOD_POOL = (
    {"label": "NORM", "metric": "NORM", "comm": "CCNE"},
    {"label": "PURE", "metric": "PURE", "comm": "CCNE"},
    {"label": "PURE/AA", "metric": "PURE", "comm": "CCAA"},
    {"label": "THRES", "metric": "THRES", "comm": "CCNE", "threshold_factor": 1.5},
    {"label": "EQS", "metric": "PURE", "comm": "CCNE", "baseline": "EQS"},
)


@st.composite
def job_documents(draw) -> dict:
    """A valid ``repro-job`` service document (see repro.serve.jobs).

    Spans both workload modes — generator parameters (including the
    OLR < 1 over-constrained and CCR = 0 communication-free degenerate
    regimes) and explicit inline ``repro-taskgraph`` documents — plus a
    drawn platform sweep and method set, while staying small enough
    that a server round trip is fast. The document is what goes over
    the wire; the matching oracle is ``compile_job`` + a direct
    in-process run.
    """
    from repro.graph.serialization import graph_to_dict

    n_methods = draw(st.integers(min_value=1, max_value=3))
    indices = draw(
        st.lists(
            st.integers(0, len(JOB_METHOD_POOL) - 1),
            min_size=n_methods, max_size=n_methods, unique=True,
        )
    )
    methods = [dict(JOB_METHOD_POOL[i]) for i in indices]
    platform = {
        "system_sizes": draw(
            st.lists(st.integers(2, 6), min_size=1, max_size=2, unique=True)
        ),
        "topology": draw(st.sampled_from(["bus", "ring", "fully-connected"])),
        "policy": draw(st.sampled_from(["EDF", "LLF"])),
        "speed_profile": draw(st.sampled_from(["uniform", "mixed"])),
    }
    document = {
        "format": "repro-job",
        "version": 1,
        "name": draw(st.sampled_from(["prop", "roundtrip", "svc"])),
        "platform": platform,
        "methods": methods,
    }
    if draw(st.booleans()):
        # generated workload, degenerate regimes included
        document["workload"] = {
            "n_graphs": draw(st.integers(min_value=1, max_value=3)),
            "scenarios": draw(
                st.lists(
                    st.sampled_from(["LDET", "MDET", "HDET"]),
                    min_size=1, max_size=2, unique=True,
                )
            ),
            "seed": draw(st.integers(0, 10_000)),
            "graph_config": {
                "n_subtasks_range": [5, 9],
                "depth_range": [2, 3],
                "degree_range": [1, 2],
                "overall_laxity_ratio": draw(
                    st.sampled_from([0.5, 0.9, 1.5, 3.0])
                ),
                "communication_to_computation_ratio": draw(
                    st.sampled_from([0.0, 0.5, 2.0])
                ),
                "olr_basis": draw(
                    st.sampled_from(["graph-workload", "path-workload"])
                ),
            },
        }
    else:
        config = RandomGraphConfig(
            n_subtasks_range=(5, 9),
            depth_range=(2, 3),
            degree_range=(1, 2),
            overall_laxity_ratio=draw(st.sampled_from([0.5, 1.5])),
            communication_to_computation_ratio=draw(st.sampled_from([0.0, 1.0])),
        )
        seed = draw(st.integers(0, 10_000))
        document["graphs"] = [
            graph_to_dict(generate_task_graph(config, rng=random.Random(seed + i)))
            for i in range(draw(st.integers(min_value=1, max_value=3)))
        ]
    return document
