"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "figure5"])
        assert args.experiment == "figure5"
        assert args.graphs is None
        assert args.jobs is None  # None = cpu_count-aware default

    def test_jobs_parsed(self):
        args = build_parser().parse_args(["run", "figure5", "--jobs", "4"])
        assert args.jobs == 4

    def test_run_sizes_parsed(self):
        args = build_parser().parse_args(
            ["run", "figure2", "--sizes", "2,4,8"]
        )
        assert args.sizes == [2, 4, 8]

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure2", "--sizes", "2,x"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "ext-topology" in out

    def test_demo(self, capsys):
        assert main(["demo", "--processors", "2", "--metric", "PURE"]) == 0
        out = capsys.readouterr().out
        assert "workload:" in out
        assert "max lateness=" in out
        assert "P00 |" in out

    def test_demo_adapt_with_dot(self, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        assert main([
            "demo", "--processors", "2", "--metric", "ADAPT",
            "--dot", str(dot),
        ]) == 0
        assert dot.read_text().startswith("digraph")

    def test_demo_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "g.svg"
        assert main([
            "demo", "--processors", "2", "--metric", "THRES",
            "--svg", str(svg),
        ]) == 0
        import xml.etree.ElementTree as ET

        root = ET.fromstring(svg.read_text())
        assert root.tag.endswith("svg")

    @pytest.mark.parametrize("metric", ["NORM", "PURE", "THRES", "ADAPT"])
    def test_demo_all_metrics(self, metric, capsys):
        assert main(["demo", "--processors", "2", "--metric", metric]) == 0
        assert "max lateness=" in capsys.readouterr().out

    def test_run_tiny(self, capsys, tmp_path):
        csv = tmp_path / "out.csv"
        code = main([
            "run", "figure5", "--graphs", "2", "--sizes", "2",
            "--quiet", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario LDET" in out
        assert "PURE" in out and "ADAPT" in out
        lines = csv.read_text().splitlines()
        assert lines[0].startswith("experiment,")
        assert len(lines) == 1 + 3 * 1 * 3 * 2  # scen x size x methods x graphs

    def test_run_with_jobs(self, capsys, tmp_path):
        """--jobs 2 routes through the parallel engine; same CSV."""
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        base = ["run", "figure5", "--graphs", "2", "--sizes", "2,4",
                "--quiet"]
        assert main(base + ["--jobs", "1", "--csv", str(serial_csv)]) == 0
        assert main(base + ["--jobs", "2", "--csv", str(parallel_csv)]) == 0
        assert serial_csv.read_text() == parallel_csv.read_text()

    def test_run_profile(self, capsys):
        """--profile prints per-phase timers on stderr, keeping stdout
        machine-readable."""
        code = main([
            "run", "figure5", "--graphs", "1", "--sizes", "2",
            "--jobs", "1", "--quiet", "--profile",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "phase profile (figure5)" in captured.err
        for phase in ("generate", "distribute", "schedule", "total", "wall"):
            assert phase in captured.err
        assert "phase profile" not in captured.out

    def test_progress_goes_to_stderr(self, capsys):
        """Without --quiet, the running header and progress stay off
        stdout."""
        code = main([
            "run", "figure5", "--graphs", "1", "--sizes", "2", "--jobs", "1",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "running figure5" in captured.err
        assert "running figure5" not in captured.out
        assert "scenario LDET" in captured.out

    def test_run_multi_config_experiment(self, capsys):
        code = main([
            "run", "ablation-release", "--graphs", "1", "--sizes", "2",
            "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ablation-release-greedy" in out
        assert "ablation-release-tt" in out

    def test_run_with_plot(self, capsys):
        code = main([
            "run", "figure5", "--graphs", "2", "--sizes", "2,4", "--quiet",
            "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "o=PURE" in out
        assert "processors" in out

    def test_run_save_and_compare(self, capsys, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        main(["run", "figure5", "--graphs", "2", "--sizes", "2", "--quiet",
              "--save", a])
        main(["run", "figure5", "--graphs", "2", "--sizes", "2", "--quiet",
              "--save", b, "--seed", "9"])
        capsys.readouterr()
        assert main(["compare", a, b, "--threshold", "0"]) == 0
        out = capsys.readouterr().out
        assert "worst regression" in out

    def test_compare_identical_runs(self, capsys, tmp_path):
        a = str(tmp_path / "a.json")
        main(["run", "figure5", "--graphs", "2", "--sizes", "2", "--quiet",
              "--save", a])
        capsys.readouterr()
        assert main(["compare", a, a]) == 0
        out = capsys.readouterr().out
        assert "no per-point changes" in out

    def test_save_multi_config_gets_suffixed_files(self, tmp_path, capsys):
        base = str(tmp_path / "runs.json")
        code = main([
            "run", "ablation-release", "--graphs", "1", "--sizes", "2",
            "--quiet", "--save", base,
        ])
        assert code == 0
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "runs-ablation-release-greedy.json",
            "runs-ablation-release-tt.json",
        ]


class TestTelemetryCommands:
    BASE = ["run", "figure5", "--graphs", "1", "--sizes", "2", "--quiet"]

    @pytest.fixture(autouse=True)
    def _isolate_cwd(self, tmp_path, monkeypatch):
        # Traced runs register themselves in ./.repro/registry/ by
        # default; keep that out of the repo checkout.
        monkeypatch.chdir(tmp_path)

    def test_trace_run_writes_event_log(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        assert main(self.BASE + ["--trace", str(traces)]) == 0
        events_file = traces / "figure5.events.jsonl"
        assert events_file.exists()
        from repro.obs import read_events

        events = read_events(str(events_file))
        kinds = {e["kind"] for e in events}
        assert {"header", "span", "metrics", "summary"} <= kinds
        captured = capsys.readouterr()
        assert str(events_file) in captured.err
        assert str(events_file) not in captured.out

    def test_report_renders_run(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        main(self.BASE + ["--trace", str(traces)])
        capsys.readouterr()
        events_file = str(traces / "figure5.events.jsonl")
        assert main(["report", events_file]) == 0
        out = capsys.readouterr().out
        assert "run report: figure5" in out
        assert "wall-clock elapsed" in out
        assert "counters:" in out

    def test_trace_converts_to_chrome_trace(self, tmp_path, capsys):
        import json

        traces = tmp_path / "traces"
        main(self.BASE + ["--trace", str(traces), "--jobs", "2"])
        capsys.readouterr()
        events_file = str(traces / "figure5.events.jsonl")
        assert main(["trace", events_file]) == 0
        out_path = str(traces / "figure5.trace.json")
        assert "wrote" in capsys.readouterr().out
        with open(out_path) as fp:
            trace = json.load(fp)
        assert trace["traceEvents"]
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases and "M" in phases
        names = {e["name"] for e in trace["traceEvents"]}
        assert "run" in names and "chunk" in names

    def test_trace_explicit_output(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        main(self.BASE + ["--trace", str(traces)])
        capsys.readouterr()
        events_file = str(traces / "figure5.events.jsonl")
        out_path = str(tmp_path / "custom.json")
        assert main(["trace", events_file, "-o", out_path]) == 0
        import os

        assert os.path.exists(out_path)

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "figure5", "--trace", "traces/", "--no-color"]
        )
        assert args.trace == "traces/"
        assert args.no_color is True


class TestCheckpointFlags:
    BASE = ["run", "figure5", "--graphs", "1", "--sizes", "2", "--quiet"]

    def test_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "figure5", "--trial-timeout", "30", "--retries", "4",
             "--checkpoint", "sweep.ckpt", "--resume"]
        )
        assert args.trial_timeout == 30.0
        assert args.retries == 4
        assert args.checkpoint == "sweep.ckpt"
        assert args.resume is True

    def test_checkpointed_run_and_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "sweep.ckpt")
        assert main(self.BASE + ["--checkpoint", ckpt]) == 0
        first = capsys.readouterr().out
        assert main(self.BASE + ["--checkpoint", ckpt, "--resume"]) == 0
        resumed = capsys.readouterr().out
        # The resumed run replays the journal and prints the same panels.
        assert resumed.splitlines()[:5] == first.splitlines()[:5]

    def test_existing_checkpoint_without_resume_errors(self, tmp_path,
                                                       capsys):
        ckpt = str(tmp_path / "sweep.ckpt")
        assert main(self.BASE + ["--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert main(self.BASE + ["--checkpoint", ckpt]) == 2
        err = capsys.readouterr().err
        assert "already exists" in err and "--resume" in err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(self.BASE + ["--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_trial_timeout_flag_overrides_config(self, tmp_path, capsys):
        """The override lands in the saved result's config."""
        from repro.feast import load_result

        save = str(tmp_path / "r.json")
        code = main(self.BASE + [
            "--trial-timeout", "45", "--retries", "7", "--save", save,
        ])
        assert code == 0
        back = load_result(save)
        assert back.config.trial_timeout == 45.0
        assert back.config.max_retries == 7


class TestLiveObservability:
    BASE = ["run", "figure5", "--graphs", "1", "--sizes", "2", "--quiet"]

    def traced_run(self, tmp_path, capsys, extra=()):
        traces = str(tmp_path / "traces")
        registry = str(tmp_path / "registry")
        code = main(self.BASE + [
            "--trace", traces, "--registry", registry,
            "--status-interval", "0.05", *extra,
        ])
        err = capsys.readouterr().err
        return code, traces, registry, err

    def test_traced_run_streams_status_and_registers(self, tmp_path,
                                                     capsys):
        code, traces, registry, err = self.traced_run(tmp_path, capsys)
        assert code == 0
        from repro.obs import read_status
        from repro.obs.registry import RunRegistry

        events = read_status(str(tmp_path / "traces" /
                                 "figure5.status.jsonl"))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "header" and kinds[-1] == "final"
        assert "progress" in kinds and "status" in kinds
        assert "registered run" in err
        records = RunRegistry(registry).load()
        assert len(records) == 1
        assert records[0].experiment == "figure5"
        assert records[0].fingerprint
        assert records[0].records_digest
        assert records[0].n_trials > 0

    def test_metrics_out_writes_openmetrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code, *_ = self.traced_run(
            tmp_path, capsys, extra=["--metrics-out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_trials_done" in text

    def test_metrics_out_without_trace(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        assert main(self.BASE + ["--metrics-out", str(out)]) == 0
        assert out.read_text().endswith("# EOF\n")

    def test_bad_status_interval_rejected(self, capsys):
        assert main(self.BASE + ["--status-interval", "0"]) == 2
        assert "status-interval" in capsys.readouterr().err

    def test_top_once_renders_board(self, tmp_path, capsys):
        _, traces, _, _ = self.traced_run(tmp_path, capsys)
        assert main(["top", "--once", traces]) == 0
        out = capsys.readouterr().out
        assert "repro top — figure5" in out
        assert "[finished]" in out

    def test_top_follow_and_once_conflict(self, capsys):
        assert main(["top", "--follow", "--once", "x"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_top_on_untraced_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["top", "--once", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--trace" in err

    def test_runs_list_show_diff(self, tmp_path, capsys):
        _, _, registry, _ = self.traced_run(tmp_path, capsys)
        self.traced_run(tmp_path, capsys)  # second run, same registry
        assert main(["runs", "list", "--registry", registry]) == 0
        out = capsys.readouterr().out
        assert out.count("figure5") == 2
        assert main(["runs", "show", "last", "--registry", registry]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "records digest" in out
        # Same config twice: fingerprints and digests must agree; a
        # huge gate ignores wall-clock noise between the two runs.
        code = main(["runs", "diff", "last~1", "last",
                     "--registry", registry, "--gate", "100000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fingerprint      identical" in out
        assert "records digest   identical" in out

    def test_runs_diff_gate_failure_exits_nonzero(self, tmp_path, capsys):
        from repro.obs.registry import RunRecord, RunRegistry

        registry = RunRegistry(str(tmp_path / "reg"))
        registry.append(RunRecord(
            run_id="run-base", experiment="figure5", fingerprint="f" * 32,
            wall_seconds=10.0, n_trials=100,
            phase_seconds={"schedule": 6.0},
        ))
        registry.append(RunRecord(
            run_id="run-slow", experiment="figure5", fingerprint="f" * 32,
            wall_seconds=20.0, n_trials=100,
            phase_seconds={"schedule": 12.0},
        ))
        code = main(["runs", "diff", "run-base", "run-slow",
                     "--registry", registry.directory, "--gate", "10"])
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_runs_on_empty_registry_fails_cleanly(self, tmp_path, capsys):
        assert main(["runs", "show", "last",
                     "--registry", str(tmp_path / "nothing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_hardened_against_bad_inputs(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["report", str(empty)]) == 2
        assert "--trace" in capsys.readouterr().err
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
        binary = tmp_path / "garbage.events.jsonl"
        binary.write_bytes(b"\x80\x81\x82\xff")
        assert main(["report", str(binary)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_and_trace_accept_directory(self, tmp_path, capsys):
        _, traces, _, _ = self.traced_run(tmp_path, capsys)
        assert main(["report", traces]) == 0
        assert "run report: figure5" in capsys.readouterr().out
        assert main(["trace", traces]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_live_flags_parsed(self):
        args = build_parser().parse_args([
            "run", "figure5", "--trace", "t/", "--metrics-out", "m.prom",
            "--registry", "r/", "--status-interval", "0.5",
        ])
        assert args.metrics_out == "m.prom"
        assert args.registry == "r/"
        assert args.status_interval == 0.5
        top = build_parser().parse_args(["top", "--follow", "t/"])
        assert top.follow is True
        diff = build_parser().parse_args(
            ["runs", "diff", "a", "b", "--gate", "25"]
        )
        assert diff.gate == 25.0
