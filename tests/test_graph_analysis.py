"""Graph statistics and width analysis."""

import pytest

from repro.graph.analysis import graph_stats, max_width, width_histogram
from repro.graph.taskgraph import TaskGraph


def build():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=30.0)
    g.add_subtask("c", wcet=20.0)
    g.add_subtask("d", wcet=20.0, end_to_end_deadline=200.0, pinned_to=1)
    g.add_edge("a", "b", message_size=8.0)
    g.add_edge("a", "c", message_size=16.0)
    g.add_edge("b", "d", message_size=8.0)
    g.add_edge("c", "d", message_size=8.0)
    return g


class TestGraphStats:
    def test_counts(self):
        s = graph_stats(build())
        assert s.n_subtasks == 4
        assert s.n_edges == 4
        assert s.n_inputs == 1
        assert s.n_outputs == 1
        assert s.n_pinned == 1
        assert s.depth == 3

    def test_workload(self):
        s = graph_stats(build())
        assert s.total_workload == 80.0
        assert s.mean_execution_time == 20.0
        assert s.min_execution_time == 10.0
        assert s.max_execution_time == 30.0

    def test_parallelism(self):
        s = graph_stats(build())
        assert s.longest_path_execution_time == 60.0  # a-b-d
        assert s.average_parallelism == pytest.approx(80.0 / 60.0)

    def test_communication(self):
        s = graph_stats(build())
        assert s.total_message_volume == 40.0
        assert s.mean_message_size == 10.0
        assert s.communication_to_computation_ratio == pytest.approx(0.5)

    def test_as_dict_complete(self):
        d = graph_stats(build()).as_dict()
        assert d["n_subtasks"] == 4
        assert len(d) == 15

    def test_no_edges(self):
        g = TaskGraph()
        g.add_subtask("only", wcet=5.0, release=0.0, end_to_end_deadline=10.0)
        s = graph_stats(g)
        assert s.mean_message_size == 0.0
        assert s.communication_to_computation_ratio == 0.0


class TestWidth:
    def test_histogram(self):
        assert width_histogram(build()) == {1: 1, 2: 2, 3: 1}

    def test_max_width(self):
        assert max_width(build()) == 2
