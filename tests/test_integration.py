"""End-to-end integration: generate → distribute → schedule → validate.

These tests run the full pipeline over multiple seeds and configurations
and check the structural invariants that must hold regardless of workload:
valid distributions, consistent schedules, and the qualitative relations
the components guarantee by construction.
"""

import random

import pytest

from repro.core import CCAA, CCNE, ast, bst, validate_assignment
from repro.core.commcost import Oracle
from repro.core.slicer import DeadlineDistributor
from repro.core.metrics import PureLaxityRatio
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.machine import System, make_interconnect
from repro.sched import ListScheduler, max_lateness, schedule_metrics


CONFIG = RandomGraphConfig(n_subtasks_range=(20, 30), depth_range=(5, 7))


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "metric,comm", [("PURE", "CCNE"), ("NORM", "CCAA"), ("THRES", "CCNE")]
)
def test_pipeline_produces_valid_artifacts(seed, metric, comm):
    graph = generate_task_graph(CONFIG, rng=random.Random(seed))
    if metric == "THRES":
        distributor = ast("THRES")
    else:
        distributor = bst(metric, comm)
    assignment = distributor.distribute(graph, n_processors=4)
    assert validate_assignment(assignment).ok
    schedule = ListScheduler(System(4)).schedule(graph, assignment)
    schedule.validate()
    metrics = schedule_metrics(schedule, assignment)
    assert metrics.n_subtasks == graph.n_subtasks
    assert metrics.makespan > 0


@pytest.mark.parametrize("seed", range(4))
def test_adapt_full_pipeline(seed):
    graph = generate_task_graph(CONFIG, rng=random.Random(seed))
    for n_processors in (2, 8):
        assignment = ast("ADAPT").distribute(graph, n_processors=n_processors)
        assert validate_assignment(assignment).ok
        schedule = ListScheduler(System(n_processors)).schedule(graph, assignment)
        schedule.validate()


@pytest.mark.parametrize("seed", range(4))
def test_ccne_yields_at_least_as_much_min_laxity_as_ccaa(seed):
    """CCNE keeps the whole slack pool for computation subtasks, so the
    minimum laxity it assigns can never be smaller than under CCAA on the
    same graph (the paper's Section 6 explanation of why CCNE wins)."""
    graph = generate_task_graph(CONFIG, rng=random.Random(seed))
    ccne = bst("PURE", "CCNE").distribute(graph)
    ccaa = bst("PURE", "CCAA").distribute(graph)
    assert ccne.min_laxity() >= ccaa.min_laxity() - 1e-6


@pytest.mark.parametrize("seed", range(4))
def test_more_processors_never_hurt_makespan_much(seed):
    """List scheduling anomalies aside, a 16-processor platform should not
    produce a (much) longer schedule than a 2-processor one."""
    graph = generate_task_graph(CONFIG, rng=random.Random(seed))
    assignment = bst("PURE", "CCNE").distribute(graph)
    small = ListScheduler(System(2)).schedule(graph, assignment)
    large = ListScheduler(System(16)).schedule(graph, assignment)
    assert large.makespan() <= small.makespan() * 1.25


def test_oracle_estimator_reproduces_strict_locality_setting():
    """With a complete assignment and pins matching it, the Oracle
    distribution + pinned scheduling reproduces the BST world: message
    windows exist exactly for the arcs that cross processors."""
    graph = generate_task_graph(CONFIG, rng=random.Random(42))
    assignment_map = {n: i % 2 for i, n in enumerate(graph.node_ids())}
    for node_id, proc in assignment_map.items():
        graph.node(node_id).pinned_to = proc
    distributor = DeadlineDistributor(
        PureLaxityRatio(), estimator=Oracle(assignment_map)
    )
    assignment = distributor.distribute(graph)
    for src, dst in graph.edges():
        crosses = assignment_map[src] != assignment_map[dst]
        has_window = assignment.message_window(src, dst) is not None
        sized = graph.message(src, dst).size > 0
        assert has_window == (crosses and sized)
    schedule = ListScheduler(System(2)).schedule(graph, assignment)
    schedule.validate()
    for node_id, proc in assignment_map.items():
        assert schedule.processor_of(node_id) == proc


@pytest.mark.parametrize("topology", ["bus", "fully-connected", "ring", "mesh", "ideal"])
def test_all_topologies_schedule_consistently(topology):
    graph = generate_task_graph(CONFIG, rng=random.Random(3))
    assignment = bst("PURE", "CCNE").distribute(graph)
    system = System(6, interconnect=make_interconnect(topology, 6))
    schedule = ListScheduler(system).schedule(graph, assignment)
    schedule.validate()


def test_lateness_improves_with_system_size_on_average():
    """The paper's most basic shape: more processors -> better (more
    negative) mean max lateness, until saturation."""
    graphs = [
        generate_task_graph(CONFIG, rng=random.Random(s)) for s in range(12)
    ]
    distributor = bst("PURE", "CCNE")
    means = []
    for n_processors in (2, 4, 8):
        total = 0.0
        for graph in graphs:
            assignment = distributor.distribute(graph)
            schedule = ListScheduler(System(n_processors)).schedule(
                graph, assignment
            )
            total += max_lateness(schedule, assignment)
        means.append(total / len(graphs))
    assert means[0] > means[1] >= means[2] - 1e-6
