"""The fault-tolerant engine: injected crashes, hangs, deterministic
exceptions, quarantine, and checkpoint/resume.

Every test uses the deterministic fault-injection harness
(:mod:`repro.feast.faultinject`) — the same plan against the same config
fails the same chunks on the same attempts, every run — so these are
ordinary deterministic tests, not flaky chaos tests. Configs are tiny
(one scenario, one method, one size) and retry backoffs are shortened so
the suite stays fast even on one core.
"""

import json
import os

import pytest

from repro.errors import (
    CheckpointError,
    ExperimentWarning,
    QuarantinedTrialError,
)
from repro.feast import faultinject
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.faultinject import FaultPlan, FaultSpec, InjectedFaultError
from repro.feast.instrumentation import Instrumentation
from repro.feast.parallel import RetryPolicy, run_parallel_experiment
from repro.feast.persistence import CheckpointJournal, config_fingerprint
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


def ft_config(**kwargs):
    defaults = dict(
        name="ft",
        description="fault tolerance test",
        methods=(MethodSpec(label="PURE", metric="PURE"),),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(6, 8), depth_range=(2, 3)
        ),
        scenarios=("MDET",),
        n_graphs=3,
        system_sizes=(2,),
        seed=11,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


#: Shortened backoffs so retries don't dominate test wall-clock.
FAST = RetryPolicy(
    max_attempts=3, backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05
)


def record_dicts(result):
    return [r.as_dict() for r in result.records]


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faultinject.uninstall()
    yield
    faultinject.uninstall()


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(scenario="MDET", index=1, kind="error"),
                FaultSpec(scenario="LDET", index=0, kind="hang",
                          attempts=None, seconds=2.5),
            ),
            parent_pid=123,
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(Exception, match="unknown fault kind"):
            FaultSpec(scenario="MDET", index=0, kind="explode")

    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(7, ("LDET", "MDET"), 16, rate=0.3)
        b = FaultPlan.seeded(7, ("LDET", "MDET"), 16, rate=0.3)
        assert a.faults == b.faults
        assert FaultPlan.seeded(8, ("LDET", "MDET"), 16, rate=0.3) != a

    def test_fires_on_selected_attempts_only(self):
        spec = FaultSpec(scenario="MDET", index=0, kind="error",
                         attempts=(0, 2))
        assert spec.fires_on(0) and spec.fires_on(2)
        assert not spec.fires_on(1)
        every = FaultSpec(scenario="MDET", index=0, kind="error",
                          attempts=None)
        assert all(every.fires_on(i) for i in range(5))

    def test_crash_never_fires_in_parent(self):
        plan = FaultPlan(
            faults=(FaultSpec(scenario="MDET", index=0, kind="crash",
                              attempts=None),),
        )
        with faultinject.active(plan):
            # We ARE the parent: must be a no-op, not a SIGKILL.
            faultinject.maybe_inject("MDET", 0, 0)

    def test_no_plan_is_a_noop(self):
        faultinject.maybe_inject("MDET", 0, 0)


class TestTransientFaults:
    def test_transient_exception_is_retried(self):
        cfg = ft_config()
        clean = run_experiment(cfg)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=1, kind="error",
                      attempts=(0,)),
        ))
        inst = Instrumentation()
        with faultinject.active(plan):
            result = run_parallel_experiment(
                cfg, jobs=1, retry=FAST, instrumentation=inst
            )
        assert record_dicts(result) == record_dicts(clean)
        assert result.complete and result.check() is result
        assert inst.retries == 1 and inst.quarantined == 0
        kinds = [f.kind for f in result.failures]
        assert kinds == ["exception"]
        assert result.failures[0].index == 1

    def test_worker_crash_is_retried(self):
        cfg = ft_config(n_graphs=2)
        clean = run_experiment(cfg)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="crash",
                      attempts=(0,)),
        ))
        inst = Instrumentation()
        with faultinject.active(plan):
            result = run_parallel_experiment(
                cfg, jobs=2, retry=FAST, instrumentation=inst
            )
        assert record_dicts(result) == record_dicts(clean)
        assert result.complete
        assert inst.pool_respawns >= 1
        assert any(f.kind == "crash" for f in result.failures)

    def test_hang_is_killed_and_retried(self):
        cfg = ft_config(n_graphs=2, trial_timeout=0.25)
        clean = run_experiment(ft_config(n_graphs=2))
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="hang",
                      attempts=(0,), seconds=20.0),
        ))
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.01, backoff_max=0.05,
            timeout_grace=0.25,
        )
        inst = Instrumentation()
        with faultinject.active(plan):
            result = run_parallel_experiment(
                cfg, jobs=2, retry=policy, instrumentation=inst
            )
        # trial_timeout does not affect records, only survival.
        assert record_dicts(result) == record_dicts(clean)
        assert result.complete
        assert any(f.kind == "timeout" for f in result.failures)


class TestQuarantine:
    def test_deterministic_exception_quarantines_fast(self):
        """The same exception twice marks the chunk deterministic — it is
        quarantined after 2 attempts even with retries to spare."""
        cfg = ft_config(max_retries=5)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=1, kind="error",
                      attempts=None),
        ))
        inst = Instrumentation()
        with faultinject.active(plan):
            result = run_parallel_experiment(
                cfg, jobs=1,
                retry=RetryPolicy(max_attempts=6, backoff_base=0.01,
                                  backoff_max=0.02),
                instrumentation=inst,
            )
        assert result.quarantined == [("MDET", 1)]
        assert not result.complete
        exception_events = [
            f for f in result.failures if f.kind == "exception"
        ]
        assert len(exception_events) == 2  # not 6
        assert inst.quarantined == 1
        # The healthy chunks' records survive, in canonical order.
        assert [r.graph_index for r in result.records] == [0, 2]
        with pytest.raises(QuarantinedTrialError, match=r"\(MDET, 1\)"):
            result.check()

    def test_exhausted_attempts_quarantine(self):
        cfg = ft_config(n_graphs=2)
        plan = FaultPlan(faults=(
            # Different message each attempt would be needed to look
            # transient; a crash is never treated as deterministic, so it
            # burns through the full attempt budget.
            FaultSpec(scenario="MDET", index=0, kind="crash",
                      attempts=None),
        ))
        policy = RetryPolicy(max_attempts=2, backoff_base=0.01,
                             backoff_max=0.02)
        with faultinject.active(plan):
            result = run_parallel_experiment(cfg, jobs=2, retry=policy)
        assert result.quarantined == [("MDET", 0)]
        assert len(result.records) == cfg.n_trials - cfg.trials_per_graph
        quarantine_events = [
            f for f in result.failures if f.kind == "quarantine"
        ]
        assert len(quarantine_events) == 1
        assert "attempts" in quarantine_events[0].message

    def test_run_never_raises_on_faults(self):
        """The acceptance bar: a fault-ridden sweep still returns a
        completed ExperimentResult, never a crashed run."""
        cfg = ft_config(n_graphs=4)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="error",
                      attempts=None),
            FaultSpec(scenario="MDET", index=2, kind="error",
                      attempts=(0,)),
        ))
        with faultinject.active(plan):
            result = run_parallel_experiment(cfg, jobs=1, retry=FAST)
        assert result.quarantined == [("MDET", 0)]
        assert [r.graph_index for r in result.records] == [1, 2, 3]


class TestDegradation:
    def test_repeated_pool_deaths_degrade_to_in_process(self):
        cfg = ft_config(n_graphs=2)
        clean = run_experiment(cfg)
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=0, kind="crash",
                      attempts=None),
        ))
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.01, backoff_max=0.02,
            max_pool_respawns=0,
        )
        with faultinject.active(plan):
            with pytest.warns(ExperimentWarning, match="degraded"):
                result = run_parallel_experiment(
                    cfg, jobs=2, retry=policy
                )
        # In-process, the crash spec is parent-safe, so the sweep
        # finishes completely.
        assert record_dicts(result) == record_dicts(clean)
        assert result.complete
        assert result.fallback_reason is not None
        assert "degraded" in result.fallback_reason


class TestCheckpoint:
    def test_fresh_run_writes_journal(self, tmp_path):
        cfg = ft_config()
        path = str(tmp_path / "sweep.ckpt")
        result = run_experiment(cfg, checkpoint=path)
        assert result.complete
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-sweep-checkpoint"
        assert header["fingerprint"] == config_fingerprint(cfg)
        assert len(lines) == 1 + cfg.n_graphs

    def test_interrupted_run_resumes_identically(self, tmp_path):
        cfg = ft_config(n_graphs=4)
        clean = run_experiment(cfg)
        path = str(tmp_path / "sweep.ckpt")

        calls = []

        def interrupt_after_two(done, total):
            calls.append(done)
            if len(calls) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_experiment(cfg, checkpoint=path,
                           progress=interrupt_after_two)
        # The journal holds exactly the chunks that completed.
        assert len(open(path).read().splitlines()) == 1 + 2

        inst = Instrumentation()
        resumed = run_experiment(cfg, checkpoint=path, instrumentation=inst)
        assert record_dicts(resumed) == record_dicts(clean)
        assert resumed.complete
        assert inst.replayed_trials == 2 * cfg.trials_per_graph

    def test_resume_after_fault_run(self, tmp_path):
        """A sweep interrupted by quarantine-worthy faults resumes clean:
        the quarantined chunk is simply re-run (it is not journaled)."""
        cfg = ft_config()
        clean = run_experiment(cfg)
        path = str(tmp_path / "sweep.ckpt")
        plan = FaultPlan(faults=(
            FaultSpec(scenario="MDET", index=1, kind="error",
                      attempts=None),
        ))
        with faultinject.active(plan):
            first = run_experiment(cfg, checkpoint=path, retry=FAST)
        assert first.quarantined == [("MDET", 1)]
        # No plan installed now: the re-run completes what was missing.
        resumed = run_experiment(cfg, checkpoint=path)
        assert record_dicts(resumed) == record_dicts(clean)
        assert resumed.complete

    def test_completed_checkpoint_replays_everything(self, tmp_path):
        cfg = ft_config()
        path = str(tmp_path / "sweep.ckpt")
        first = run_experiment(cfg, checkpoint=path)
        inst = Instrumentation()
        again = run_experiment(cfg, checkpoint=path, instrumentation=inst)
        assert record_dicts(again) == record_dicts(first)
        assert inst.replayed_trials == cfg.n_trials

    def test_changed_config_refuses_to_resume(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(ft_config(), checkpoint=path)
        with pytest.raises(CheckpointError, match="different experiment"):
            run_experiment(ft_config(seed=99), checkpoint=path)

    def test_tolerant_knobs_do_not_change_fingerprint(self, tmp_path):
        """trial_timeout / max_retries bound *how* trials run, not what
        they record — resuming with different values is allowed."""
        cfg = ft_config()
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(cfg, checkpoint=path)
        relaxed = ft_config(trial_timeout=60.0, max_retries=9)
        assert config_fingerprint(relaxed) == config_fingerprint(cfg)
        resumed = run_experiment(relaxed, checkpoint=path)
        assert resumed.complete

    def test_relative_checkpoint_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cfg = ft_config()
        result = run_experiment(cfg, checkpoint="sweep.ckpt")
        assert result.complete
        assert os.path.exists(tmp_path / "sweep.ckpt")
        resumed = run_experiment(cfg, checkpoint="sweep.ckpt")
        assert record_dicts(resumed) == record_dicts(result)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="directory"):
            CheckpointJournal(
                str(tmp_path / "nope" / "sweep.ckpt"), ft_config()
            )

    def test_truncated_tail_is_repaired(self, tmp_path):
        cfg = ft_config()
        clean = run_experiment(cfg)
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(cfg, checkpoint=path)
        # Simulate a crash mid-append: chop the last line in half.
        text = open(path).read()
        cut = text.rstrip("\n")
        cut = cut[: len(cut) - len(cut.splitlines()[-1]) // 2]
        with open(path, "w") as fp:
            fp.write(cut)
        with pytest.warns(ExperimentWarning, match="partial line"):
            resumed = run_experiment(cfg, checkpoint=path)
        assert record_dicts(resumed) == record_dicts(clean)

    def test_corrupt_middle_line_raises(self, tmp_path):
        cfg = ft_config()
        path = str(tmp_path / "sweep.ckpt")
        run_experiment(cfg, checkpoint=path)
        lines = open(path).read().splitlines()
        lines[1] = lines[1][:10]  # mangle a non-trailing chunk line
        with open(path, "w") as fp:
            fp.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            run_experiment(cfg, checkpoint=path)

    def test_not_a_journal_raises(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_text("just some text\n")
        with pytest.raises(CheckpointError, match="not a"):
            run_experiment(ft_config(), checkpoint=str(path))

    def test_parallel_checkpoint_matches_serial(self, tmp_path):
        cfg = ft_config()
        clean = run_experiment(cfg)
        path = str(tmp_path / "par.ckpt")
        result = run_experiment(cfg, jobs=2, checkpoint=path)
        assert record_dicts(result) == record_dicts(clean)
        resumed = run_experiment(cfg, jobs=2, checkpoint=path)
        assert record_dicts(resumed) == record_dicts(clean)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_max=3.0)
        delays = [policy.backoff(a) for a in (1, 2, 3, 4, 5)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_from_config(self):
        assert RetryPolicy.from_config(
            ft_config(max_retries=4)
        ).max_attempts == 5

    def test_invalid_policy_rejected(self):
        with pytest.raises(Exception, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(Exception, match="max_pool_respawns"):
            RetryPolicy(max_pool_respawns=-1)
        with pytest.raises(Exception, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(Exception, match="stall_timeout"):
            RetryPolicy(stall_timeout=0.0)
        with pytest.raises(Exception, match="stall_grace"):
            RetryPolicy(stall_grace=-1.0)

    def test_jittered_backoff_sequence_is_pinned(self):
        """The jitter is seed-derived, not wall-clock random: a fixed
        (seed, token) must reproduce this exact delay sequence on every
        host, so chaos campaigns replay with identical schedules."""
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_max=3.0, jitter=0.25)
        delays = [
            policy.backoff_jittered(a, 11, "MDET:3") for a in (1, 2, 3, 4, 5)
        ]
        assert delays == [
            0.5210250684363562,
            1.2158885423558108,
            2.2950374906062176,
            3.3092270874503753,
            3.3296067757876937,
        ]
        # Deterministic: the same inputs replay the same sequence.
        assert delays == [
            policy.backoff_jittered(a, 11, "MDET:3") for a in (1, 2, 3, 4, 5)
        ]
        # Every delay sits in [base, base * (1 + jitter)].
        for attempt, delay in enumerate(delays, start=1):
            base = policy.backoff(attempt)
            assert base <= delay <= base * 1.25
        # Different tokens and seeds decorrelate the schedules...
        assert policy.backoff_jittered(1, 11, "LDET:0") != delays[0]
        assert policy.backoff_jittered(1, 12, "MDET:3") != delays[0]
        # ...and zero jitter degrades to the plain deterministic ladder.
        flat = RetryPolicy(backoff_base=0.5, backoff_factor=2.0,
                           backoff_max=3.0, jitter=0.0)
        assert flat.backoff_jittered(2, 11, "MDET:3") == flat.backoff(2)


class TestBudget:
    def test_no_deadline_is_noop(self):
        from repro import budget

        assert budget.current_trial_deadline() is None
        assert budget.remaining() is None
        assert not budget.expired()
        budget.check()  # must not raise

    def test_deadline_scopes_and_restores(self):
        from repro import budget

        with budget.trial_deadline(60.0):
            outer = budget.current_trial_deadline()
            assert outer is not None and budget.remaining() > 59.0
            with budget.trial_deadline(1.0):
                # Nested tighter deadline wins...
                assert budget.current_trial_deadline() < outer
            # ...and the enclosing one is restored.
            assert budget.current_trial_deadline() == outer
        assert budget.current_trial_deadline() is None

    def test_nested_deadline_never_extends(self):
        from repro import budget

        with budget.trial_deadline(0.0):
            inner_limit = budget.current_trial_deadline()
            with budget.trial_deadline(60.0):
                assert budget.current_trial_deadline() == inner_limit

    def test_check_raises_when_expired(self):
        from repro import budget
        from repro.errors import TrialTimeoutError

        with budget.trial_deadline(0.0):
            assert budget.expired()
            with pytest.raises(TrialTimeoutError, match="search"):
                budget.check("search")


class TestTrialTimeoutRouting:
    def test_trial_timeout_routes_through_supervised_engine(self):
        """Even jobs=1 runs gain fault tolerance once a timeout is set."""
        cfg = ft_config(trial_timeout=30.0)
        clean = run_experiment(ft_config())
        result = run_experiment(cfg)  # jobs defaults to 1
        assert record_dicts(result) == record_dicts(clean)
        assert result.complete

    def test_slow_trial_is_recorded_not_failed(self, monkeypatch):
        """A trial that finishes past its cooperative budget keeps its
        result and logs a slow-trial event."""
        import repro.feast.backends.work as work_mod
        from repro.feast.runner import run_trial as real_run_trial

        def slow_run_trial(*args, **kwargs):
            import time

            time.sleep(0.03)
            return real_run_trial(*args, **kwargs)

        monkeypatch.setattr(work_mod, "run_trial", slow_run_trial)
        cfg = ft_config(n_graphs=1, trial_timeout=0.001)
        result = run_experiment(cfg, jobs=1, retry=FAST)
        assert result.complete  # records kept despite the overrun
        assert [f.kind for f in result.failures] == ["slow-trial"]
        assert "budget" in result.failures[0].message
