"""Critical-path search: exactness on hand-built graphs, determinism."""

import itertools

import pytest

from repro.core.commcost import CCNE
from repro.core.criticalpath import find_critical_path
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import (
    MetricContext,
    NormalizedLaxityRatio,
    PureLaxityRatio,
)
from repro.errors import DistributionError
from repro.graph.taskgraph import TaskGraph


def expand(graph):
    return ExpandedGraph(graph, CCNE())


def search(graph, metric, unassigned=None, releases=None, deadlines=None):
    e = expand(graph)
    metric.prepare(e, MetricContext(graph=graph, n_processors=2))
    return find_critical_path(
        e,
        metric,
        unassigned if unassigned is not None else set(e.nodes),
        releases if releases is not None else dict(e.static_release),
        deadlines if deadlines is not None else dict(e.static_deadline),
    )


def brute_force_min_ratio(graph, metric):
    """Enumerate every input-to-output path and evaluate the metric."""
    e = expand(graph)
    metric.prepare(e, MetricContext(graph=graph, n_processors=2))
    best = None
    from repro.graph.paths import enumerate_paths

    for src in graph.input_subtasks():
        for dst in graph.output_subtasks():
            for path in enumerate_paths(graph, src, dst):
                d = graph.node(dst).end_to_end_deadline - graph.node(src).release
                total = sum(graph.node(n).wcet for n in path)
                r = metric.ratio(d, total, len(path))
                if best is None or r < best:
                    best = r
    return best


def diamond():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=40.0)
    g.add_subtask("c", wcet=10.0)
    g.add_subtask("d", wcet=10.0, end_to_end_deadline=100.0)
    for u, v in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
        g.add_edge(u, v)
    return g


class TestPureSearch:
    def test_picks_min_ratio_path(self):
        # Path a-b-d: (100-60)/3; path a-c-d: (100-30)/3. Min is a-b-d.
        path = search(diamond(), PureLaxityRatio())
        assert path.nodes == ("a", "b", "d")
        assert path.ratio == pytest.approx(40.0 / 3)
        assert path.release == 0.0
        assert path.deadline == 100.0
        assert path.end_to_end == 100.0

    def test_matches_brute_force(self):
        g = diamond()
        assert search(g, PureLaxityRatio()).ratio == pytest.approx(
            brute_force_min_ratio(g, PureLaxityRatio())
        )

    def test_prefers_longer_path_when_slack_positive(self):
        # Two parallel chains with equal cost, one has more hops: with
        # positive slack PURE divides by n, so more hops -> smaller R.
        g = TaskGraph()
        g.add_subtask("s", wcet=10.0, release=0.0)
        g.add_subtask("x", wcet=30.0)
        g.add_subtask("y1", wcet=15.0)
        g.add_subtask("y2", wcet=15.0)
        g.add_subtask("t", wcet=10.0, end_to_end_deadline=100.0)
        for u, v in [("s", "x"), ("x", "t"), ("s", "y1"), ("y1", "y2"), ("y2", "t")]:
            g.add_edge(u, v)
        path = search(g, PureLaxityRatio())
        assert path.nodes == ("s", "y1", "y2", "t")


class TestNormSearch:
    def test_picks_max_cost_path(self):
        # NORM with equal endpoints reduces to max accumulated cost.
        path = search(diamond(), NormalizedLaxityRatio())
        assert path.nodes == ("a", "b", "d")
        assert path.ratio == pytest.approx((100.0 - 60.0) / 60.0)

    def test_matches_brute_force(self):
        g = diamond()
        assert search(g, NormalizedLaxityRatio()).ratio == pytest.approx(
            brute_force_min_ratio(g, NormalizedLaxityRatio())
        )

    def test_distinguishes_release_anchors(self):
        # Two sources with different releases: a later release leaves a
        # smaller window, hence a smaller (more critical) ratio.
        g = TaskGraph()
        g.add_subtask("early", wcet=10.0, release=0.0)
        g.add_subtask("late", wcet=10.0, release=60.0)
        g.add_subtask("t", wcet=10.0, end_to_end_deadline=100.0)
        g.add_edge("early", "t")
        g.add_edge("late", "t")
        path = search(g, NormalizedLaxityRatio())
        assert path.nodes == ("late", "t")
        assert path.release == 60.0


class TestSubsetSearch:
    def test_search_restricted_to_unassigned(self):
        g = diamond()
        e = expand(g)
        metric = PureLaxityRatio()
        metric.prepare(e, MetricContext(graph=g, n_processors=2))
        # Pretend a, b, d were already sliced; c must attach between the
        # anchors it inherited: release 30 (deadline of a), deadline 80
        # (release of d).
        path = find_critical_path(
            e, metric, {"c"}, {"c": 30.0}, {"c": 80.0}
        )
        assert path.nodes == ("c",)
        assert path.ratio == pytest.approx(50.0 - 10.0)

    def test_no_candidates_raises(self):
        g = diamond()
        e = expand(g)
        metric = PureLaxityRatio()
        metric.prepare(e, MetricContext(graph=g, n_processors=2))
        with pytest.raises(DistributionError):
            find_critical_path(e, metric, {"c"}, {}, {})


class TestDeterminism:
    def test_ties_broken_deterministically(self):
        # Symmetric diamond: both paths have identical metric values.
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b1", wcet=20.0)
        g.add_subtask("b2", wcet=20.0)
        g.add_subtask("d", wcet=10.0, end_to_end_deadline=100.0)
        for u, v in [("a", "b1"), ("a", "b2"), ("b1", "d"), ("b2", "d")]:
            g.add_edge(u, v)
        first = search(g, PureLaxityRatio())
        for _ in range(5):
            assert search(g, PureLaxityRatio()).nodes == first.nodes
        assert first.nodes == ("a", "b1", "d")  # lexicographic tie-break
