"""Adversarial and degenerate workloads: the pipeline must not fall over.

Failure-injection style tests: extreme shapes, extreme values, and inputs
crafted to hit boundary conditions in the distribution and scheduling
algorithms. Every case must either complete with consistent artifacts or
fail with the library's own typed errors — never with an unhandled
exception or a corrupted result.
"""

import pytest

from repro.core import ast, bst, validate_assignment
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched import ListScheduler, max_lateness, schedule_metrics
from repro.sched.simulator import simulate_dynamic


def run_pipeline(graph, n_processors=2):
    assignment = bst("PURE", "CCNE").distribute(graph)
    report = validate_assignment(assignment)
    assert not report.missing_windows
    schedule = ListScheduler(System(n_processors)).schedule(graph, assignment)
    schedule.validate()
    return assignment, schedule


class TestDegenerateShapes:
    def test_single_subtask(self):
        g = TaskGraph()
        g.add_subtask("only", wcet=5.0, release=0.0, end_to_end_deadline=10.0)
        assignment, schedule = run_pipeline(g)
        assert schedule.makespan() == 5.0
        assert max_lateness(schedule, assignment) == pytest.approx(-5.0)

    def test_fully_disconnected(self):
        g = TaskGraph()
        for i in range(20):
            g.add_subtask(f"t{i}", wcet=5.0, release=0.0,
                          end_to_end_deadline=100.0)
        assignment, schedule = run_pipeline(g, n_processors=4)
        assert schedule.makespan() == pytest.approx(25.0)

    def test_very_deep_chain(self):
        # 500 levels: the algorithms must be iterative, not recursive.
        g = TaskGraph()
        prev = None
        for i in range(500):
            g.add_subtask(f"n{i:03d}", wcet=1.0,
                          release=0.0 if i == 0 else None,
                          end_to_end_deadline=1000.0 if i == 499 else None)
            if prev is not None:
                g.add_edge(prev, f"n{i:03d}")
            prev = f"n{i:03d}"
        assignment, schedule = run_pipeline(g)
        assert schedule.makespan() == pytest.approx(500.0)

    def test_star_fan_out_in(self):
        # One source feeding 100 siblings feeding one sink.
        g = TaskGraph()
        g.add_subtask("src", wcet=1.0, release=0.0)
        g.add_subtask("sink", wcet=1.0, end_to_end_deadline=1000.0)
        for i in range(100):
            g.add_subtask(f"mid{i}", wcet=2.0)
            g.add_edge("src", f"mid{i}", message_size=1.0)
            g.add_edge(f"mid{i}", "sink", message_size=1.0)
        assignment, schedule = run_pipeline(g, n_processors=8)
        metrics = schedule_metrics(schedule, assignment)
        assert metrics.n_subtasks == 102

    def test_all_messages_zero_size(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0)
        g.add_subtask("b", wcet=1.0)
        g.add_subtask("c", wcet=1.0, end_to_end_deadline=100.0)
        g.add_edge("a", "b", message_size=0.0)
        g.add_edge("b", "c", message_size=0.0)
        assignment, schedule = run_pipeline(g)
        # Pure precedence: even CCAA would materialize nothing.
        ccaa = bst("PURE", "CCAA").distribute(g)
        assert ccaa.message_windows == {}


class TestExtremeValues:
    def test_huge_execution_times(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1e12, release=0.0)
        g.add_subtask("b", wcet=1e12, end_to_end_deadline=5e12)
        g.add_edge("a", "b")
        assignment, schedule = run_pipeline(g)
        assert schedule.makespan() == pytest.approx(2e12)

    def test_tiny_execution_times(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1e-9, release=0.0)
        g.add_subtask("b", wcet=1e-9, end_to_end_deadline=1e-6)
        g.add_edge("a", "b")
        assignment, schedule = run_pipeline(g)
        assert max_lateness(schedule, assignment) < 0

    def test_wildly_mixed_magnitudes(self):
        g = TaskGraph()
        g.add_subtask("fly", wcet=1e-6, release=0.0)
        g.add_subtask("whale", wcet=1e6)
        g.add_subtask("out", wcet=1.0, end_to_end_deadline=3e6)
        g.add_edge("fly", "whale")
        g.add_edge("whale", "out")
        run_pipeline(g)

    def test_zero_deadline_budget(self):
        # End-to-end deadline equal to the release: everything is late,
        # nothing crashes.
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=0.0)
        assignment = bst("PURE", "CCNE").distribute(g)
        schedule = ListScheduler(System(1)).schedule(g, assignment)
        assert max_lateness(schedule, assignment) == pytest.approx(10.0)

    def test_identical_everything_is_deterministic(self):
        # Full symmetry: equal costs, equal deadlines — determinism must
        # come from tie-breaking, and repeated runs must agree.
        def build():
            g = TaskGraph()
            for i in range(6):
                g.add_subtask(f"t{i}", wcet=10.0, release=0.0,
                              end_to_end_deadline=100.0)
            return g

        a1, s1 = run_pipeline(build(), n_processors=3)
        a2, s2 = run_pipeline(build(), n_processors=3)
        assert {n: s1.processor_of(n) for n in s1.tasks} == {
            n: s2.processor_of(n) for n in s2.tasks
        }


class TestScaleSmoke:
    def test_large_random_graph_end_to_end(self):
        config = RandomGraphConfig(
            n_subtasks_range=(400, 400), depth_range=(20, 25)
        )
        import random

        g = generate_task_graph(config, rng=random.Random(0))
        assignment = ast("ADAPT").distribute(g, n_processors=8)
        assert len(assignment.windows) == 400
        schedule = ListScheduler(System(8)).schedule(g, assignment)
        schedule.validate()
        trace = simulate_dynamic(g, assignment, System(8))
        assert len(trace.completions) == 400
