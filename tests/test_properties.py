"""Property-based tests (hypothesis) on the core invariants.

Strategies build random workloads through the library's own generator (it
is itself under test elsewhere) and through a raw random-DAG strategy, then
assert the invariants that must hold for *every* input:

* deadline distribution covers every subtask with windows that are
  precedence-consistent and respect the application anchors;
* slicing telescopes: each slice's windows partition its end-to-end budget;
* the scheduler never overlaps tasks on a processor or messages on a link,
  and always respects precedence + transfer arrival;
* link timelines never hand out overlapping slots.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core import ast, bst, validate_assignment
from repro.graph import generate_task_graph
from repro.machine import System, make_interconnect
from repro.sched import ListScheduler
from repro.sched.bus import LinkTimeline
from tests.strategies import default_settings, raw_dags, small_graph_configs

SETTINGS = default_settings(max_examples=25)


# ----------------------------------------------------------------------
# Distribution invariants
# ----------------------------------------------------------------------
def _collapsed_upstream_violations_only(graph, assignment):
    """True iff every precedence violation sits downstream of a collapsed
    (zero-width) window — the documented over-constrained failure mode:
    an inherited deadline anchor encodes precedence toward an already
    sliced neighbour, and a collapsed window may slide past it."""
    for src, dst in graph.edges():
        upstream = assignment.window(src)
        comm = assignment.message_window(src, dst)
        if comm is not None:
            if (
                comm.release < upstream.absolute_deadline - 1e-9
                and upstream.relative_deadline > 1e-9
            ):
                return False
            upstream = comm
        if (
            assignment.window(dst).release < upstream.absolute_deadline - 1e-9
            and upstream.relative_deadline > 1e-9
        ):
            return False
    return True


@SETTINGS
@given(config=small_graph_configs(), seed=st.integers(0, 10_000))
def test_distribution_is_structurally_valid(config, seed):
    graph = generate_task_graph(config, rng=random.Random(seed))
    for distributor in (bst("PURE", "CCNE"), bst("NORM", "CCAA"), ast("ADAPT")):
        assignment = distributor.distribute(graph, n_processors=3)
        assert set(assignment.windows) == set(graph.node_ids())
        report = validate_assignment(assignment)
        # Release anchors hold unconditionally. Precedence consistency
        # holds whenever the budgets are feasible; in the over-constrained
        # regime (degenerate windows) a collapsed window may slide past an
        # inherited deadline anchor — which encodes precedence toward an
        # already-sliced neighbour — by documented design (slicer docs).
        assert not report.missing_windows
        if report.precedence_violations:
            assert assignment.degenerate_windows(), (
                report.precedence_violations[:3]
            )
            assert _collapsed_upstream_violations_only(graph, assignment), (
                report.precedence_violations[:3]
            )
        if not assignment.degenerate_windows():
            assert report.ok, report.anchor_violations[:3]


@SETTINGS
@given(graph=raw_dags())
def test_distribution_on_arbitrary_dags(graph):
    assignment = bst("PURE", "CCAA").distribute(graph)
    report = validate_assignment(assignment, check_paths=True, path_limit=500)
    assert report.ok, (
        report.precedence_violations[:3]
        + report.anchor_violations[:3]
        + report.path_violations[:3]
    )


@SETTINGS
@given(graph=raw_dags())
def test_slices_partition_their_budget(graph):
    assignment = bst("PURE", "CCNE").distribute(graph)
    for record in assignment.slices:
        # Window chain of the slice spans exactly [release, deadline] ...
        # unless clamping tightened it, which can only shrink the span.
        first = record.nodes[0]
        last = record.nodes[-1]
        windows = assignment.windows
        w_first = windows.get(first) or assignment.message_windows.get(
            _edge_of(first)
        )
        w_last = windows.get(last) or assignment.message_windows.get(
            _edge_of(last)
        )
        assert w_first.release >= record.release - 1e-6
        assert w_last.absolute_deadline <= record.deadline + 1e-6


def _edge_of(eid):
    inner = eid[len("chi("):-1]
    src, dst = inner.split("->")
    return (src, dst)


# ----------------------------------------------------------------------
# Scheduling invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(
    config=small_graph_configs(),
    seed=st.integers(0, 10_000),
    n_processors=st.integers(1, 6),
    topology=st.sampled_from(["bus", "ring", "mesh", "ideal"]),
)
def test_schedule_always_consistent(config, seed, n_processors, topology):
    graph = generate_task_graph(config, rng=random.Random(seed))
    assignment = bst("PURE", "CCNE").distribute(graph)
    system = System(
        n_processors, interconnect=make_interconnect(topology, n_processors)
    )
    schedule = ListScheduler(system).schedule(graph, assignment)
    schedule.validate()  # raises on any inconsistency
    assert schedule.makespan() >= max(s.wcet for s in graph.nodes()) - 1e-9


@SETTINGS
@given(graph=raw_dags(), respect=st.booleans())
def test_schedule_consistent_on_arbitrary_dags(graph, respect):
    assignment = bst("PURE", "CCAA").distribute(graph)
    schedule = ListScheduler(
        System(2), respect_release_times=respect
    ).schedule(graph, assignment)
    schedule.validate()
    if respect:
        for node_id in graph.node_ids():
            assert (
                schedule.task(node_id).start
                >= assignment.release(node_id) - 1e-6
            )


# ----------------------------------------------------------------------
# Link timeline invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(
    requests=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_link_timeline_never_overlaps(requests):
    timeline = LinkTimeline()
    granted = []
    for ready, duration in requests:
        start = timeline.earliest_slot(ready, duration)
        assert start >= ready
        timeline.reserve(start, duration)  # must never raise
        granted.append((start, start + duration))
    granted.sort()
    for (s1, f1), (s2, f2) in zip(granted, granted[1:]):
        assert s2 >= f1 - 1e-9
