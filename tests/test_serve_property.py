"""Property test: document → server → result ≡ the in-process pipeline.

One server, many drawn documents: whatever valid job document hypothesis
produces — generated workloads across the paper's scenario space
(including OLR < 1 over-constrained and CCR = 0 communication-free
degenerates) or explicit inline graphs — the records that come back
over HTTP must equal, byte for byte when serialized, what
``run_experiment(compile_job(document))`` produces in this process.
That closes the loop the example-based lifecycle tests open: the
byte-identity contract holds over the *space* of documents, not a
handful of fixtures.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.serve.app import ServiceConfig, ServiceHandle
from repro.serve.jobs import JobState
from tests.serve_client import direct_records, fetch_records, submit, wait_terminal
from tests.strategies import job_documents


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        data_dir=str(tmp_path_factory.mktemp("serve-property")), workers=2
    )
    with ServiceHandle(config) as handle:
        yield handle


@given(document=job_documents())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
def test_document_roundtrip_matches_in_process_pipeline(server, document):
    job_id = submit(server.port, document)
    final = wait_terminal(server.port, job_id)
    assert final["state"] == JobState.DONE, final

    served = fetch_records(server.port, job_id)
    direct = direct_records(document)
    assert json.dumps(served, sort_keys=True) == json.dumps(direct, sort_keys=True)
