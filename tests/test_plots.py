"""ASCII plot rendering."""

import pytest

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.plots import lateness_plot, render_plot
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


class TestRenderPlot:
    def test_contains_markers_axes_legend(self):
        text = render_plot(
            {"A": [(0, 0.0), (1, 1.0)], "B": [(0, 1.0), (1, 0.0)]},
            width=20,
            height=8,
            title="T",
            x_label="size",
            y_label="lat",
        )
        assert text.splitlines()[0] == "T"
        assert "o=A" in text and "x=B" in text
        assert "(lat)" in text
        assert "size" in text
        assert "o" in text and "x" in text
        assert "+" + "-" * 20 in text

    def test_y_axis_annotated(self):
        # The frame adds 5% headroom: [-20, -10] renders as [-20.5, -9.5].
        text = render_plot({"A": [(0, -10.0), (4, -20.0)]}, width=20, height=8)
        assert "-9.5" in text
        assert "-20.5" in text

    def test_single_point_series(self):
        # Degenerate ranges must not divide by zero.
        text = render_plot({"A": [(2, 5.0)]}, width=10, height=5)
        assert "o" in text

    def test_interpolation_dots_connect_points(self):
        text = render_plot({"A": [(0, 0.0), (10, 0.0)]}, width=30, height=5)
        row = next(line for line in text.splitlines() if "o" in line)
        assert "." in row  # the connecting segment

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_plot({})
        with pytest.raises(ExperimentError):
            render_plot({"A": []})

    def test_many_series_cycle_markers(self):
        curves = {f"m{i}": [(0, float(i)), (1, float(i))] for i in range(10)}
        text = render_plot(curves, width=20, height=12)
        assert "#=m4" in text
        assert "o=m8" in text  # marker cycle wraps


class TestLatenessPlot:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ExperimentConfig(
            name="plotme",
            description="plot test",
            methods=(MethodSpec(label="PURE", metric="PURE"),),
            graph_config=RandomGraphConfig(
                n_subtasks_range=(10, 12), depth_range=(3, 4)
            ),
            scenarios=("MDET",),
            n_graphs=2,
            system_sizes=(2, 4, 8),
            seed=1,
        )
        return run_experiment(cfg)

    def test_plot_from_result(self, result):
        text = lateness_plot(result, "MDET")
        assert "plotme" in text
        assert "o=PURE" in text
        assert "processors" in text

    def test_method_subset(self, result):
        text = lateness_plot(result, "MDET", methods=["PURE"])
        assert "o=PURE" in text
