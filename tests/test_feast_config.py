"""Experiment configuration validation and method specs."""

import pytest

from repro.core.metrics import (
    AdaptiveLaxityRatio,
    PureLaxityRatio,
    ThresholdLaxityRatio,
)
from repro.errors import ExperimentError
from repro.feast.config import (
    PAPER_N_GRAPHS,
    PAPER_SYSTEM_SIZES,
    ExperimentConfig,
    MethodSpec,
)


def spec(**kwargs):
    defaults = dict(label="m", metric="PURE")
    defaults.update(kwargs)
    return MethodSpec(**defaults)


class TestMethodSpec:
    def test_build_pure(self):
        d = spec(metric="PURE", comm="CCAA").build()
        assert isinstance(d.metric, PureLaxityRatio)
        assert d.estimator.name == "CCAA"

    def test_build_thres_with_params(self):
        d = spec(metric="THRES", surplus=2.0, threshold_factor=1.0).build()
        assert isinstance(d.metric, ThresholdLaxityRatio)
        assert d.metric.surplus == 2.0
        assert d.metric.threshold_factor == 1.0

    def test_build_adapt(self):
        d = spec(metric="ADAPT", threshold_factor=1.25).build()
        assert isinstance(d.metric, AdaptiveLaxityRatio)

    def test_needs_system_size(self):
        assert spec(metric="ADAPT").needs_system_size
        assert not spec(metric="THRES").needs_system_size
        assert not spec(metric="PURE").needs_system_size

    def test_unknown_metric(self):
        with pytest.raises(ExperimentError):
            spec(metric="MAGIC")

    def test_unknown_comm(self):
        with pytest.raises(ExperimentError):
            spec(comm="CCXX")

    def test_cost_per_item_propagates(self):
        d = spec(comm="CCAA", cost_per_item=2.5).build()
        assert d.estimator.cost_per_item == 2.5


class TestExperimentConfig:
    def base(self, **kwargs):
        defaults = dict(
            name="exp",
            description="d",
            methods=(spec(label="A"), spec(label="B", metric="NORM")),
        )
        defaults.update(kwargs)
        return ExperimentConfig(**defaults)

    def test_defaults_match_paper(self):
        cfg = self.base()
        assert cfg.n_graphs == PAPER_N_GRAPHS == 128
        assert cfg.system_sizes == PAPER_SYSTEM_SIZES
        assert min(cfg.system_sizes) == 2 and max(cfg.system_sizes) == 16
        assert cfg.scenarios == ("LDET", "MDET", "HDET")
        assert cfg.topology == "bus"
        assert cfg.policy == "EDF"

    def test_n_trials(self):
        cfg = self.base(
            n_graphs=4, system_sizes=(2, 4), scenarios=("MDET",)
        )
        assert cfg.n_trials == 1 * 2 * 2 * 4

    def test_scaled(self):
        assert self.base().scaled(8).n_graphs == 8

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            self.base(methods=(spec(label="A"), spec(label="A")))

    def test_no_methods_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(methods=())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(scenarios=("XDET",))

    def test_bad_sizes_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(system_sizes=())
        with pytest.raises(ExperimentError):
            self.base(system_sizes=(0, 2))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(topology="hypercube")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(policy="SJF")

    def test_bad_n_graphs(self):
        with pytest.raises(ExperimentError):
            self.base(n_graphs=0)

    def test_validation_messages_name_the_field(self):
        """Eager validation points at the offending field and value."""
        with pytest.raises(ExperimentError, match="methods"):
            self.base(methods=())
        with pytest.raises(ExperimentError, match=r"n_graphs.*-3"):
            self.base(n_graphs=-3)
        with pytest.raises(ExperimentError, match="system_sizes"):
            self.base(system_sizes=())
        with pytest.raises(ExperimentError, match=r"system_sizes.*\(0, 2\)"):
            self.base(system_sizes=(0, 2))

    def test_trial_timeout_validation(self):
        assert self.base(trial_timeout=None).trial_timeout is None
        assert self.base(trial_timeout=1.5).trial_timeout == 1.5
        for bad in (0, -1.0, float("nan")):
            with pytest.raises(ExperimentError, match="trial_timeout"):
                self.base(trial_timeout=bad)

    def test_max_retries_validation(self):
        assert self.base(max_retries=0).max_retries == 0
        with pytest.raises(ExperimentError, match="max_retries"):
            self.base(max_retries=-1)
