"""Property-based tests for the extension modules.

Covers the invariants of the baselines, the run-time simulator, the
sensitivity analysis and the graph transformations on arbitrary workloads.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.baselines import BASELINES, make_baseline
from repro.core.sensitivity import per_subtask_margins, window_scaling_factor
from repro.core.slicer import bst
from repro.graph.transform import merge_chains, relabel, scale_workload
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler
from repro.sched.simulator import (
    JitterModel,
    allocation_of,
    simulate_dynamic,
    simulate_fixed,
)
from tests.strategies import default_settings, workloads

SETTINGS = default_settings(max_examples=20)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
@SETTINGS
@given(graph=workloads(), name=st.sampled_from(sorted(BASELINES)))
def test_baseline_deadline_consistency(graph, name):
    assignment = make_baseline(name).distribute(graph)
    for src, dst in graph.edges():
        assert (
            assignment.absolute_deadline(src)
            <= assignment.absolute_deadline(dst) - graph.node(dst).wcet + 1e-6
        )
    # Every output respects its end-to-end anchor.
    for node_id in graph.output_subtasks():
        anchor = graph.node(node_id).end_to_end_deadline
        assert assignment.absolute_deadline(node_id) <= anchor + 1e-6


@SETTINGS
@given(graph=workloads(), name=st.sampled_from(sorted(BASELINES)))
def test_baseline_supports_full_pipeline(graph, name):
    assignment = make_baseline(name).distribute(graph)
    schedule = ListScheduler(System(3)).schedule(graph, assignment)
    schedule.validate()


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
@SETTINGS
@given(
    graph=workloads(),
    low=st.sampled_from([0.3, 0.6, 1.0]),
    n_processors=st.integers(1, 5),
)
def test_dynamic_trace_consistent_under_jitter(graph, low, n_processors):
    assignment = bst("PURE", "CCNE").distribute(graph)
    trace = simulate_dynamic(
        graph, assignment, System(n_processors),
        jitter=JitterModel(low=low, high=1.0, seed=1),
    )
    # validate() ran inside simulate_dynamic; check global properties.
    assert set(trace.completions) == set(graph.node_ids())
    for src, dst in graph.edges():
        assert trace.completions[src] <= trace.completions[dst] + 1e-6


@SETTINGS
@given(graph=workloads(), preemptive=st.booleans())
def test_fixed_replay_consistent(graph, preemptive):
    assignment = bst("PURE", "CCNE").distribute(graph)
    static = ListScheduler(System(3)).schedule(graph, assignment)
    trace = simulate_fixed(
        graph, assignment, System(3), allocation_of(static),
        preemptive=preemptive,
    )
    assert trace.placements == allocation_of(static)
    if not preemptive:
        assert trace.preemptions == 0
        # Non-preemptive worst-case replay of the static placement can
        # reorder within a processor but executes the same work.
        total_static = sum(
            t.finish - t.start for t in static.tasks.values()
        )
        total_trace = sum(s.duration for s in trace.segments)
        assert abs(total_static - total_trace) < 1e-6


# ----------------------------------------------------------------------
# Sensitivity
# ----------------------------------------------------------------------
@SETTINGS
@given(graph=workloads())
def test_window_scaling_factor_is_the_min_margin(graph):
    assignment = bst("PURE", "CCNE").distribute(graph)
    margins = per_subtask_margins(assignment)
    factor = window_scaling_factor(assignment)
    assert factor <= min(m.growth_factor for m in margins) + 1e-9
    # Scaling at the factor keeps every window non-degenerate.
    for margin in margins:
        assert margin.cost * factor <= margin.relative_deadline + 1e-6


# ----------------------------------------------------------------------
# Transformations
# ----------------------------------------------------------------------
@SETTINGS
@given(graph=workloads())
def test_merge_chains_preserves_workload_and_criticality(graph):
    from repro.graph import paths

    merged = merge_chains(graph)
    assert merged.total_workload() <= graph.total_workload() + 1e-6
    assert merged.total_workload() >= graph.total_workload() - 1e-6
    assert paths.longest_path_length(merged) <= (
        paths.longest_path_length(graph) + 1e-6
    )
    assert merged.n_subtasks <= graph.n_subtasks
    merged.validate()


@SETTINGS
@given(graph=workloads(), factor=st.sampled_from([0.5, 1.0, 2.0]))
def test_scale_workload_scales_linearly(graph, factor):
    scaled = scale_workload(graph, factor)
    assert scaled.total_workload() == (
        graph.total_workload() * factor
    ) or abs(
        scaled.total_workload() - graph.total_workload() * factor
    ) < 1e-6
    assert abs(
        scaled.total_message_volume() - graph.total_message_volume() * factor
    ) < 1e-6


@SETTINGS
@given(graph=workloads())
def test_relabel_is_structure_preserving(graph):
    out = relabel(graph, prefix="p:")
    assert out.n_subtasks == graph.n_subtasks
    assert out.n_edges == graph.n_edges
    for src, dst in graph.edges():
        assert out.has_edge(f"p:{src}", f"p:{dst}")
    out.validate()
