"""Graph transformations: merging, extraction, scaling, relabeling."""

import pytest

from repro.core.slicer import bst
from repro.errors import ValidationError
from repro.graph import paths
from repro.graph.taskgraph import TaskGraph
from repro.graph.transform import (
    critical_path_subgraph,
    extract_subgraph,
    merge_chains,
    relabel,
    scale_workload,
)


def chain_with_branch():
    r"""a -> b -> c -> d with a side branch a -> e -> d."""
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=20.0)
    g.add_subtask("c", wcet=30.0)
    g.add_subtask("d", wcet=10.0, end_to_end_deadline=300.0)
    g.add_subtask("e", wcet=5.0)
    g.add_edge("a", "b", message_size=2.0)
    g.add_edge("b", "c", message_size=3.0)
    g.add_edge("c", "d", message_size=4.0)
    g.add_edge("a", "e", message_size=1.0)
    g.add_edge("e", "d", message_size=1.0)
    return g


class TestMergeChains:
    def test_merges_linear_run(self):
        g = chain_with_branch()
        merged = merge_chains(g)
        # b -> c is the only interior chain (a forks, d joins).
        assert "b+c" in merged
        assert merged.node("b+c").wcet == 50.0
        assert merged.n_subtasks == 4
        assert merged.has_edge("a", "b+c")
        assert merged.has_edge("b+c", "d")
        merged.validate()

    def test_pure_chain_collapses_to_one(self):
        g = TaskGraph()
        prev = None
        for i in range(5):
            g.add_subtask(f"n{i}", wcet=1.0,
                          release=0.0 if i == 0 else None,
                          end_to_end_deadline=50.0 if i == 4 else None)
            if prev:
                g.add_edge(prev, f"n{i}")
            prev = f"n{i}"
        merged = merge_chains(g)
        assert merged.n_subtasks == 1
        only = merged.nodes()[0]
        assert only.wcet == 5.0
        assert only.release == 0.0
        assert only.end_to_end_deadline == 50.0

    def test_pins_block_merging(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0, pinned_to=0)
        g.add_subtask("b", wcet=1.0, end_to_end_deadline=10.0, pinned_to=1)
        g.add_edge("a", "b")
        merged = merge_chains(g)
        assert merged.n_subtasks == 2

    def test_matching_pins_merge(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0, pinned_to=2)
        g.add_subtask("b", wcet=1.0, end_to_end_deadline=10.0, pinned_to=2)
        g.add_edge("a", "b")
        merged = merge_chains(g)
        assert merged.n_subtasks == 1
        assert merged.nodes()[0].pinned_to == 2

    def test_total_workload_preserved(self, random_graph):
        merged = merge_chains(random_graph)
        assert merged.total_workload() == pytest.approx(
            random_graph.total_workload()
        )
        assert paths.longest_path_length(merged) == pytest.approx(
            paths.longest_path_length(random_graph)
        )


class TestExtractSubgraph:
    def test_anchors_synthesized_from_assignment(self):
        g = chain_with_branch()
        assignment = bst("PURE", "CCNE").distribute(g)
        sub = extract_subgraph(g, ["b", "c"], assignment=assignment)
        sub.validate()
        assert sub.node("b").release == pytest.approx(assignment.release("b"))
        assert sub.node("c").end_to_end_deadline == pytest.approx(
            assignment.absolute_deadline("c")
        )
        assert sub.has_edge("b", "c")
        assert sub.n_edges == 1

    def test_unknown_node_rejected(self):
        with pytest.raises(ValidationError):
            extract_subgraph(chain_with_branch(), ["zzz"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            extract_subgraph(chain_with_branch(), [])

    def test_critical_path_subgraph(self):
        g = chain_with_branch()
        assignment = bst("PURE", "CCNE").distribute(g)
        sub = critical_path_subgraph(g, assignment=assignment)
        assert sub.node_ids() == ["a", "b", "c", "d"]
        assert sub.n_edges == 3
        sub.validate()


class TestScaleWorkload:
    def test_scales_both(self):
        g = chain_with_branch()
        scaled = scale_workload(g, 2.0)
        assert scaled.node("b").wcet == 40.0
        assert scaled.message("a", "b").size == 4.0
        # Anchors untouched.
        assert scaled.node("d").end_to_end_deadline == 300.0

    def test_independent_message_factor(self):
        g = chain_with_branch()
        scaled = scale_workload(g, 2.0, message_factor=0.0)
        assert scaled.node("b").wcet == 40.0
        assert scaled.total_message_volume() == 0.0

    def test_bad_factors(self):
        with pytest.raises(ValidationError):
            scale_workload(chain_with_branch(), 0.0)
        with pytest.raises(ValidationError):
            scale_workload(chain_with_branch(), 1.0, message_factor=-1.0)


class TestRelabel:
    def test_prefix(self):
        g = chain_with_branch()
        out = relabel(g, prefix="app1:")
        assert "app1:a" in out
        assert out.has_edge("app1:a", "app1:b")
        assert out.node("app1:a").release == 0.0

    def test_explicit_mapping_partial(self):
        g = chain_with_branch()
        out = relabel(g, mapping={"a": "start"})
        assert "start" in out and "b" in out
        assert out.has_edge("start", "b")

    def test_non_injective_rejected(self):
        g = chain_with_branch()
        with pytest.raises(ValidationError):
            relabel(g, mapping={"a": "x", "b": "x"})
