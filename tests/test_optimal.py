"""The branch-and-bound optimal scheduler."""

import itertools
import random

import pytest

from repro.core.slicer import bst
from repro.errors import SchedulingError
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.list_scheduler import ListScheduler
from repro.sched.optimal import BranchAndBoundScheduler


def assign(graph):
    return bst("PURE", "CCNE").distribute(graph)


def small_graph(seed):
    config = RandomGraphConfig(
        n_subtasks_range=(7, 9), depth_range=(3, 4),
    )
    return generate_task_graph(config, rng=random.Random(seed))


class TestExactness:
    def test_single_task(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=30.0)
        result = BranchAndBoundScheduler(System(2)).schedule(g, assign(g))
        assert result.proven_optimal
        assert result.max_lateness == pytest.approx(-20.0)

    def test_two_independent_tasks_use_two_processors(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
        g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0)
        result = BranchAndBoundScheduler(System(2)).schedule(g, assign(g))
        assert result.schedule.makespan() == 10.0

    def test_beats_or_matches_a_misled_list_scheduler(self):
        """EDF list scheduling is myopic; B&B must never be worse."""
        for seed in range(5):
            g = small_graph(seed)
            a = assign(g)
            system = System(3, interconnect=IdealNetwork(3))
            heuristic = ListScheduler(system).schedule(g, a)
            heuristic_lateness = max(
                heuristic.finish_time(n) - a.absolute_deadline(n)
                for n in g.node_ids()
            )
            result = BranchAndBoundScheduler(System(3)).schedule(g, a)
            assert result.proven_optimal
            assert result.max_lateness <= heuristic_lateness + 1e-6

    def test_matches_brute_force_on_tiny_graphs(self):
        """Exhaustive cross-check: all placements x all list orders."""
        g = TaskGraph()
        g.add_subtask("a", wcet=4.0, release=0.0)
        g.add_subtask("b", wcet=6.0, release=0.0)
        g.add_subtask("c", wcet=3.0, end_to_end_deadline=20.0)
        g.add_subtask("d", wcet=5.0, end_to_end_deadline=20.0)
        g.add_edge("a", "c", message_size=2.0)
        g.add_edge("b", "d", message_size=2.0)
        a = assign(g)
        n_proc = 2
        hop = 1.0  # cost_per_item

        def simulate(order, placement):
            finish = {}
            avail = [0.0] * n_proc
            for node in order:
                start = avail[placement[node]]
                for pred in g.predecessors(node):
                    arr = finish[pred]
                    if placement[pred] != placement[node]:
                        arr += g.message(pred, node).size * hop
                    start = max(start, arr)
                finish[node] = start + g.node(node).wcet
                avail[placement[node]] = finish[node]
            return max(finish[n] - a.absolute_deadline(n) for n in finish)

        nodes = g.node_ids()
        orders = [
            order for order in itertools.permutations(nodes)
            if order.index("a") < order.index("c")
            and order.index("b") < order.index("d")
        ]
        best = min(
            simulate(order, dict(zip(nodes, procs)))
            for order in orders
            for procs in itertools.product(range(n_proc), repeat=len(nodes))
        )
        result = BranchAndBoundScheduler(System(n_proc)).schedule(g, a)
        assert result.max_lateness == pytest.approx(best)

    def test_respects_pins(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        result = BranchAndBoundScheduler(System(4)).schedule(g, assign(g))
        assert result.schedule.makespan() == 20.0
        assert result.schedule.processor_of("a") == 1


class TestGuards:
    def test_size_limit(self):
        g = generate_task_graph(
            RandomGraphConfig(n_subtasks_range=(40, 40)),
            rng=random.Random(0),
        )
        with pytest.raises(SchedulingError, match="exponential"):
            BranchAndBoundScheduler(System(2)).schedule(g, assign(g))

    def test_node_budget_reported(self):
        g = small_graph(1)
        result = BranchAndBoundScheduler(
            System(3), node_limit=0
        ).schedule(g, assign(g))
        # Budget exhausted immediately: falls back to the list-scheduler
        # incumbent and flags the result as unproven.
        assert not result.proven_optimal
        assert result.nodes_explored >= 1
        result.schedule.validate()

    def test_bus_system_rebuilt_as_ideal(self):
        bnb = BranchAndBoundScheduler(System(4))
        assert isinstance(bnb.system.interconnect, IdealNetwork)

    def test_result_schedule_is_consistent(self):
        g = small_graph(2)
        result = BranchAndBoundScheduler(System(2)).schedule(g, assign(g))
        result.schedule.validate()
        assert result.nodes_explored > 0


class TestTimeBudgets:
    def test_negative_time_limit_rejected(self):
        with pytest.raises(SchedulingError, match="time_limit"):
            BranchAndBoundScheduler(System(2), time_limit=-1.0)

    def test_zero_time_limit_falls_back_to_incumbent(self):
        g = small_graph(3)
        result = BranchAndBoundScheduler(
            System(3), time_limit=0.0
        ).schedule(g, assign(g))
        assert result.timed_out
        assert not result.proven_optimal
        result.schedule.validate()
        # The incumbent is the list scheduler's schedule.
        a = assign(g)
        heuristic = ListScheduler(
            System(3, interconnect=IdealNetwork(3))
        ).schedule(g, a)
        assert result.max_lateness == pytest.approx(max(
            heuristic.finish_time(n) - a.absolute_deadline(n)
            for n in g.node_ids()
        ))

    def test_ambient_trial_budget_interrupts_search(self):
        from repro import budget

        g = small_graph(4)
        with budget.trial_deadline(0.0):
            result = BranchAndBoundScheduler(System(3)).schedule(g, assign(g))
        assert result.timed_out and not result.proven_optimal
        result.schedule.validate()

    def test_generous_limit_still_proves_optimality(self):
        g = small_graph(5)
        result = BranchAndBoundScheduler(
            System(2), time_limit=60.0
        ).schedule(g, assign(g))
        assert result.proven_optimal and not result.timed_out

    def test_node_budget_alone_does_not_claim_timeout(self):
        g = small_graph(1)
        result = BranchAndBoundScheduler(
            System(3), node_limit=0
        ).schedule(g, assign(g))
        assert not result.proven_optimal
        assert not result.timed_out
