"""The realistic workload benchmark set."""

import random

import pytest

from repro.core.slicer import ast, bst
from repro.errors import GeneratorError
from repro.graph import paths
from repro.graph.workloads import (
    WORKLOADS,
    automotive_control,
    make_workload,
    radar_pipeline,
    video_encoder,
)
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler


class TestAutomotive:
    def test_structure(self):
        g = automotive_control(n_sensors=4, n_actuators=3)
        # Inputs are the acquisitions; outputs are actuators + log.
        assert sorted(g.input_subtasks()) == [f"acq{i}" for i in range(4)]
        assert sorted(g.output_subtasks()) == ["act0", "act1", "act2", "log"]
        assert "fusion" in g and "control" in g

    def test_io_pinned_round_robin(self):
        g = automotive_control(n_sensors=4, pin_io=True, io_processors=2)
        assert g.node("acq0").pinned_to == 0
        assert g.node("acq1").pinned_to == 1
        assert g.node("acq2").pinned_to == 0
        assert g.node("fusion").pinned_to is None  # interior stays relaxed

    def test_unpinned_variant(self):
        g = automotive_control(pin_io=False)
        assert g.pinned_subtasks() == []

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            automotive_control(n_sensors=0)
        with pytest.raises(GeneratorError):
            automotive_control(laxity_ratio=0.0)


class TestRadar:
    def test_corner_turn_is_all_to_all(self):
        g = radar_pipeline(n_channels=3, n_doppler_banks=2)
        for i in range(3):
            for b in range(2):
                assert g.has_edge(f"pc{i}", f"dop{b}")

    def test_single_output(self):
        g = radar_pipeline()
        assert g.output_subtasks() == ["tracker"]

    def test_high_parallelism(self):
        g = radar_pipeline(n_channels=8, n_doppler_banks=4)
        assert paths.average_parallelism(g) > 3.0


class TestVideo:
    def test_wavefront_dependencies(self):
        g = video_encoder(n_rows=3, stages_per_row=2)
        assert g.has_edge("r0s0", "r1s0")  # row-to-row
        assert g.has_edge("r1s0", "r1s1")  # within-row
        assert g.has_edge("r0s1", "r1s1")
        assert g.output_subtasks() == ["entropy"]

    def test_wavefront_bounds_parallelism(self):
        narrow = video_encoder(n_rows=2, stages_per_row=6)
        wide = video_encoder(n_rows=8, stages_per_row=2)
        assert paths.average_parallelism(wide) > paths.average_parallelism(
            narrow
        )


class TestCommonContract:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_validated_and_anchored(self, name):
        g = make_workload(name, rng=random.Random(7))
        g.validate()
        deadline = 1.5 * g.total_workload()
        for node_id in g.output_subtasks():
            assert g.node(node_id).end_to_end_deadline == pytest.approx(
                deadline
            )

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_full_pipeline(self, name):
        g = make_workload(name, rng=random.Random(3))
        for distributor, kwargs in (
            (bst("PURE", "CCNE"), {}),
            (ast("ADAPT"), {"n_processors": 4}),
        ):
            assignment = distributor.distribute(g, **kwargs)
            schedule = ListScheduler(System(4)).schedule(g, assignment)
            schedule.validate()

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_per_seed(self, name):
        a = make_workload(name, rng=random.Random(5))
        b = make_workload(name, rng=random.Random(5))
        assert a.edges() == b.edges()
        assert [s.wcet for s in a.nodes()] == [s.wcet for s in b.nodes()]

    def test_unknown_workload(self):
        with pytest.raises(GeneratorError):
            make_workload("crypto-miner")
