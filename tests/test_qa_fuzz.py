"""The deterministic fuzzer: sampling, shrinking, reproducers, CLI."""

import json

import pytest

from repro.cli import main
from repro.graph.serialization import graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.qa import (
    CheckResult,
    FuzzConfig,
    FuzzFailure,
    QAReport,
    replay_reproducer,
    run_fuzz,
    scenario_from_dict,
    shrink_graph,
)
from repro.qa.fuzz import _build_graph, _draw_scenario


def _fan_graph(n_leaves=4):
    g = TaskGraph(name="fan")
    g.add_subtask("root", wcet=1.0, release=0.0)
    for i in range(n_leaves):
        g.add_subtask(f"leaf{i}", wcet=2.0, end_to_end_deadline=50.0)
        g.add_edge("root", f"leaf{i}", message_size=3.0)
    return g


class TestScenarioSampling:
    def test_draw_is_deterministic(self):
        assert _draw_scenario(5, 17) == _draw_scenario(5, 17)
        assert _draw_scenario(5, 17) != _draw_scenario(5, 18)
        assert _draw_scenario(5, 17) != _draw_scenario(6, 17)

    def test_scenarios_are_json_serializable(self):
        for trial in range(20):
            scenario = _draw_scenario(0, trial)
            assert json.loads(json.dumps(scenario)) == scenario

    def test_graph_rebuild_is_deterministic(self):
        scenario = _draw_scenario(1, 2)
        a = _build_graph(scenario)
        b = _build_graph(scenario)
        assert graph_to_dict(a) == graph_to_dict(b)

    def test_scenario_from_dict_roundtrip(self):
        scenario = _draw_scenario(4, 9)
        graph, system, metric, estimator = scenario_from_dict(scenario)
        assert graph_to_dict(graph) == graph_to_dict(_build_graph(scenario))
        assert system.n_processors == scenario["n_processors"]
        assert metric == scenario["metric"]
        assert estimator == scenario["estimator"]

    def test_scenario_from_dict_prefers_embedded_graph(self):
        scenario = _draw_scenario(4, 9)
        embedded = _fan_graph()
        data = {"scenario": scenario, "graph": graph_to_dict(embedded)}
        graph, _, _, _ = scenario_from_dict(data)
        assert graph_to_dict(graph) == graph_to_dict(embedded)


class TestShrinking:
    def test_shrinks_to_minimal_witness(self):
        # Predicate: the graph still contains leaf2. The minimum is the
        # single-node graph {leaf2} (root is droppable: leaf2 then
        # becomes an input and gets re-anchored).
        shrunk = shrink_graph(
            _fan_graph(), lambda g: "leaf2" in g
        )
        assert shrunk.node_ids() == ["leaf2"]
        shrunk.validate()  # still a well-anchored graph

    def test_reanchors_new_inputs_and_outputs(self):
        g = TaskGraph(name="chain")
        g.add_subtask("a", wcet=1.0, release=0.0)
        g.add_subtask("b", wcet=2.0)
        g.add_subtask("c", wcet=3.0, end_to_end_deadline=30.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        shrunk = shrink_graph(g, lambda graph: "b" in graph)
        assert shrunk.node_ids() == ["b"]
        assert shrunk.node("b").release == 0.0
        assert shrunk.node("b").end_to_end_deadline == 30.0

    def test_rounds_weights(self):
        g = TaskGraph(name="w")
        g.add_subtask("a", wcet=3.7182, release=0.0)
        g.add_subtask("b", wcet=2.1415, end_to_end_deadline=25.5)
        g.add_edge("a", "b", message_size=4.333)
        shrunk = shrink_graph(g, lambda graph: graph.has_edge("a", "b"))
        assert shrunk.node("a").wcet == 4.0
        assert shrunk.node("b").wcet == 2.0
        assert shrunk.message("a", "b").size == 4.0

    def test_never_returns_invalid_graph(self):
        # A predicate that accepts anything must still only ever see
        # (and return) validly anchored graphs.
        seen = []

        def predicate(graph):
            graph.validate()
            seen.append(graph.n_subtasks)
            return True

        shrunk = shrink_graph(_fan_graph(), predicate)
        assert shrunk.n_subtasks == 1
        assert seen  # candidates were actually exercised

    def test_respects_step_budget(self):
        calls = []

        def predicate(graph):
            calls.append(1)
            return False

        shrink_graph(_fan_graph(), predicate, max_steps=3)
        assert len(calls) <= 3


class TestRunFuzz:
    def test_clean_campaign_is_deterministic(self):
        config = FuzzConfig(seed=0, trials=8)
        first = run_fuzz(config)
        second = run_fuzz(config)
        assert first.trials_run == second.trials_run == 8
        assert first.ok and second.ok
        assert "PASS" in first.summary()

    def test_time_budget_stops_early(self):
        result = run_fuzz(FuzzConfig(seed=0, trials=50, time_budget=0.0))
        assert result.trials_run == 0

    def test_progress_callback_sees_every_trial(self):
        trials = []
        run_fuzz(
            FuzzConfig(seed=0, trials=5),
            progress=lambda trial, failure: trials.append((trial, failure)),
        )
        assert [t for t, _ in trials] == list(range(5))
        assert all(f is None for _, f in trials)


class TestReproducers:
    def _failure(self):
        scenario = _draw_scenario(0, 0)
        report = QAReport(
            graph_name="fan", metric="PURE", estimator="CCNE",
            n_processors=2, n_subtasks=5,
        )
        report.checks.append(CheckResult("schedule.replay", False, "boom"))
        return FuzzFailure(
            trial=0, scenario=scenario, report=report,
            shrunk_graph=_fan_graph(), shrunk_report=report,
        )

    def test_to_dict_is_standalone(self):
        data = self._failure().to_dict()
        assert data["format"] == "repro-qa-failure"
        assert data["failing_checks"] == ["schedule.replay"]
        graph, system, metric, estimator = scenario_from_dict(
            json.loads(json.dumps(data))
        )
        assert graph_to_dict(graph) == graph_to_dict(_fan_graph())

    def test_cli_replay_of_reproducer(self, tmp_path, capsys):
        # A reproducer for a scenario that is actually healthy replays
        # clean and exits 0.
        data = self._failure().to_dict()
        path = tmp_path / "failure.json"
        path.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "[PASS]" in capsys.readouterr().out


class TestReplayGating:
    """``--replay`` must exercise the live campaign's exact check set.

    The replay path once re-checked reproducers through
    ``check_pipeline``'s defaults, which silently dropped the exhaustive
    differential and widened the B&B gate — precisely on the degenerate
    (zero-edge, single-subtask) scenarios small enough to sit behind
    that gating. These pin ``replay_reproducer`` to ``_check_scenario``.
    """

    @staticmethod
    def _scenario(n_processors=2):
        scenario = dict(_draw_scenario(0, 0))
        scenario["n_processors"] = n_processors
        scenario["metric"] = "PURE"
        scenario["estimator"] = "CCNE"
        return scenario

    @staticmethod
    def _names(report):
        return [c.name for c in report.checks]

    def test_replay_matches_live_check_set(self):
        from repro.qa.fuzz import _check_scenario

        config = FuzzConfig()
        for trial in range(6):
            scenario = _draw_scenario(2, trial)
            live = _check_scenario(_build_graph(scenario), scenario, config)
            replayed = replay_reproducer(scenario, config=config)
            assert self._names(replayed) == self._names(live)
            assert replayed.ok == live.ok

    def test_single_subtask_replay_runs_exhaustive_differential(self):
        g = TaskGraph(name="solo")
        g.add_subtask("only", wcet=3.0, release=0.0,
                      end_to_end_deadline=10.0)
        data = {"scenario": self._scenario(), "graph": graph_to_dict(g)}
        report = replay_reproducer(data)
        assert "optimal.matches_exhaustive" in self._names(report)
        assert report.ok

    def test_zero_edge_replay_runs_exhaustive_differential(self):
        g = TaskGraph(name="islands")
        for i in range(3):
            g.add_subtask(f"n{i}", wcet=1.0 + i, release=0.0,
                          end_to_end_deadline=25.0)
        data = {"scenario": self._scenario(), "graph": graph_to_dict(g)}
        report = replay_reproducer(data)
        assert "optimal.matches_exhaustive" in self._names(report)
        assert report.ok

    def test_over_constrained_replay_checks_degenerate_contract(self):
        g = TaskGraph(name="collapsed")
        g.add_subtask("only", wcet=5.0, release=0.0,
                      end_to_end_deadline=2.0)
        data = {"scenario": self._scenario(), "graph": graph_to_dict(g)}
        report = replay_reproducer(data)
        assert "distribution.degenerate_contract" in self._names(report)
        assert report.ok

    def test_large_platform_gates_exhaustive_off_like_live(self):
        g = _fan_graph(n_leaves=2)
        data = {
            "scenario": self._scenario(n_processors=8),
            "graph": graph_to_dict(g),
        }
        report = replay_reproducer(data)
        assert "optimal.matches_exhaustive" not in self._names(report)

    def test_batch_config_adds_identity_check(self):
        pytest.importorskip("numpy")
        g = _fan_graph()
        data = {"scenario": self._scenario(), "graph": graph_to_dict(g)}
        report = replay_reproducer(data, config=FuzzConfig(use_batch=True))
        assert "distribution.batch_identical" in self._names(report)
        assert report.ok

    def test_cli_replay_batch_flag(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        g = TaskGraph(name="solo")
        g.add_subtask("only", wcet=3.0, release=0.0,
                      end_to_end_deadline=10.0)
        data = {"scenario": self._scenario(), "graph": graph_to_dict(g)}
        path = tmp_path / "degenerate.json"
        path.write_text(json.dumps(data))
        assert main(["fuzz", "--replay", str(path), "--batch"]) == 0
        assert "[PASS]" in capsys.readouterr().out


class TestCLI:
    def test_fuzz_command_passes(self, capsys):
        code = main(["fuzz", "--trials", "4", "--seed", "0", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS] fuzz seed=0: 4/4 trials" in out

    def test_fuzz_command_writes_nothing_on_success(self, tmp_path, capsys):
        out_dir = tmp_path / "reproducers"
        code = main([
            "fuzz", "--trials", "3", "--seed", "0",
            "--out", str(out_dir), "--quiet",
        ])
        assert code == 0
        assert not out_dir.exists() or not list(out_dir.iterdir())
