"""Differential tests: production implementations vs the qa oracles."""

import random

import pytest

from repro.core import validate_assignment
from repro.core.slicer import ast, bst
from repro.errors import SchedulingError
from repro.graph import RandomGraphConfig, generate_task_graph, graph_stats
from repro.graph import paths as graph_paths
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.qa import (
    ExhaustiveScheduler,
    oracle_average_parallelism,
    oracle_graph_depth,
    oracle_longest_path_length,
    oracle_validate_assignment,
    replay_schedule,
)
from repro.sched.analysis import max_lateness
from repro.sched.list_scheduler import ListScheduler
from repro.sched.optimal import BranchAndBoundScheduler
from repro.sched.schedule import ScheduledTask


def _corpus(count=8, **overrides):
    config = RandomGraphConfig(
        n_subtasks_range=overrides.pop("n_subtasks_range", (8, 20)),
        depth_range=overrides.pop("depth_range", (3, 5)),
        **overrides,
    )
    return [
        generate_task_graph(config, rng=random.Random(seed))
        for seed in range(count)
    ]


class TestAnalysisOracles:
    def test_longest_path_matches_indexed(self):
        for graph in _corpus():
            assert oracle_longest_path_length(graph) == pytest.approx(
                graph_paths.longest_path_length(graph)
            )
            assert oracle_longest_path_length(
                graph, include_messages=True
            ) == pytest.approx(
                graph_paths.longest_path_length(graph, include_messages=True)
            )

    def test_depth_matches_indexed(self):
        for graph in _corpus():
            assert oracle_graph_depth(graph) == graph_paths.graph_depth(graph)

    def test_parallelism_matches_stats(self):
        for graph in _corpus():
            assert oracle_average_parallelism(graph) == pytest.approx(
                graph_stats(graph).average_parallelism
            )

    def test_deep_chain_does_not_hit_recursion_limit(self):
        g = TaskGraph()
        n = 3000
        for i in range(n):
            g.add_subtask(f"c{i:04d}", wcet=1.0)
        for i in range(n - 1):
            g.add_edge(f"c{i:04d}", f"c{i + 1:04d}")
        assert oracle_longest_path_length(g) == pytest.approx(float(n))
        assert oracle_graph_depth(g) == n


class TestAssignmentOracle:
    def test_agrees_with_validator_on_feasible_assignments(self):
        for graph in _corpus(count=6):
            assignment = bst("PURE", "CCAA").distribute(graph)
            if assignment.degenerate_windows():
                continue
            report = validate_assignment(assignment, check_paths=True)
            assert report.ok
            assert oracle_validate_assignment(assignment) == []

    def test_flags_tampered_window(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        w = assignment.windows["b"]
        # Slide b's window past c's release: a precedence violation.
        assignment.windows["b"] = type(w)(
            release=w.release,
            absolute_deadline=w.absolute_deadline + 500.0,
            cost=w.cost,
        )
        violations = oracle_validate_assignment(assignment)
        assert any("consumer releases before" in v for v in violations)
        # Path sums blew past the end-to-end budget too.
        assert any("budget" in v for v in violations)

    def test_flags_missing_window(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        del assignment.windows["b"]
        violations = oracle_validate_assignment(assignment)
        assert violations == ["missing window for 'b'"]


def _small_corpus():
    """Seeded graphs of at most 8 subtasks, with real precedence depth
    (keeps the number of linear extensions enumerable)."""
    graphs = []
    for seed in range(6):
        n_hi = 5 + seed % 3
        graphs.append(
            generate_task_graph(
                RandomGraphConfig(
                    n_subtasks_range=(4, n_hi),
                    depth_range=(3, 4),
                    communication_to_computation_ratio=(seed % 3) * 0.5,
                    overall_laxity_ratio=1.0 + 0.4 * (seed % 2),
                ),
                rng=random.Random(seed),
                name=f"small-{seed}",
            )
        )
    # Hand-built 8-subtask shapes: a chain and a double diamond.
    chain = TaskGraph(name="chain-8")
    for i in range(8):
        chain.add_subtask(f"c{i}", wcet=float(i + 1))
    for i in range(7):
        chain.add_edge(f"c{i}", f"c{i + 1}", message_size=2.0)
    chain.node("c0").release = 0.0
    chain.node("c7").end_to_end_deadline = 40.0
    graphs.append(chain)

    dd = TaskGraph(name="double-diamond-8")
    for nid, w in [("a", 2.0), ("b", 3.0), ("c", 5.0), ("d", 1.0),
                   ("e", 4.0), ("f", 2.0), ("g", 3.0), ("h", 1.0)]:
        dd.add_subtask(nid, wcet=w)
    for src, dst in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
                     ("d", "e"), ("d", "f"), ("e", "g"), ("f", "g"),
                     ("g", "h")]:
        dd.add_edge(src, dst, message_size=1.5)
    dd.node("a").release = 0.0
    dd.node("h").end_to_end_deadline = 30.0
    graphs.append(dd)
    return graphs


class TestExhaustiveScheduler:
    def test_agrees_with_branch_and_bound(self):
        """Acceptance criterion: on a seeded corpus of <=8-subtask graphs
        the exhaustive enumeration and the pruned search agree on the
        optimal max lateness, and the replay checker accepts every
        emitted schedule."""
        metrics = ["PURE", "NORM", "THRES", "ADAPT"]
        system = System(2, interconnect=IdealNetwork(2))
        checked = 0
        for i, graph in enumerate(_small_corpus()):
            metric = metrics[i % len(metrics)]
            distributor = (
                ast(metric) if metric in ("THRES", "ADAPT") else
                bst(metric, "CCNE")
            )
            assignment = distributor.distribute(graph, n_processors=2)

            listed = ListScheduler(system).schedule(graph, assignment)
            assert replay_schedule(listed, assignment).ok

            bnb = BranchAndBoundScheduler(system).schedule(graph, assignment)
            assert replay_schedule(bnb.schedule, assignment).ok
            if not bnb.proven_optimal:
                continue
            exhaustive = ExhaustiveScheduler(system).min_max_lateness(
                graph, assignment
            )
            assert exhaustive.n_complete_schedules > 0
            assert bnb.max_lateness == pytest.approx(
                exhaustive.max_lateness, abs=1e-6
            ), graph.name
            checked += 1
        assert checked >= 6  # the corpus must actually exercise the oracle

    def test_rebuilds_contended_system_as_ideal(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        contended = ExhaustiveScheduler(System(2))  # default bus
        ideal = ExhaustiveScheduler(System(2, interconnect=IdealNetwork(2)))
        assert contended.min_max_lateness(
            chain_graph, assignment
        ).max_lateness == pytest.approx(
            ideal.min_max_lateness(chain_graph, assignment).max_lateness
        )

    def test_honours_pins(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=5.0, release=0.0,
                      end_to_end_deadline=20.0, pinned_to=1)
        g.add_subtask("b", wcet=5.0, release=0.0,
                      end_to_end_deadline=20.0, pinned_to=1)
        g.add_subtask("c", wcet=5.0, release=0.0, end_to_end_deadline=20.0)
        assignment = bst("PURE", "CCNE").distribute(g)
        result = ExhaustiveScheduler(
            System(2, interconnect=IdealNetwork(2))
        ).min_max_lateness(g, assignment)
        # a and b serialize on processor 1; c runs alone: lateness 10-20.
        assert result.max_lateness == pytest.approx(-10.0)

    def test_refuses_oversized_graphs(self):
        g = TaskGraph()
        for i in range(9):
            g.add_subtask(f"n{i}", wcet=1.0, release=0.0,
                          end_to_end_deadline=100.0)
        assignment = bst("PURE", "CCNE").distribute(g)
        with pytest.raises(SchedulingError, match="limited to 8"):
            ExhaustiveScheduler(System(2)).min_max_lateness(g, assignment)


class TestReplayChecker:
    def _schedule(self, graph, n_processors=2):
        assignment = bst("PURE", "CCAA").distribute(graph)
        system = System(n_processors)
        return assignment, ListScheduler(system).schedule(graph, assignment)

    def test_accepts_scheduler_output(self, diamond_graph):
        assignment, schedule = self._schedule(diamond_graph)
        report = replay_schedule(schedule, assignment)
        assert report.ok, report.violations
        assert report.max_lateness == pytest.approx(
            max_lateness(schedule, assignment)
        )

    def test_detects_processor_overlap(self, diamond_graph):
        _, schedule = self._schedule(diamond_graph, n_processors=1)
        victim = max(schedule.tasks.values(), key=lambda t: t.start)
        schedule.tasks[victim.node_id] = ScheduledTask(
            node_id=victim.node_id,
            processor=victim.processor,
            start=0.0,
            finish=victim.duration,
        )
        report = replay_schedule(schedule)
        assert any("overlap on processor" in v for v in report.violations)

    def test_detects_precedence_break(self, chain_graph):
        _, schedule = self._schedule(chain_graph, n_processors=1)
        last = schedule.tasks["c"]
        schedule.tasks["c"] = ScheduledTask(
            node_id="c", processor=last.processor,
            start=0.0, finish=last.duration,
        )
        report = replay_schedule(schedule)
        assert any(
            "starts before its input" in v for v in report.violations
        )

    def test_detects_corrupted_hop_duration(self):
        g = TaskGraph()  # pins force a real cross-processor transfer
        g.add_subtask("a", wcet=4.0, release=0.0, pinned_to=0)
        g.add_subtask("b", wcet=4.0, end_to_end_deadline=50.0, pinned_to=1)
        g.add_edge("a", "b", message_size=6.0)
        _, schedule = self._schedule(g, n_processors=2)
        crossing = [e for e, m in schedule.messages.items() if m.hops]
        assert crossing
        edge = crossing[0]
        message = schedule.messages[edge]
        hop = message.hops[0]
        schedule.messages[edge] = type(message)(
            src=message.src, dst=message.dst,
            src_processor=message.src_processor,
            dst_processor=message.dst_processor,
            size=message.size,
            hops=(type(hop)(hop.link, hop.start, hop.finish + 7.0),)
            + message.hops[1:],
        )
        report = replay_schedule(schedule)
        assert any("cost model says" in v for v in report.violations)

    def test_detects_pin_violation(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=5.0, release=0.0,
                      end_to_end_deadline=20.0, pinned_to=0)
        assignment = bst("PURE", "CCNE").distribute(g)
        schedule = ListScheduler(System(2)).schedule(g, assignment)
        schedule.tasks["a"] = ScheduledTask(
            node_id="a", processor=1, start=0.0, finish=5.0
        )
        report = replay_schedule(schedule)
        assert any("violates its pin" in v for v in report.violations)

    def test_detects_missing_subtask(self, chain_graph):
        _, schedule = self._schedule(chain_graph)
        del schedule.tasks["b"]
        report = replay_schedule(schedule)
        assert report.violations == ["subtask 'b' never scheduled"]
