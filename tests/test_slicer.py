"""The slicing algorithm: windows, anchors, clamping, constructors."""

import pytest

from repro.core.commcost import CCAA, CCNE
from repro.core.metrics import PureLaxityRatio
from repro.core.slicer import DeadlineDistributor, ast, bst
from repro.core.validation import validate_assignment
from repro.errors import DistributionError, ValidationError


class TestChainSlicing:
    def test_pure_equal_share(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        # One path: a(10) b(20) c(10), D=100, slack 60 -> 20 each.
        assert assignment.window("a").release == 0.0
        assert assignment.window("a").absolute_deadline == pytest.approx(30.0)
        assert assignment.window("b").release == pytest.approx(30.0)
        assert assignment.window("b").absolute_deadline == pytest.approx(70.0)
        assert assignment.window("c").absolute_deadline == pytest.approx(100.0)
        assert assignment.n_slices() == 1

    def test_norm_proportional_share(self, chain_graph):
        assignment = bst("NORM", "CCNE").distribute(chain_graph)
        # R = (100-40)/40 = 1.5 -> d_i = 2.5 c_i.
        assert assignment.window("a").relative_deadline == pytest.approx(25.0)
        assert assignment.window("b").relative_deadline == pytest.approx(50.0)
        assert assignment.window("c").relative_deadline == pytest.approx(25.0)

    def test_ccaa_assigns_message_windows(self, chain_graph):
        assignment = bst("PURE", "CCAA").distribute(chain_graph)
        # Path includes 2 comm subtasks of cost 5: n=5, C=50, R=10.
        w = assignment.message_window("a", "b")
        assert w is not None
        assert w.cost == 5.0
        assert w.relative_deadline == pytest.approx(15.0)
        # Windows telescope: a then chi(a->b) then b ...
        assert w.release == pytest.approx(
            assignment.window("a").absolute_deadline
        )
        assert assignment.window("b").release == pytest.approx(
            w.absolute_deadline
        )

    def test_ccne_assigns_no_message_windows(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        assert assignment.message_window("a", "b") is None
        assert assignment.message_windows == {}

    def test_laxity(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        assert assignment.laxity("a") == pytest.approx(20.0)
        assert assignment.min_laxity() == pytest.approx(20.0)
        assert assignment.degenerate_windows() == []


class TestDiamondSlicing:
    def test_second_path_attaches_to_spine(self, diamond_graph):
        assignment = bst("PURE", "CCNE").distribute(diamond_graph)
        # Critical path a-b-d is sliced first; c then attaches between
        # a's deadline and d's release.
        assert assignment.n_slices() == 2
        a_dl = assignment.window("a").absolute_deadline
        d_rel = assignment.window("d").release
        assert assignment.window("c").release == pytest.approx(a_dl)
        assert assignment.window("c").absolute_deadline == pytest.approx(d_rel)

    def test_all_windows_assigned(self, diamond_graph):
        assignment = bst("PURE", "CCNE").distribute(diamond_graph)
        assert set(assignment.windows) == {"a", "b", "c", "d"}
        report = validate_assignment(assignment, check_paths=True)
        assert report.ok

    def test_slices_recorded_in_order(self, diamond_graph):
        assignment = bst("PURE", "CCNE").distribute(diamond_graph)
        assert assignment.slices[0].nodes == ("a", "b", "d")
        assert assignment.slices[1].nodes == ("c",)
        assert assignment.slices[0].ratio <= assignment.slices[1].ratio + 1e9


class TestAnchors:
    def test_nonzero_input_release(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=50.0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=100.0)
        g.add_edge("a", "b")
        assignment = bst("PURE", "CCNE").distribute(g)
        assert assignment.window("a").release == 50.0
        # Slack (100-50-20)/2 = 15 each.
        assert assignment.window("a").absolute_deadline == pytest.approx(75.0)

    def test_multiple_outputs_with_different_deadlines(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("tight", wcet=10.0, end_to_end_deadline=30.0)
        g.add_subtask("loose", wcet=10.0, end_to_end_deadline=300.0)
        g.add_edge("a", "tight")
        g.add_edge("a", "loose")
        assignment = bst("PURE", "CCNE").distribute(g)
        # The tight branch is the critical path and is sliced first.
        assert assignment.slices[0].nodes == ("a", "tight")
        assert assignment.window("tight").absolute_deadline == pytest.approx(30.0)
        assert assignment.window("loose").absolute_deadline == pytest.approx(300.0)
        report = validate_assignment(assignment, check_paths=True)
        assert report.ok

    def test_over_constrained_collapses_not_crashes(self):
        from repro.graph.taskgraph import TaskGraph

        # Deadline smaller than the chain's execution time: windows become
        # degenerate but the distribution still completes and validates
        # structurally.
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=5.0)
        g.add_edge("a", "b")
        assignment = bst("PURE", "CCNE").distribute(g)
        assert assignment.min_laxity() < 0
        assert len(assignment.degenerate_windows()) == 2


class TestConstructors:
    def test_bst_defaults(self):
        d = bst()
        assert d.metric.name == "PURE"
        assert d.estimator.name == "CCNE"

    def test_ast_defaults(self):
        d = ast()
        assert d.metric.name == "ADAPT"
        assert d.estimator.name == "CCNE"

    def test_ast_thres(self):
        d = ast("THRES", surplus=2.0)
        assert d.metric.name == "THRES"
        assert d.metric.surplus == 2.0

    def test_ast_rejects_bst_metrics(self):
        with pytest.raises(DistributionError):
            ast("PURE")

    def test_adapt_needs_n_processors(self, chain_graph):
        with pytest.raises(ValidationError, match="n_processors"):
            ast("ADAPT").distribute(chain_graph)

    def test_distributor_default_estimator_is_ccne(self):
        d = DeadlineDistributor(PureLaxityRatio())
        assert d.estimator.name == "CCNE"

    def test_distribute_requires_valid_graph(self):
        from repro.graph.taskgraph import TaskGraph

        g = TaskGraph()
        g.add_subtask("a", wcet=1.0)  # no release anchor
        with pytest.raises(ValidationError):
            bst().distribute(g)


class TestClamping:
    def test_windows_monotone_along_edges(self, random_graph):
        for builder in (
            lambda: bst("PURE", "CCNE"),
            lambda: bst("NORM", "CCAA"),
            lambda: ast("THRES"),
        ):
            assignment = builder().distribute(random_graph, n_processors=4)
            report = validate_assignment(assignment)
            assert report.ok, (builder, report.precedence_violations[:3])

    def test_clamping_can_be_disabled(self, random_graph):
        d = DeadlineDistributor(PureLaxityRatio(), clamp_to_anchors=False)
        assignment = d.distribute(random_graph)
        # Without clamping every subtask still gets a window...
        assert set(assignment.windows) == set(random_graph.node_ids())
        # ...and slices still telescope to their end-to-end budget.
        for record in assignment.slices:
            assert record.deadline >= record.release or True
