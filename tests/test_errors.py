"""The exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


def test_all_exceptions_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_cycle_error_carries_the_cycle():
    err = errors.CycleError(["a", "b", "a"])
    assert err.cycle == ["a", "b", "a"]
    assert "a -> b -> a" in str(err)


def test_graph_errors_are_graph_errors():
    assert issubclass(errors.DuplicateNodeError, errors.GraphError)
    assert issubclass(errors.UnknownNodeError, errors.GraphError)
    assert issubclass(errors.DuplicateEdgeError, errors.GraphError)
    assert issubclass(errors.CycleError, errors.GraphError)


def test_catching_base_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("boom")
    with pytest.raises(errors.ReproError):
        raise errors.DistributionError("boom")
