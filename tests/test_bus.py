"""Link timelines: slot search, reservation, probe vs commit."""

import pytest

from repro.errors import SchedulingError
from repro.machine.topology import IdealNetwork, Ring, SharedBus
from repro.sched.bus import LinkTimeline, LinkTimelines


class TestLinkTimeline:
    def test_empty_timeline_starts_at_ready(self):
        assert LinkTimeline().earliest_slot(5.0, 3.0) == 5.0

    def test_slot_after_busy_interval(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 10.0)
        assert tl.earliest_slot(0.0, 3.0) == 10.0

    def test_gap_between_reservations_used(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 5.0)
        tl.reserve(10.0, 5.0)
        assert tl.earliest_slot(0.0, 4.0) == 5.0
        assert tl.earliest_slot(0.0, 6.0) == 15.0  # gap too small

    def test_ready_inside_busy_interval(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 10.0)
        assert tl.earliest_slot(4.0, 2.0) == 10.0

    def test_ready_inside_gap(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 5.0)
        tl.reserve(20.0, 5.0)
        assert tl.earliest_slot(7.0, 3.0) == 7.0

    def test_overlapping_reserve_rejected(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 10.0)
        with pytest.raises(SchedulingError):
            tl.reserve(5.0, 3.0)

    def test_adjacent_reservations_ok(self):
        tl = LinkTimeline()
        tl.reserve(0.0, 10.0)
        tl.reserve(10.0, 5.0)  # touching is fine
        assert tl.busy_time() == 15.0

    def test_zero_duration_noop(self):
        tl = LinkTimeline()
        tl.reserve(3.0, 0.0)
        assert tl.reservations() == []
        assert tl.earliest_slot(3.0, 0.0) == 3.0


class TestLinkTimelinesOnBus:
    def test_probe_does_not_reserve(self):
        links = LinkTimelines(SharedBus(4))
        a = links.probe_transfer(0, 1, 5.0, 0.0)
        b = links.probe_transfer(0, 1, 5.0, 0.0)
        assert a == b == 5.0

    def test_commit_serializes(self):
        links = LinkTimelines(SharedBus(4))
        first = links.commit_transfer(0, 1, 5.0, 0.0)
        second = links.commit_transfer(2, 3, 5.0, 0.0)
        assert first[0].start == 0.0 and first[0].finish == 5.0
        assert second[0].start == 5.0 and second[0].finish == 10.0

    def test_same_processor_free(self):
        links = LinkTimelines(SharedBus(4))
        assert links.probe_transfer(1, 1, 99.0, 7.0) == 7.0
        assert links.commit_transfer(1, 1, 99.0, 7.0) == []

    def test_zero_size_free(self):
        links = LinkTimelines(SharedBus(4))
        assert links.commit_transfer(0, 1, 0.0, 7.0) == []

    def test_busy_time_accounting(self):
        links = LinkTimelines(SharedBus(4))
        links.commit_transfer(0, 1, 5.0, 0.0)
        links.commit_transfer(1, 2, 3.0, 0.0)
        assert links.busy_time() == {"bus": 8.0}


class TestMultiHop:
    def test_store_and_forward_on_ring(self):
        links = LinkTimelines(Ring(6))
        hops = links.commit_transfer(0, 2, 4.0, 0.0)
        assert [h.link for h in hops] == ["ring(0,1)", "ring(1,2)"]
        assert hops[0].start == 0.0 and hops[0].finish == 4.0
        assert hops[1].start == 4.0 and hops[1].finish == 8.0

    def test_gap_before_shared_hop_reservation_used(self):
        links = LinkTimelines(Ring(6))
        links.commit_transfer(0, 2, 4.0, 0.0)  # ring(0,1)@[0,4], ring(1,2)@[4,8]
        hops = links.commit_transfer(1, 2, 4.0, 0.0)
        # The direct transfer fits in the idle window before the relayed hop.
        assert hops[0].link == "ring(1,2)"
        assert hops[0].start == 0.0

    def test_second_transfer_waits_for_shared_hop(self):
        links = LinkTimelines(Ring(6))
        links.commit_transfer(0, 2, 4.0, 0.0)  # ring(1,2) busy over [4,8]
        hops = links.commit_transfer(1, 2, 4.0, 2.0)
        # Ready at 2, the remaining gap [2,4) is too small: wait until 8.
        assert hops[0].start == 8.0

    def test_probe_matches_commit_when_uncontested(self):
        links = LinkTimelines(Ring(6))
        probed = links.probe_transfer(0, 3, 2.0, 1.0)
        hops = links.commit_transfer(0, 3, 2.0, 1.0)
        assert probed == hops[-1].finish == 7.0


class TestIdeal:
    def test_no_contention(self):
        links = LinkTimelines(IdealNetwork(4))
        a = links.commit_transfer(0, 1, 5.0, 0.0)
        b = links.commit_transfer(2, 1, 5.0, 0.0)
        assert a[0].start == b[0].start == 0.0
        assert links.probe_transfer(0, 1, 5.0, 10.0) == 15.0
