"""Interior anchors: deadlines/releases on non-boundary subtasks.

Graph validation requires anchors on the boundary, but any subtask may
carry one — the canonical source being hyperperiod unrolling, where a
periodic task's own output keeps its deadline even after cross-task arcs
give it downstream consumers. The distribution layer must honour them.
"""

import pytest

from repro.core import ast, bst, validate_assignment
from repro.graph import CrossTaskArc, PeriodicTask, unroll
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched import ListScheduler, lateness_by_subtask


def interior_deadline_graph():
    """a -> b -> c where b carries its own (tight) deadline anchor."""
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=10.0, end_to_end_deadline=40.0)  # interior anchor
    g.add_subtask("c", wcet=10.0, end_to_end_deadline=200.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestDistribution:
    def test_interior_deadline_bounds_the_window(self):
        g = interior_deadline_graph()
        for distributor in (bst("PURE", "CCNE"), bst("NORM", "CCNE")):
            assignment = distributor.distribute(g)
            assert assignment.absolute_deadline("b") <= 40.0 + 1e-9
            assert validate_assignment(assignment).ok

    def test_downstream_still_gets_the_full_budget(self):
        g = interior_deadline_graph()
        assignment = bst("PURE", "CCNE").distribute(g)
        # c's slack comes from the 200 budget, not from b's tight 40.
        assert assignment.absolute_deadline("c") == pytest.approx(200.0)
        assert assignment.laxity("c") > assignment.laxity("b")

    def test_interior_release_floor(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        # b must not start before 100 (e.g. an external gating event).
        g.add_subtask("b", wcet=10.0, release=100.0)
        g.add_subtask("c", wcet=10.0, end_to_end_deadline=300.0)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assignment = bst("PURE", "CCNE").distribute(g)
        assert assignment.release("b") >= 100.0 - 1e-9

    def test_adapt_with_interior_anchor(self):
        g = interior_deadline_graph()
        assignment = ast("ADAPT").distribute(g, n_processors=2)
        assert assignment.absolute_deadline("b") <= 40.0 + 1e-9


class TestUnrolledPeriodicTasks:
    def build(self):
        t1 = TaskGraph("t1")
        t1.add_subtask("a", wcet=5.0, release=0.0, end_to_end_deadline=10.0)
        t2 = TaskGraph("t2")
        t2.add_subtask("b", wcet=3.0, release=0.0, end_to_end_deadline=20.0)
        return unroll(
            [PeriodicTask("T1", t1, 10.0), PeriodicTask("T2", t2, 20.0)],
            [CrossTaskArc("T1", "a", "T2", "b", message_size=4.0)],
        )

    def test_producer_keeps_its_own_deadline(self):
        g = self.build()
        # T1#0:a has a consumer (T2#0:b) yet keeps its own deadline 10.
        assert g.node("T1#0:a").end_to_end_deadline == 10.0
        assignment = bst("PURE", "CCNE").distribute(g)
        assert assignment.absolute_deadline("T1#0:a") <= 10.0 + 1e-9
        assert validate_assignment(assignment).ok

    def test_schedule_meets_both_tasks_deadlines(self):
        g = self.build()
        assignment = bst("PURE", "CCNE").distribute(g)
        schedule = ListScheduler(System(2)).schedule(g, assignment)
        schedule.validate()
        lateness = lateness_by_subtask(schedule, assignment)
        assert all(v <= 1e-9 for v in lateness.values()), lateness
