"""Structured graph generators: trees, fork-join, pipeline."""

import random

import pytest

from repro.errors import GeneratorError
from repro.graph import paths
from repro.graph.structured import (
    STRUCTURES,
    generate_diamond,
    generate_fork_join,
    generate_in_tree,
    generate_out_tree,
    generate_pipeline,
)


class TestOutTree:
    def test_shape(self):
        g = generate_out_tree(depth=4, branching=2, rng=random.Random(0))
        assert g.n_subtasks == 1 + 2 + 4 + 8
        assert g.n_edges == g.n_subtasks - 1  # a tree
        assert len(g.input_subtasks()) == 1
        assert len(g.output_subtasks()) == 8
        assert paths.graph_depth(g) == 4

    def test_depth_one(self):
        g = generate_out_tree(depth=1, rng=random.Random(0))
        assert g.n_subtasks == 1

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            generate_out_tree(depth=0)
        with pytest.raises(GeneratorError):
            generate_out_tree(depth=2, branching=0)


class TestInTree:
    def test_shape(self):
        g = generate_in_tree(depth=4, branching=2, rng=random.Random(0))
        assert g.n_subtasks == 8 + 4 + 2 + 1
        assert g.n_edges == g.n_subtasks - 1
        assert len(g.input_subtasks()) == 8
        assert len(g.output_subtasks()) == 1
        assert paths.graph_depth(g) == 4

    def test_is_mirror_of_out_tree(self):
        g_in = generate_in_tree(depth=3, branching=3, rng=random.Random(1))
        g_out = generate_out_tree(depth=3, branching=3, rng=random.Random(1))
        assert g_in.n_subtasks == g_out.n_subtasks

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            generate_in_tree(depth=0)


class TestForkJoin:
    def test_shape(self):
        g = generate_fork_join(stages=3, width=4, rng=random.Random(0))
        # 1 source + per stage (4 branches + 1 join)
        assert g.n_subtasks == 1 + 3 * 5
        assert len(g.input_subtasks()) == 1
        assert len(g.output_subtasks()) == 1
        assert paths.graph_depth(g) == 1 + 2 * 3

    def test_parallelism_reflects_width(self):
        wide = generate_fork_join(stages=2, width=8, rng=random.Random(0))
        narrow = generate_fork_join(stages=2, width=2, rng=random.Random(0))
        assert paths.average_parallelism(wide) > paths.average_parallelism(narrow)

    def test_diamond_is_single_stage(self):
        g = generate_diamond(width=5, rng=random.Random(0))
        assert g.n_subtasks == 1 + 5 + 1

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            generate_fork_join(stages=0, width=2)
        with pytest.raises(GeneratorError):
            generate_fork_join(stages=2, width=0)


class TestPipeline:
    def test_shape(self):
        g = generate_pipeline(10, rng=random.Random(0))
        assert g.n_subtasks == 10
        assert g.n_edges == 9
        assert paths.average_parallelism(g) == pytest.approx(1.0)

    def test_single_node(self):
        g = generate_pipeline(1, rng=random.Random(0))
        assert g.n_subtasks == 1
        assert g.input_subtasks() == g.output_subtasks()

    def test_bad_params(self):
        with pytest.raises(GeneratorError):
            generate_pipeline(0)


class TestCommonContract:
    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_all_structures_validate(self, name):
        factory = STRUCTURES[name]
        if name == "fork-join":
            g = factory(3, 3, rng=random.Random(7))
        elif name == "pipeline":
            g = factory(8, rng=random.Random(7))
        else:
            g = factory(4, 2, rng=random.Random(7))
        g.validate()  # anchors and acyclicity
        for n in g.input_subtasks():
            assert g.node(n).release == 0.0
        for n in g.output_subtasks():
            assert g.node(n).end_to_end_deadline is not None
