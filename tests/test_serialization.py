"""JSON round-trip and DOT export."""

import json

import pytest

from repro.errors import SerializationError
from repro.graph.serialization import (
    dumps,
    graph_from_dict,
    graph_to_dict,
    loads,
    to_dot,
)
from repro.graph.taskgraph import TaskGraph


def build():
    g = TaskGraph(name="ser")
    g.add_subtask("a", wcet=1.5, release=0.0, pinned_to=2)
    g.add_subtask("b", wcet=2.5, end_to_end_deadline=30.0)
    g.add_edge("a", "b", message_size=4.0)
    return g


class TestRoundTrip:
    def test_dict_roundtrip(self):
        g = build()
        h = graph_from_dict(graph_to_dict(g))
        assert h.name == "ser"
        assert h.node("a").wcet == 1.5
        assert h.node("a").pinned_to == 2
        assert h.node("a").release == 0.0
        assert h.node("b").end_to_end_deadline == 30.0
        assert h.message("a", "b").size == 4.0

    def test_string_roundtrip(self, random_graph):
        h = loads(dumps(random_graph))
        assert h.node_ids() == random_graph.node_ids()
        assert h.edges() == random_graph.edges()
        for n in random_graph.node_ids():
            assert h.node(n).wcet == random_graph.node(n).wcet

    def test_file_roundtrip(self, tmp_path):
        from repro.graph.serialization import dump, load

        g = build()
        path = tmp_path / "g.json"
        with open(path, "w") as fp:
            dump(g, fp)
        with open(path) as fp:
            h = load(fp)
        assert h.edges() == g.edges()


class TestErrors:
    def test_not_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            loads("{nope")

    def test_wrong_format(self):
        with pytest.raises(SerializationError, match="format"):
            graph_from_dict({"format": "other", "version": 1})

    def test_wrong_version(self):
        doc = graph_to_dict(build())
        doc["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            graph_from_dict(doc)

    def test_not_a_dict(self):
        with pytest.raises(SerializationError):
            graph_from_dict([1, 2, 3])

    def test_malformed_subtask(self):
        doc = graph_to_dict(build())
        del doc["subtasks"][0]["wcet"]
        with pytest.raises(SerializationError, match="malformed"):
            graph_from_dict(doc)


class TestDot:
    def test_contains_nodes_edges(self):
        dot = to_dot(build())
        assert dot.startswith('digraph "ser"')
        assert '"a" -> "b" [label="4"]' in dot
        assert "pin=2" in dot  # pinned node is annotated

    def test_zero_size_edge_has_no_label(self):
        g = TaskGraph()
        g.add_subtask("x", wcet=1.0)
        g.add_subtask("y", wcet=1.0)
        g.add_edge("x", "y")
        dot = to_dot(g)
        assert '"x" -> "y";' in dot

    def test_json_is_valid_json(self):
        json.loads(dumps(build()))
