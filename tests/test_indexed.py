"""GraphIndex: the compiled graph core and its cache contracts."""

import pytest

from repro.core.commcost import CCAA, CCNE, Oracle, Scaled
from repro.core.expanded import ExpandedGraph
from repro.errors import CycleError
from repro.graph.indexed import GraphIndex
from repro.graph.taskgraph import TaskGraph


def diamond() -> TaskGraph:
    """Nodes inserted in deliberately non-sorted order."""
    g = TaskGraph()
    g.add_subtask("z", wcet=5, release=0.0)
    g.add_subtask("b", wcet=10)
    g.add_subtask("a", wcet=10)
    g.add_subtask("m", wcet=5, end_to_end_deadline=100.0)
    g.add_edge("z", "b", message_size=4)
    g.add_edge("z", "a", message_size=4)
    g.add_edge("b", "m", message_size=4)
    g.add_edge("a", "m", message_size=4)
    return g


class TestStructure:
    def test_dense_ids_follow_insertion_order(self):
        index = diamond().index()
        assert index.ids == ["z", "b", "a", "m"]
        assert index.id_of == {"z": 0, "b": 1, "a": 2, "m": 3}

    def test_csr_adjacency_preserves_edge_insertion_order(self):
        index = diamond().index()
        assert index.successors_of(0) == [1, 2]  # z -> b before z -> a
        assert index.predecessors_of(3) == [1, 2]
        assert index.in_degree_of(0) == 0
        assert index.out_degree_of(3) == 0

    def test_message_between(self):
        index = diamond().index()
        assert index.message_between(0, 1).size == 4
        with pytest.raises(KeyError):
            index.message_between(0, 3)

    def test_depths(self):
        assert diamond().index().depths() == [1, 2, 2, 3]

    def test_cycle_reported_in_node_ids(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1)
        g.add_subtask("b", wcet=1)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(CycleError):
            g.index().topological_order()


class TestTopoDeterminismContract:
    """One tie-break rule everywhere: insertion order among ready nodes.

    Before the indexed core, ``TaskGraph.topological_order`` broke ties in
    insertion order while ``ExpandedGraph`` sorted the initially-ready
    nodes lexicographically; the unified contract pins both to insertion
    order (task nodes in graph insertion order, comm nodes in message
    insertion order)."""

    def test_taskgraph_ties_break_in_insertion_order(self):
        g = TaskGraph()
        g.add_subtask("c", wcet=1, release=0.0)
        g.add_subtask("a", wcet=1, release=0.0)
        g.add_subtask("b", wcet=1, end_to_end_deadline=10.0)
        g.add_edge("c", "b")
        g.add_edge("a", "b")
        assert g.topological_order() == ["c", "a", "b"]

    def test_expanded_graph_follows_the_same_contract(self):
        g = diamond()
        expanded = ExpandedGraph(g, CCNE())
        # CCNE estimates zero cost everywhere: the expansion is the graph
        # itself, so the orders must agree exactly.
        assert expanded.topological_order() == g.topological_order()

    def test_expanded_graph_comm_nodes_in_message_order(self):
        g = diamond()
        order = ExpandedGraph(g, CCAA()).topological_order()
        tasks_only = [eid for eid in order if not eid.startswith("chi(")]
        assert tasks_only == g.topological_order()
        # Simultaneously-ready comm nodes follow message insertion order.
        assert order.index("chi(z->b)") < order.index("chi(z->a)")

    def test_index_topo_matches_graph_topo(self):
        g = diamond()
        index = g.index()
        assert [index.ids[i] for i in index.topological_order()] == (
            g.topological_order()
        )


class TestStructuralInvalidation:
    """Mutation-after-query must rebuild every derived structure."""

    def test_topo_cache_invalidated_by_add_subtask_and_add_edge(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1, release=0.0)
        assert g.topological_order() == ["a"]
        g.add_subtask("b", wcet=1, end_to_end_deadline=10.0)
        assert g.topological_order() == ["a", "b"]
        g.add_edge("b", "a")
        assert g.topological_order() == ["b", "a"]

    def test_index_rebuilt_after_structural_mutation(self):
        g = diamond()
        first = g.index()
        assert g.index() is first  # cached while untouched
        g.add_subtask("t", wcet=1, end_to_end_deadline=50.0)
        second = g.index()
        assert second is not first
        assert second.n_nodes == 5
        g.add_edge("m", "t")
        third = g.index()
        assert third is not second
        assert third.n_edges == 5

    def test_copy_does_not_share_the_index(self):
        g = diamond()
        index = g.index()
        clone = g.copy()
        assert clone.index() is not index
        clone.add_subtask("extra", wcet=1, end_to_end_deadline=9.0)
        assert g.index() is index  # the original is unaffected


class TestExpansionCache:
    def test_expansion_shared_across_calls(self):
        g = diamond()
        e1 = ExpandedGraph.for_graph(g, CCAA())
        e2 = ExpandedGraph.for_graph(g, CCAA())
        assert e1 is e2

    def test_distinct_estimators_get_distinct_expansions(self):
        g = diamond()
        assert ExpandedGraph.for_graph(g, CCNE()) is not (
            ExpandedGraph.for_graph(g, CCAA())
        )
        assert ExpandedGraph.for_graph(g, CCAA()) is not (
            ExpandedGraph.for_graph(g, CCAA(cost_per_item=2.0))
        )

    def test_attribute_mutation_invalidates_via_fingerprint(self):
        g = diamond()
        e1 = ExpandedGraph.for_graph(g, CCAA())
        g.node("a").wcet = 99.0
        e2 = ExpandedGraph.for_graph(g, CCAA())
        assert e2 is not e1
        assert e2.nodes["a"].cost == 99.0

    def test_pin_mutation_invalidates_via_fingerprint(self):
        g = diamond()
        e1 = ExpandedGraph.for_graph(g, CCAA())
        # Pinning both endpoints to one processor turns the arc cost to 0,
        # which changes the expansion's structure.
        g.node("z").pinned_to = 0
        g.node("b").pinned_to = 0
        e2 = ExpandedGraph.for_graph(g, CCAA())
        assert e2 is not e1
        assert "chi(z->b)" in e1.nodes
        assert "chi(z->b)" not in e2.nodes

    def test_structural_mutation_drops_the_expansion_cache(self):
        g = diamond()
        e1 = ExpandedGraph.for_graph(g, CCAA())
        g.add_subtask("t", wcet=1, end_to_end_deadline=50.0)
        e2 = ExpandedGraph.for_graph(g, CCAA())
        assert e2 is not e1
        assert "t" in e2.nodes

    def test_stateful_estimators_are_never_cached(self):
        g = diamond()
        oracle = Oracle({"z": 0, "b": 0, "a": 1, "m": 1})
        assert oracle.cache_key() is None
        assert ExpandedGraph.for_graph(g, oracle) is not (
            ExpandedGraph.for_graph(g, oracle)
        )

    def test_scaled_cache_key_distinguishes_factor(self):
        assert Scaled(0.5).cache_key() != Scaled(0.25).cache_key()
        assert Scaled(0.5).cache_key() == Scaled(0.5).cache_key()


class TestValueSnapshots:
    def test_snapshots_read_live_attributes(self):
        g = diamond()
        index = g.index()
        assert index.wcet_array() == [5, 10, 10, 5]
        g.node("z").wcet = 7
        assert index.wcet_array() == [7, 10, 10, 5]

    def test_fingerprint_tracks_each_mutable_attribute(self):
        g = diamond()
        index = g.index()
        base = index.value_fingerprint()
        g.node("z").wcet = 7
        changed = index.value_fingerprint()
        assert changed != base
        g.node("z").wcet = 5
        assert index.value_fingerprint() == base
        g.message("z", "b").size = 40
        assert index.value_fingerprint() != base


def test_graph_index_exported():
    import repro.graph

    assert repro.graph.GraphIndex is GraphIndex
