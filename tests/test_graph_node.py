"""Subtask / Message / CommSubtask invariants."""

import pytest

from repro.errors import ValidationError
from repro.graph.node import CommSubtask, Message, Subtask


class TestSubtask:
    def test_basic_construction(self):
        s = Subtask("a", wcet=5.0)
        assert s.node_id == "a"
        assert s.wcet == 5.0
        assert s.release is None
        assert s.end_to_end_deadline is None
        assert not s.is_pinned

    def test_pinned(self):
        s = Subtask("a", wcet=5.0, pinned_to=3)
        assert s.is_pinned
        assert s.pinned_to == 3

    def test_empty_id_rejected(self):
        with pytest.raises(ValidationError):
            Subtask("", wcet=5.0)

    @pytest.mark.parametrize("wcet", [0.0, -1.0])
    def test_nonpositive_wcet_rejected(self, wcet):
        with pytest.raises(ValidationError):
            Subtask("a", wcet=wcet)

    def test_negative_pin_rejected(self):
        with pytest.raises(ValidationError):
            Subtask("a", wcet=5.0, pinned_to=-1)


class TestMessage:
    def test_basic(self):
        m = Message("a", "b", size=4.0)
        assert m.edge_id == ("a", "b")
        assert m.size == 4.0

    def test_zero_size_allowed(self):
        # Pure precedence constraints carry no data.
        assert Message("a", "b", size=0.0).size == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            Message("a", "b", size=-1.0)


class TestCommSubtask:
    def test_comm_id_is_synthetic(self):
        chi = CommSubtask("a", "b", cost=4.0)
        assert chi.comm_id == "chi(a->b)"

    def test_zero_cost_allowed(self):
        assert CommSubtask("a", "b", cost=0.0).cost == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            CommSubtask("a", "b", cost=-0.1)
