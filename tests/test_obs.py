"""The telemetry subsystem: spans, metrics, resources, export, report."""

import json
import pickle

import pytest

from repro.errors import ExperimentError, ExperimentWarning, SerializationError
from repro.feast.instrumentation import Instrumentation
from repro.obs import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    ResourceSample,
    Span,
    SpanRecorder,
    Telemetry,
    chrome_trace,
    events_from_telemetry,
    read_events,
    render_run_report,
    sample_resources,
    validate_events,
    write_chrome_trace,
    write_events,
)
from repro.obs import runtime as obs


class TestSpans:
    def test_nesting(self):
        rec = SpanRecorder()
        with rec.span("run"):
            with rec.span("scenario", scenario="MDET"):
                with rec.span("trial"):
                    pass
                with rec.span("trial"):
                    pass
        roots = rec.finished()
        assert [s.name for s in roots] == ["run"]
        assert [s.name for s in roots[0].children] == ["scenario"]
        assert len(roots[0].find("trial")) == 2
        assert all(s.closed for s in roots[0].walk())

    def test_out_of_order_close_rejected(self):
        rec = SpanRecorder()
        outer = rec.open("outer")
        rec.open("inner")
        with pytest.raises(ExperimentError, match="out of order"):
            rec.close(outer)

    def test_finished_with_open_span_raises(self):
        rec = SpanRecorder()
        rec.open("run")
        with pytest.raises(ExperimentError, match="still open"):
            rec.finished()

    def test_exception_closes_and_marks_span(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("run"):
                with rec.span("trial"):
                    raise ValueError("boom")
        run = rec.finished()[0]
        assert run.closed
        assert run.children[0].attrs["error"] == "ValueError"
        assert run.attrs["error"] == "ValueError"

    def test_spans_picklable_after_close(self):
        rec = SpanRecorder()
        with rec.span("chunk", index=3):
            with rec.span("trial"):
                pass
        roots = rec.finished()
        back = pickle.loads(pickle.dumps(roots))
        assert back[0].name == "chunk"
        assert back[0].attrs == {"index": 3}
        assert back[0].children[0].name == "trial"

    def test_dict_round_trip(self):
        rec = SpanRecorder()
        with rec.span("run", experiment="x"):
            with rec.span("trial", index=0):
                pass
        span = rec.finished()[0]
        assert Span.from_dict(span.as_dict()) == span

    def test_adopt_merges_worker_chunks(self):
        """The parent's run span adopts spans shipped from workers."""
        worker1, worker2 = SpanRecorder(), SpanRecorder()
        with worker1.span("chunk", index=0):
            with worker1.span("trial"):
                pass
        with worker2.span("chunk", index=1):
            pass
        parent = SpanRecorder()
        with parent.span("run"):
            parent.adopt(worker1.finished())
            parent.adopt(worker2.finished())
        run = parent.finished()[0]
        assert [c.name for c in run.children] == ["chunk", "chunk"]
        assert sorted(c.attrs["index"] for c in run.children) == [0, 1]
        assert len(run.find("trial")) == 1

    def test_adopt_open_span_rejected(self):
        rec = SpanRecorder()
        with pytest.raises(ExperimentError, match="open span"):
            rec.adopt([Span(name="chunk", start=0.0)])

    def test_annotate_targets_innermost(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                rec.annotate(nodes=7)
        run = rec.finished()[0]
        assert "nodes" not in run.attrs
        assert run.children[0].attrs == {"nodes": 7}


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        # <=1, <=5, <=10, +Inf
        assert hist.counts == [2, 1, 1, 1]
        assert hist.n == 5
        assert hist.total == pytest.approx(111.5)
        assert hist.min == 0.5 and hist.max == 100.0

    def test_boundary_lands_in_lower_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.counts == [1, 1, 0]

    def test_merge_adds_pointwise(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.n == 3
        assert a.min == 0.5 and a.max == 9.0

    def test_merge_rejects_different_buckets(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(2.0,))
        with pytest.raises(ExperimentError, match="different buckets"):
            a.merge(b)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ExperimentError, match="sorted"):
            Histogram(buckets=(2.0, 1.0))

    def test_dict_round_trip(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(0.1)
        hist.observe(5.0)
        back = Histogram.from_dict(json.loads(json.dumps(hist.as_dict())))
        assert back == hist


class TestMetricsRegistry:
    def test_counters_sum_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("trials", 3)
        b.count("trials", 4)
        b.count("only_b")
        a.merge(b)
        assert a.counters == {"trials": 7, "only_b": 1}

    def test_gauges_keep_max_on_merge(self):
        """Chunks arrive in arbitrary order; max is order-independent."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("rss", 100.0)
        b.gauge("rss", 90.0)
        merged_ab = MetricsRegistry()
        merged_ab.merge(a)
        merged_ab.merge(b)
        merged_ba = MetricsRegistry()
        merged_ba.merge(b)
        merged_ba.merge(a)
        assert merged_ab.gauges == merged_ba.gauges == {"rss": 100.0}

    def test_histograms_merge_pointwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.001)
        b.observe("lat", 0.5)
        a.merge(b)
        assert a.histograms["lat"].n == 2

    def test_rebucketing_rejected(self):
        reg = MetricsRegistry()
        reg.observe("x", 1.0, buckets=(1.0, 2.0))
        with pytest.raises(ExperimentError, match="re-bucket"):
            reg.observe("x", 1.0, buckets=(3.0,))

    def test_bool(self):
        reg = MetricsRegistry()
        assert not reg
        reg.count("x")
        assert reg

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 2.0)
        reg.observe("h", 0.1, buckets=COUNT_BUCKETS)
        back = pickle.loads(pickle.dumps(reg))
        assert back.counters == reg.counters
        assert back.histograms["h"].buckets == COUNT_BUCKETS

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.count("c", 2)
        reg.gauge("g", 3.5)
        reg.observe("h", 0.2)
        back = MetricsRegistry.from_dict(
            json.loads(json.dumps(reg.as_dict()))
        )
        assert back.as_dict() == reg.as_dict()


class TestRuntime:
    def test_hooks_are_noops_without_session(self):
        obs.count("x")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.annotate(a=1)
        with obs.span("s") as sp:
            assert sp is None
        with obs.toplevel_span("run") as sp:
            assert sp is None
        assert obs.active() is None

    def test_activate_scopes_session(self):
        session = Telemetry()
        with obs.activate(session):
            assert obs.active() is session
            obs.count("hits")
            with obs.span("work", kind="test"):
                obs.annotate(extra=1)
        assert obs.active() is None
        assert session.metrics.counters == {"hits": 1}
        root = session.spans.finished()[0]
        assert root.name == "work"
        assert root.attrs == {"kind": "test", "extra": 1}

    def test_nested_activate_replaces_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        with obs.activate(outer):
            with obs.activate(inner):
                obs.count("x")
            obs.count("y")
        assert inner.metrics.counters == {"x": 1}
        assert outer.metrics.counters == {"y": 1}

    def test_toplevel_span_suppressed_under_open_span(self):
        session = Telemetry()
        with obs.activate(session):
            with obs.toplevel_span("run") as outer:
                assert outer is not None
                with obs.toplevel_span("run") as nested:
                    assert nested is None
        assert len(session.spans.finished()) == 1

    def test_adopt_chunk(self):
        worker = SpanRecorder()
        with worker.span("chunk"):
            pass
        metrics = MetricsRegistry()
        metrics.count("trials", 4)
        sample = sample_resources()
        session = Telemetry()
        with obs.activate(session), obs.span("run"):
            session.adopt_chunk(
                worker.finished(), metrics, [sample]
            )
        run = session.spans.finished()[0]
        assert run.children[0].name == "chunk"
        assert session.metrics.counters == {"trials": 4}
        assert session.resources == [sample]


class TestResources:
    def test_sample_shape(self):
        sample = sample_resources()
        assert sample.pid > 0
        assert sample.cpu_user_s >= 0.0
        assert sample.rss_max_kb >= 0.0

    def test_delta(self):
        before = sample_resources()
        sum(i * i for i in range(200_000))
        after = sample_resources()
        used = after.delta(before)
        assert used.cpu_total_s >= 0.0
        assert used.rss_max_kb >= before.rss_max_kb

    def test_cross_process_delta_rejected(self):
        a = ResourceSample(ts=0, rss_max_kb=1, cpu_user_s=0,
                           cpu_system_s=0, pid=1)
        b = ResourceSample(ts=1, rss_max_kb=1, cpu_user_s=0,
                           cpu_system_s=0, pid=2)
        with pytest.raises(ExperimentError, match="across processes"):
            b.delta(a)

    def test_dict_round_trip(self):
        sample = sample_resources()
        assert ResourceSample.from_dict(sample.as_dict()) == sample


def _recorded_session():
    """A small but fully populated telemetry session."""
    session = Telemetry()
    with obs.activate(session):
        with obs.span("run", experiment="t", jobs=1):
            with obs.span("chunk", scenario="MDET", index=0):
                with obs.span("trial", n_processors=2, method="PURE"):
                    obs.count("engine.trials_measured")
                    obs.observe("phase.distribute.seconds", 0.002)
        obs.gauge("worker.rss_max_kb", 1024.0)
    session.resources.append(sample_resources())
    return session


class TestExport:
    def test_jsonl_schema_round_trip(self, tmp_path):
        session = _recorded_session()
        path = str(tmp_path / "events.jsonl")
        events = write_events(
            path, session, "t",
            summary={"jobs": 1, "n_records": 1},
            failures=[{"fault_kind": "timeout", "scenario": "MDET",
                       "index": 0, "message": "m"}],
        )
        back = read_events(path)
        assert back == json.loads(json.dumps(events))
        kinds = [e["kind"] for e in back]
        assert kinds[0] == "header"
        assert {"span", "metrics", "resource", "failure", "summary"} <= set(
            kinds
        )

    def test_spans_flattened_parent_before_child(self, tmp_path):
        session = _recorded_session()
        events = events_from_telemetry(session, "t")
        spans = [e for e in events if e["kind"] == "span"]
        assert [s["name"] for s in spans] == ["run", "chunk", "trial"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["id"]
        assert spans[2]["parent"] == spans[1]["id"]

    def test_validation_rejects_orphan_span(self):
        events = events_from_telemetry(_recorded_session(), "t")
        orphan = dict(events[1])
        orphan["parent"] = 999
        with pytest.raises(SerializationError, match="parent"):
            validate_events([events[0], orphan])

    def test_validation_rejects_missing_header(self):
        events = events_from_telemetry(_recorded_session(), "t")
        with pytest.raises(SerializationError, match="header"):
            validate_events(events[1:])

    def test_validation_rejects_bad_histogram(self):
        events = events_from_telemetry(_recorded_session(), "t")
        metrics = next(e for e in events if e["kind"] == "metrics")
        bad = json.loads(json.dumps(metrics))
        bad["histograms"]["phase.distribute.seconds"]["count"] = 99
        with pytest.raises(SerializationError, match="histogram"):
            validate_events([events[0], bad])

    def test_read_tolerates_truncated_tail_when_allowed(self, tmp_path):
        session = _recorded_session()
        path = str(tmp_path / "events.jsonl")
        write_events(path, session, "t")
        with open(path, "a") as fp:
            fp.write('{"kind": "resour')  # crash mid-append
        with pytest.raises(SerializationError):
            read_events(path)
        events = read_events(path, allow_partial=True)
        assert events[0]["kind"] == "header"

    def test_chrome_trace_shape(self, tmp_path):
        session = _recorded_session()
        events = events_from_telemetry(session, "t")
        trace = chrome_trace(events)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert {s["name"] for s in slices} == {"run", "chunk", "trial"}
        assert all(s["ts"] >= 0 and s["dur"] >= 0 for s in slices)
        assert any(m["args"]["name"] == "experiment" for m in metas)
        assert counters  # one resource sample -> counter tracks
        # Valid JSON all the way down (what Perfetto actually parses).
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, events)
        with open(path) as fp:
            assert json.load(fp)["traceEvents"]

    def test_report_renders(self):
        events = events_from_telemetry(
            _recorded_session(), "t", summary={"jobs": 1}
        )
        text = render_run_report(events)
        assert "wall-clock elapsed" in text
        assert "summed phase time" in text
        assert "counters:" in text
        assert "engine.trials_measured" in text


class TestInstrumentationCallbacks:
    def test_raising_callback_detached_with_warning(self):
        inst = Instrumentation()
        seen = []

        def bad(done, total):
            raise RuntimeError("boom")

        inst.add_progress(bad)
        inst.add_progress(lambda done, total: seen.append(done))
        inst.start(3)
        with pytest.warns(ExperimentWarning, match="detached"):
            inst.completed()
        inst.completed()  # the bad callback is gone; no more warnings
        inst.completed()
        assert seen == [1, 2, 3]
        assert len(inst.callback_errors) == 1
        assert "RuntimeError" in inst.callback_errors[0]

    def test_keyboard_interrupt_still_propagates(self):
        inst = Instrumentation()

        def interrupt(done, total):
            raise KeyboardInterrupt

        inst.add_progress(interrupt)
        inst.start(1)
        with pytest.raises(KeyboardInterrupt):
            inst.completed()

    def test_wall_elapsed_separate_from_phase_total(self):
        inst = Instrumentation()
        inst.start(1)
        with inst.phase("generate"):
            pass
        inst.finish()
        assert inst.wall_elapsed > 0.0
        assert inst.timings.total >= 0.0
        frozen = inst.wall_elapsed
        assert inst.wall_elapsed == frozen  # finish() froze it

    def test_parallel_efficiency(self):
        inst = Instrumentation()
        inst.start(1)
        inst.timings.add("schedule", 4.0)
        inst._wall_elapsed = 2.0
        assert inst.parallel_efficiency(4) == pytest.approx(0.5)
        assert Instrumentation().parallel_efficiency(4) is None


class TestObservationDomain:
    """The pinned contract of Histogram.observe for edge-case values."""

    def test_nan_rejected(self):
        hist = Histogram(buckets=(1.0,))
        with pytest.raises(ExperimentError, match="finite"):
            hist.observe(float("nan"))
        assert hist.n == 0  # rejection leaves the histogram untouched

    def test_infinities_rejected(self):
        hist = Histogram(buckets=(1.0,))
        with pytest.raises(ExperimentError, match="finite"):
            hist.observe(float("inf"))
        with pytest.raises(ExperimentError, match="finite"):
            hist.observe(float("-inf"))
        assert hist.n == 0

    def test_registry_observe_propagates_rejection(self):
        registry = MetricsRegistry()
        with pytest.raises(ExperimentError, match="finite"):
            registry.observe("phase.x.seconds", float("nan"))
        assert not registry.histograms

    def test_negative_lands_in_lowest_bucket(self):
        # Documented behavior: negatives are legal (clock skew can
        # produce them) and count toward the first bucket.
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(-3.0)
        assert hist.counts == [1, 0, 0]
        assert hist.min == -3.0
        assert hist.total == pytest.approx(-3.0)

    def test_zero_is_fine(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.0)
        assert hist.counts == [1, 0]


class TestSupervisionRoundTrip:
    """supervision.* counters survive JSONL -> Chrome trace -> report."""

    COUNTERS = {
        "supervision.stalls_detected": 1,
        "supervision.kills_escalated": 1,
        "supervision.relaunches": 2,
        "supervision.shards_failed_over": 1,
        "supervision.chunks_reassigned": 3,
        "supervision.chunks_replayed": 3,
    }

    def supervised_session(self):
        session = Telemetry()
        with session.spans.span("run"):
            pass
        for name, value in self.COUNTERS.items():
            session.metrics.count(name, value)
        return session

    def test_counters_survive_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_events(path, self.supervised_session(), "t")
        events = read_events(path)
        metrics = next(e for e in events if e["kind"] == "metrics")
        for name, value in self.COUNTERS.items():
            assert metrics["counters"][name] == value

    def test_counters_become_chrome_counter_tracks(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_events(path, self.supervised_session(), "t")
        trace = chrome_trace(read_events(path))
        counters = [
            e for e in trace["traceEvents"] if e["ph"] == "C"
        ]
        tracked = {e["name"]: e["args"] for e in counters}
        for name, value in self.COUNTERS.items():
            assert name in tracked, f"{name} missing from counter tracks"
            assert list(tracked[name].values()) == [value]

    def test_report_fault_tolerance_section(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        write_events(path, self.supervised_session(), "t")
        text = render_run_report(read_events(path))
        assert "supervision (fault tolerance):" in text
        assert "worker relaunches" in text
        assert "SIGTERM ignored, escalated to SIGKILL" in text
        assert "chunks replayed from journals" in text
        assert "shards failed over to survivors" in text

    def test_clean_run_has_no_section(self, tmp_path):
        session = Telemetry()
        with session.spans.span("run"):
            pass
        session.metrics.count("supervision.relaunches", 0)
        path = str(tmp_path / "events.jsonl")
        write_events(path, session, "t")
        text = render_run_report(read_events(path))
        # zero-valued counters must not fabricate an incidents section
        assert "supervision (fault tolerance)" not in text
