"""Result persistence and run comparison."""

import pytest

from repro.errors import SerializationError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.persistence import (
    compare,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.feast.runner import ExperimentResult, TrialRecord, run_experiment
from repro.graph.generator import RandomGraphConfig


def small_config(seed=1):
    return ExperimentConfig(
        name="persist",
        description="persistence test",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="UD", metric="PURE", baseline="UD"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 12), depth_range=(3, 4)
        ),
        scenarios=("MDET",),
        n_graphs=2,
        system_sizes=(2, 4),
        seed=seed,
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment(small_config())


class TestRoundTrip:
    def test_dict_roundtrip(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.config.name == "persist"
        assert [m.label for m in back.config.methods] == ["PURE", "UD"]
        assert back.config.methods[1].baseline == "UD"
        assert len(back) == len(result)
        assert back.records[0] == result.records[0]
        assert back.elapsed_seconds == result.elapsed_seconds

    def test_file_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "r.json")
        save_result(result, path)
        back = load_result(path)
        assert [r.max_lateness for r in back.records] == [
            r.max_lateness for r in result.records
        ]

    def test_wrong_format(self):
        with pytest.raises(SerializationError):
            result_from_dict({"format": "other"})

    def test_wrong_version(self, result):
        doc = result_to_dict(result)
        doc["version"] = 99
        with pytest.raises(SerializationError):
            result_from_dict(doc)

    def test_malformed_records(self, result):
        doc = result_to_dict(result)
        del doc["records"][0]["max_lateness"]
        with pytest.raises(SerializationError):
            result_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError):
            load_result(str(path))


class TestCompare:
    def test_identical_runs_no_deltas(self, result):
        again = run_experiment(small_config())
        assert compare(result, again, threshold=0.0) == []

    def test_different_seeds_produce_deltas(self, result):
        other = run_experiment(small_config(seed=2))
        deltas = compare(result, other, threshold=0.0)
        assert deltas
        # Sorted worst-regression-first.
        values = [d.delta for d in deltas]
        assert values == sorted(values, reverse=True)
        d = deltas[0]
        assert d.after - d.before == pytest.approx(d.delta)

    def test_threshold_filters(self, result):
        other = run_experiment(small_config(seed=2))
        all_deltas = compare(result, other, threshold=0.0)
        filtered = compare(result, other, threshold=1e9)
        assert len(filtered) <= len(all_deltas)
        assert filtered == []

    def test_disjoint_keys_ignored(self, result):
        empty = ExperimentResult(config=small_config())
        assert compare(result, empty) == []
