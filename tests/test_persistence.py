"""Result persistence and run comparison."""

import pytest

from repro.errors import SerializationError
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.persistence import (
    compare,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.feast.runner import ExperimentResult, TrialRecord, run_experiment
from repro.graph.generator import RandomGraphConfig


def small_config(seed=1):
    return ExperimentConfig(
        name="persist",
        description="persistence test",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="UD", metric="PURE", baseline="UD"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 12), depth_range=(3, 4)
        ),
        scenarios=("MDET",),
        n_graphs=2,
        system_sizes=(2, 4),
        seed=seed,
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment(small_config())


class TestRoundTrip:
    def test_dict_roundtrip(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back.config.name == "persist"
        assert [m.label for m in back.config.methods] == ["PURE", "UD"]
        assert back.config.methods[1].baseline == "UD"
        assert len(back) == len(result)
        assert back.records[0] == result.records[0]
        assert back.elapsed_seconds == result.elapsed_seconds

    def test_file_roundtrip(self, result, tmp_path):
        path = str(tmp_path / "r.json")
        save_result(result, path)
        back = load_result(path)
        assert [r.max_lateness for r in back.records] == [
            r.max_lateness for r in result.records
        ]

    def test_wrong_format(self):
        with pytest.raises(SerializationError):
            result_from_dict({"format": "other"})

    def test_wrong_version(self, result):
        doc = result_to_dict(result)
        doc["version"] = 99
        with pytest.raises(SerializationError):
            result_from_dict(doc)

    def test_malformed_records(self, result):
        doc = result_to_dict(result)
        del doc["records"][0]["max_lateness"]
        with pytest.raises(SerializationError):
            result_from_dict(doc)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError):
            load_result(str(path))

    def test_fault_fields_roundtrip(self, result, tmp_path):
        from repro.feast.instrumentation import TrialFailure

        annotated = ExperimentResult(
            config=result.config,
            records=list(result.records),
            failures=[
                TrialFailure(scenario="MDET", index=1, kind="crash",
                             message="worker died", attempt=1),
                TrialFailure(scenario="MDET", index=1, kind="quarantine",
                             message="gave up", attempt=3),
            ],
            quarantined=[("MDET", 1)],
            fallback_reason="pool died too often",
        )
        path = str(tmp_path / "faults.json")
        save_result(annotated, path)
        back = load_result(path)
        assert back.failures == annotated.failures
        assert back.quarantined == [("MDET", 1)]
        assert back.fallback_reason == "pool died too often"
        assert not back.complete

    def test_old_documents_decode_without_fault_fields(self, result):
        doc = result_to_dict(result)
        for legacy_missing in ("failures", "quarantined", "fallback_reason"):
            del doc[legacy_missing]
        back = result_from_dict(doc)
        assert back.failures == [] and back.quarantined == []
        assert back.fallback_reason is None and back.complete

    def test_timeout_and_retry_config_roundtrip(self, tmp_path):
        from dataclasses import replace

        cfg = replace(small_config(), trial_timeout=7.5, max_retries=5)
        saved = ExperimentResult(config=cfg)
        path = str(tmp_path / "cfg.json")
        save_result(saved, path)
        back = load_result(path)
        assert back.config.trial_timeout == 7.5
        assert back.config.max_retries == 5

    def test_method_extras_roundtrip(self, tmp_path):
        cfg = ExperimentConfig(
            name="extras",
            description="method field fidelity",
            methods=(
                MethodSpec(label="AC", metric="ADAPT", capacity_aware=True),
                MethodSpec(label="NC", metric="PURE", comm="CCAA",
                           cost_per_item=2.5, clamp_to_anchors=False),
            ),
            scenarios=("MDET",),
            n_graphs=1,
            system_sizes=(2,),
        )
        back = result_from_dict(result_to_dict(ExperimentResult(config=cfg)))
        assert back.config.methods[0].capacity_aware is True
        assert back.config.methods[1].cost_per_item == 2.5
        assert back.config.methods[1].clamp_to_anchors is False


class TestAtomicSave:
    def test_no_partial_file_on_crash(self, tmp_path, monkeypatch, result):
        """A crash mid-write must leave the old content intact and no
        temp litter behind."""
        import os

        from repro.feast import persistence

        path = tmp_path / "r.json"
        save_result(result, str(path))
        good = path.read_text()

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_result(result, str(path))
        monkeypatch.setattr(persistence.os, "replace", real_replace)
        assert path.read_text() == good
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_fsync_called_before_replace(self, tmp_path, monkeypatch, result):
        import os

        from repro.feast import persistence

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            persistence.os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            persistence.os, "replace",
            lambda s, d: (events.append("replace"), real_replace(s, d))[1],
        )
        save_result(result, str(tmp_path / "r.json"))
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")


class TestCompare:
    def test_identical_runs_no_deltas(self, result):
        again = run_experiment(small_config())
        assert compare(result, again, threshold=0.0) == []

    def test_different_seeds_produce_deltas(self, result):
        other = run_experiment(small_config(seed=2))
        deltas = compare(result, other, threshold=0.0)
        assert deltas
        # Sorted worst-regression-first.
        values = [d.delta for d in deltas]
        assert values == sorted(values, reverse=True)
        d = deltas[0]
        assert d.after - d.before == pytest.approx(d.delta)

    def test_threshold_filters(self, result):
        other = run_experiment(small_config(seed=2))
        all_deltas = compare(result, other, threshold=0.0)
        filtered = compare(result, other, threshold=1e9)
        assert len(filtered) <= len(all_deltas)
        assert filtered == []

    def test_disjoint_keys_ignored(self, result):
        empty = ExperimentResult(config=small_config())
        assert compare(result, empty) == []
