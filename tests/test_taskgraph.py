"""TaskGraph construction, queries, ordering, validation."""

import pytest

from repro.errors import (
    CycleError,
    DuplicateEdgeError,
    DuplicateNodeError,
    UnknownNodeError,
    ValidationError,
)
from repro.graph.taskgraph import TaskGraph


def build_small():
    g = TaskGraph(name="small")
    g.add_subtask("a", wcet=1.0, release=0.0)
    g.add_subtask("b", wcet=2.0)
    g.add_subtask("c", wcet=3.0, end_to_end_deadline=50.0)
    g.add_edge("a", "b", message_size=1.0)
    g.add_edge("b", "c", message_size=2.0)
    g.add_edge("a", "c", message_size=3.0)
    return g


class TestConstruction:
    def test_counts(self):
        g = build_small()
        assert g.n_subtasks == 3
        assert g.n_edges == 3
        assert len(g) == 3

    def test_duplicate_node_rejected(self):
        g = build_small()
        with pytest.raises(DuplicateNodeError):
            g.add_subtask("a", wcet=1.0)

    def test_duplicate_edge_rejected(self):
        g = build_small()
        with pytest.raises(DuplicateEdgeError):
            g.add_edge("a", "b")

    def test_edge_to_unknown_node_rejected(self):
        g = build_small()
        with pytest.raises(UnknownNodeError):
            g.add_edge("a", "zzz")
        with pytest.raises(UnknownNodeError):
            g.add_edge("zzz", "a")

    def test_self_loop_rejected(self):
        g = build_small()
        with pytest.raises(ValidationError):
            g.add_edge("a", "a")

    def test_contains_and_iter(self):
        g = build_small()
        assert "a" in g and "zzz" not in g
        assert sorted(g) == ["a", "b", "c"]


class TestRemoval:
    def test_remove_subtask_drops_incident_edges(self):
        g = build_small()
        node = g.remove_subtask("b")
        assert node.node_id == "b"
        assert "b" not in g
        assert g.n_subtasks == 2
        # Both arcs through b are gone; the direct a->c arc survives.
        assert g.edges() == [("a", "c")]
        assert g.successors("a") == ["c"]
        assert g.predecessors("c") == ["a"]
        with pytest.raises(UnknownNodeError):
            g.message("a", "b")

    def test_remove_edge_keeps_endpoints(self):
        g = build_small()
        message = g.remove_edge("a", "b")
        assert message.size == 1.0
        assert "a" in g and "b" in g
        assert not g.has_edge("a", "b")
        assert g.successors("a") == ["c"]
        assert g.predecessors("b") == []
        # b became an input subtask.
        assert set(g.input_subtasks()) == {"a", "b"}

    def test_remove_unknown_raises(self):
        g = build_small()
        with pytest.raises(UnknownNodeError):
            g.remove_subtask("nope")
        with pytest.raises(UnknownNodeError):
            g.remove_edge("c", "a")
        # Nothing was mutated by the failed removals.
        assert g.n_subtasks == 3 and g.n_edges == 3

    def test_removal_invalidates_caches(self):
        g = build_small()
        index_before = g.index()
        topo_before = g.topological_order()
        g.remove_edge("a", "b")
        assert g.index() is not index_before
        g.remove_subtask("b")
        assert g.topological_order() == ["a", "c"]
        assert topo_before == ["a", "b", "c"]
        assert g.index().n_nodes == 2

    def test_remove_then_readd(self):
        g = build_small()
        g.remove_subtask("b")
        g.add_subtask("b", wcet=2.0)
        g.add_edge("a", "b", message_size=1.0)
        g.add_edge("b", "c", message_size=2.0)
        assert g.n_subtasks == 3 and g.n_edges == 3
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")


class TestQueries:
    def test_neighbours(self):
        g = build_small()
        assert sorted(g.successors("a")) == ["b", "c"]
        assert g.predecessors("c") == ["b", "a"] or sorted(
            g.predecessors("c")
        ) == ["a", "b"]
        assert g.in_degree("a") == 0
        assert g.out_degree("a") == 2

    def test_boundary(self):
        g = build_small()
        assert g.input_subtasks() == ["a"]
        assert g.output_subtasks() == ["c"]

    def test_message_lookup(self):
        g = build_small()
        assert g.message("a", "c").size == 3.0
        assert g.has_edge("a", "c")
        assert not g.has_edge("c", "a")
        with pytest.raises(UnknownNodeError):
            g.message("c", "a")

    def test_unknown_node_query(self):
        g = build_small()
        with pytest.raises(UnknownNodeError):
            g.successors("zzz")
        with pytest.raises(UnknownNodeError):
            g.node("zzz")

    def test_pinned_subtasks(self):
        g = build_small()
        assert g.pinned_subtasks() == []
        g.node("b").pinned_to = 1
        assert g.pinned_subtasks() == ["b"]


class TestOrderAndReachability:
    def test_topological_order(self):
        g = build_small()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topo_cached_and_invalidated(self):
        g = build_small()
        first = g.topological_order()
        g.add_subtask("d", wcet=1.0)
        g.add_edge("c", "d")
        second = g.topological_order()
        assert "d" not in first and "d" in second

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0)
        g.add_subtask("b", wcet=1.0)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert not g.is_acyclic()
        with pytest.raises(CycleError) as exc:
            g.topological_order()
        # The reported cycle is a real cycle.
        cycle = exc.value.cycle
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 3

    def test_ancestors_descendants(self):
        g = build_small()
        assert g.ancestors("c") == {"a", "b"}
        assert g.descendants("a") == {"b", "c"}
        assert g.ancestors("a") == set()
        assert g.descendants("c") == set()


class TestAggregatesAndValidate:
    def test_workload(self):
        g = build_small()
        assert g.total_workload() == 6.0
        assert g.mean_execution_time() == 2.0
        assert g.total_message_volume() == 6.0

    def test_validate_ok(self):
        build_small().validate()

    def test_validate_empty(self):
        with pytest.raises(ValidationError):
            TaskGraph().validate()

    def test_validate_missing_release(self):
        g = build_small()
        g.node("a").release = None
        with pytest.raises(ValidationError, match="release"):
            g.validate()

    def test_validate_missing_deadline(self):
        g = build_small()
        g.node("c").end_to_end_deadline = None
        with pytest.raises(ValidationError, match="deadline"):
            g.validate()

    def test_copy_is_independent(self):
        g = build_small()
        h = g.copy()
        h.node("a").wcet = 99.0
        h.add_subtask("x", wcet=1.0)
        assert g.node("a").wcet == 1.0
        assert "x" not in g
        assert h.message("a", "b").size == g.message("a", "b").size

    def test_mean_execution_time_empty(self):
        with pytest.raises(ValidationError):
            TaskGraph().mean_execution_time()
