"""Lateness and schedule-quality analysis."""

import math

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.slicer import bst
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.analysis import (
    end_to_end_lateness,
    lateness_by_subtask,
    max_lateness,
    message_lateness,
    schedule_metrics,
)
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import HopReservation, Schedule, ScheduledMessage, ScheduledTask


def build_case():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b", message_size=5.0)
    assignment = DeadlineAssignment(
        graph=g,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows={
            "a": Window(0.0, 20.0, 10.0),
            "b": Window(40.0, 100.0, 10.0),
        },
        message_windows={("a", "b"): Window(20.0, 40.0, 5.0)},
    )
    s = Schedule(g, System(2))
    s.place_task(ScheduledTask("a", 0, 0.0, 25.0))  # 5 late
    s.place_message(ScheduledMessage(
        "a", "b", 0, 1, 5.0, hops=(HopReservation("bus", 25.0, 30.0),)
    ))
    s.place_task(ScheduledTask("b", 1, 30.0, 40.0))  # 60 early
    return g, assignment, s


class TestLateness:
    def test_per_subtask(self):
        _, a, s = build_case()
        lateness = lateness_by_subtask(s, a)
        assert lateness == {"a": 5.0, "b": -60.0}

    def test_max(self):
        _, a, s = build_case()
        assert max_lateness(s, a) == 5.0

    def test_message_lateness(self):
        _, a, s = build_case()
        assert message_lateness(s, a) == {("a", "b"): -10.0}

    def test_end_to_end(self):
        _, a, s = build_case()
        assert end_to_end_lateness(s) == {"b": -60.0}


class TestMetrics:
    def test_summary(self):
        _, a, s = build_case()
        m = schedule_metrics(s, a)
        assert m.max_lateness == 5.0
        assert m.mean_lateness == pytest.approx(-27.5)
        assert m.n_late == 1
        assert m.n_subtasks == 2
        assert not m.feasible
        assert m.makespan == 40.0
        assert m.total_communication_volume == 5.0
        assert m.max_message_lateness == -10.0

    def test_as_dict(self):
        _, a, s = build_case()
        d = schedule_metrics(s, a).as_dict()
        assert d["max_lateness"] == 5.0
        assert d["n_late"] == 1

    def test_feasible_schedule(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        schedule = ListScheduler(System(2)).schedule(chain_graph, assignment)
        m = schedule_metrics(schedule, assignment)
        assert m.feasible
        assert m.max_lateness < 0
        assert m.max_message_lateness is None  # CCNE: no message windows
        assert math.isnan(m.as_dict()["max_message_lateness"])

    def test_empty_rejected(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0, end_to_end_deadline=5.0)
        a = DeadlineAssignment(
            graph=g, metric_name="T", comm_strategy_name="T",
            windows={"a": Window(0.0, 5.0, 1.0)}, message_windows={},
        )
        empty = Schedule(TaskGraph(), System(1))
        with pytest.raises(ValidationError):
            max_lateness(empty, a)
