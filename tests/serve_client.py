"""Shared helpers for the service test suites.

Every serve test talks to a *real* socket — either a
:class:`~repro.serve.app.ServiceHandle` on a background thread (fast,
in-process, used for lifecycle/adversarial/property tests) or a
``repro serve`` subprocess (used where the test must SIGKILL/SIGTERM a
whole server). These helpers keep the HTTP plumbing and the reference
job documents in one place, and give every poll loop a hard deadline so
a regression shows up as an assertion with context, not a hung suite.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig, generate_task_graph
from repro.graph.serialization import graph_to_dict
from repro.serve.jobs import JobState, compile_job

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Generator knobs for near-instant trials (lifecycle plumbing tests).
TINY_GRAPHS = {"n_subtasks_range": [6, 8], "depth_range": [2, 3], "degree_range": [1, 2]}
#: Knobs for multi-second jobs (something must still be running when the
#: test cancels / kills / drains). Paper-sized graphs, several chunks.
SLOW_GRAPHS = {"n_subtasks_range": [40, 60], "depth_range": [8, 12]}


def tiny_job(
    name: str = "tiny",
    seed: int = 1,
    n_graphs: int = 2,
    sizes: Sequence[int] = (2,),
    scenarios: Sequence[str] = ("MDET",),
) -> Dict[str, Any]:
    """A job that completes in well under a second."""
    return {
        "format": "repro-job",
        "version": 1,
        "name": name,
        "workload": {
            "n_graphs": n_graphs,
            "scenarios": list(scenarios),
            "seed": seed,
            "graph_config": dict(TINY_GRAPHS),
        },
        "platform": {"system_sizes": list(sizes)},
        "methods": [{"label": "PURE", "metric": "PURE", "comm": "CCNE"}],
    }


def slow_job(name: str = "slow", seed: int = 3, n_graphs: int = 16) -> Dict[str, Any]:
    """A job spanning 8 chunks of paper-sized graphs (seconds of work)."""
    return {
        "format": "repro-job",
        "version": 1,
        "name": name,
        "workload": {
            "n_graphs": n_graphs,
            "scenarios": ["MDET"],
            "seed": seed,
            "graph_config": dict(SLOW_GRAPHS),
        },
        "platform": {"system_sizes": [2, 3, 4, 5]},
        "methods": [
            {"label": "PURE", "metric": "PURE", "comm": "CCNE"},
            {"label": "NORM", "metric": "NORM", "comm": "CCNE"},
        ],
    }


def explicit_job(name: str = "explicit", seed: int = 0, n: int = 3) -> Dict[str, Any]:
    """A job carrying its graphs inline as repro-taskgraph documents."""
    config = RandomGraphConfig(
        n_subtasks_range=(6, 9), depth_range=(2, 3), degree_range=(1, 2)
    )
    graphs = [
        graph_to_dict(generate_task_graph(config, rng=random.Random(seed + i)))
        for i in range(n)
    ]
    return {
        "format": "repro-job",
        "version": 1,
        "name": name,
        "graphs": graphs,
        "platform": {"system_sizes": [2, 4]},
        "methods": [
            {"label": "PURE", "metric": "PURE", "comm": "CCNE"},
            {"label": "PURE/AA", "metric": "PURE", "comm": "CCAA"},
        ],
    }


def direct_records(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """What a batch caller gets for the same document — the identity oracle."""
    result = run_experiment(compile_job(document))
    return [record.as_dict() for record in result.records]


# -- HTTP client -------------------------------------------------------
def request(
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One request; returns (status, lower-cased headers, body bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            data,
        )
    finally:
        conn.close()


def request_json(
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, Any]]:
    body = None
    send_headers = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        send_headers.setdefault("Content-Type", "application/json")
    status, _, data = request(port, method, path, body, send_headers, timeout)
    return status, json.loads(data) if data else {}


def submit(port: int, document: Dict[str, Any], **kwargs: Any) -> str:
    status, body = request_json(port, "POST", "/v1/jobs", document, **kwargs)
    assert status == 202, f"submit failed: {status} {body}"
    return body["id"]


def poll_job(port: int, job_id: str) -> Dict[str, Any]:
    status, body = request_json(port, "GET", f"/v1/jobs/{job_id}")
    assert status == 200, f"poll failed: {status} {body}"
    return body


def wait_for(
    predicate,
    timeout: float = 60.0,
    interval: float = 0.02,
    message: str = "condition",
):
    """Poll ``predicate`` until it returns a truthy value; hard deadline."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out after {timeout}s waiting for {message}")


def wait_terminal(port: int, job_id: str, timeout: float = 120.0) -> Dict[str, Any]:
    return wait_for(
        lambda: (lambda j: j if j["state"] in JobState.TERMINAL else None)(
            poll_job(port, job_id)
        ),
        timeout=timeout,
        message=f"job {job_id} to reach a terminal state",
    )


def fetch_records(port: int, job_id: str) -> List[Dict[str, Any]]:
    status, body = request_json(port, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200, f"result fetch failed: {status} {body}"
    return body["records"]


# -- subprocess servers ------------------------------------------------
_ANNOUNCE = re.compile(r"serving on http://[\d.]+:(\d+)")


class ServerProcess:
    """A ``repro serve`` child process with its announce line parsed.

    stderr is drained continuously on a thread (a full pipe would stall
    the server) and kept for failure diagnostics.
    """

    def __init__(self, data_dir: str, *args: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--data-dir", data_dir, *args],
            stderr=subprocess.PIPE,
            env=env,
        )
        self.stderr_lines: List[str] = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        self.port = int(
            wait_for(self._find_port, timeout=30, message="server announce line")
        )

    def _drain(self) -> None:
        assert self.proc.stderr is not None
        for raw in self.proc.stderr:
            self.stderr_lines.append(raw.decode("utf-8", "replace"))

    def _find_port(self) -> Optional[str]:
        if self.proc.poll() is not None:
            raise AssertionError(
                f"server exited with {self.proc.returncode} before announcing: "
                f"{''.join(self.stderr_lines)}"
            )
        for line in self.stderr_lines:
            match = _ANNOUNCE.search(line)
            if match:
                return match.group(1)
        return None

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def sigterm(self, timeout: float = 120.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
