"""The deadline-assignment validator: catches broken assignments."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.slicer import bst
from repro.core.validation import validate_assignment
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph


def chain():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b", message_size=5.0)
    return g


def manual_assignment(graph, windows, message_windows=None):
    return DeadlineAssignment(
        graph=graph,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows=windows,
        message_windows=message_windows or {},
    )


class TestHappyPath:
    def test_real_distribution_validates(self, random_graph):
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        report = validate_assignment(assignment, check_paths=False)
        assert report.ok
        report.raise_if_invalid()  # no-op when ok

    def test_path_check_on_small_graph(self, diamond_graph):
        assignment = bst("PURE", "CCAA").distribute(diamond_graph)
        report = validate_assignment(assignment, check_paths=True)
        assert report.ok
        assert report.path_violations == []


class TestViolationDetection:
    def test_missing_window(self):
        g = chain()
        a = manual_assignment(g, {"a": Window(0.0, 50.0, 10.0)})
        report = validate_assignment(a)
        assert not report.ok
        assert any("b" in v for v in report.missing_windows)
        with pytest.raises(ValidationError):
            report.raise_if_invalid()

    def test_precedence_violation(self):
        g = chain()
        a = manual_assignment(
            g,
            {
                "a": Window(0.0, 60.0, 10.0),
                "b": Window(50.0, 100.0, 10.0),  # releases before a's deadline
            },
        )
        report = validate_assignment(a)
        assert report.precedence_violations

    def test_comm_window_violation(self):
        g = chain()
        a = manual_assignment(
            g,
            {
                "a": Window(0.0, 40.0, 10.0),
                "b": Window(50.0, 100.0, 10.0),
            },
            message_windows={("a", "b"): Window(30.0, 50.0, 5.0)},
        )
        report = validate_assignment(a)
        assert any("comm window" in v for v in report.precedence_violations)

    def test_release_anchor_violation(self):
        g = chain()
        g.node("a").release = 20.0
        a = manual_assignment(
            g,
            {
                "a": Window(0.0, 40.0, 10.0),  # released before anchor 20
                "b": Window(40.0, 100.0, 10.0),
            },
        )
        report = validate_assignment(a)
        assert any("input" in v for v in report.anchor_violations)

    def test_deadline_anchor_violation(self):
        g = chain()
        a = manual_assignment(
            g,
            {
                "a": Window(0.0, 40.0, 10.0),
                "b": Window(40.0, 120.0, 10.0),  # beyond end-to-end 100
            },
        )
        report = validate_assignment(a)
        assert any("output" in v for v in report.anchor_violations)

    def test_degenerate_window_is_warning_not_violation(self):
        g = chain()
        a = manual_assignment(
            g,
            {
                "a": Window(0.0, 5.0, 10.0),  # window < wcet
                "b": Window(5.0, 100.0, 10.0),
            },
        )
        report = validate_assignment(a)
        assert report.ok
        assert report.degenerate_windows == ["a"]

    def test_path_sum_violation(self):
        g = chain()
        a = manual_assignment(
            g,
            {
                # Individually anchored fine, but b's window is stretched by
                # hand so the path sum exceeds the budget... to trigger the
                # path check we need windows that pass the edge checks, so
                # overlap them via an exact boundary and oversize the sum.
                "a": Window(0.0, 60.0, 10.0),
                "b": Window(30.0, 100.0, 10.0),
            },
        )
        report = validate_assignment(a, check_paths=True)
        # The edge check already catches the overlap; the path check
        # catches the budget excess (60 + 70 = 130 > 100).
        assert report.path_violations
