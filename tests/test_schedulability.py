"""Off-line schedulability analysis."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.slicer import bst
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedulability import (
    analyze_placement,
    analyze_platform,
    min_processors_needed,
)


def manual(windows):
    g = TaskGraph()
    for node_id, w in windows.items():
        g.add_subtask(
            node_id, wcet=w.cost, release=0.0, end_to_end_deadline=1e9
        )
    return DeadlineAssignment(
        graph=g,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows=dict(windows),
        message_windows={},
    )


class TestPlatformAnalysis:
    def test_feasible_windows_pass(self):
        a = manual({
            "x": Window(0.0, 20.0, 10.0),
            "y": Window(20.0, 40.0, 10.0),
        })
        report = analyze_platform(a, n_processors=1)
        assert report.schedulable
        assert report.min_processors == 1
        report.raise_if_infeasible()  # no-op

    def test_parallel_demand_needs_more_processors(self):
        # Three unit-slack windows over the same interval: demand 30 in 10.
        a = manual({
            f"t{i}": Window(0.0, 10.0, 10.0) for i in range(3)
        })
        one = analyze_platform(a, n_processors=1)
        assert not one.schedulable
        assert one.violations[0].demand == 30.0
        assert one.violations[0].capacity == 10.0
        assert one.min_processors == 3
        three = analyze_platform(a, n_processors=3)
        assert three.schedulable

    def test_degenerate_window_flagged(self):
        a = manual({"x": Window(0.0, 5.0, 10.0)})
        report = analyze_platform(a, n_processors=4)
        assert report.degenerate_windows == ["x"]
        assert not report.schedulable
        with pytest.raises(ValidationError, match="degenerate"):
            report.raise_if_infeasible()

    def test_overlapping_but_satisfiable(self):
        # Two windows overlap but the combined interval has enough room.
        a = manual({
            "x": Window(0.0, 20.0, 10.0),
            "y": Window(5.0, 30.0, 10.0),
        })
        assert analyze_platform(a, n_processors=1).schedulable

    def test_subinterval_overload_detected(self):
        # Individually fine, but both squeezed into [10, 30).
        a = manual({
            "x": Window(10.0, 30.0, 15.0),
            "y": Window(10.0, 30.0, 15.0),
        })
        report = analyze_platform(a, n_processors=1)
        assert not report.schedulable
        v = report.violations[0]
        assert v.start == 10.0 and v.end == 30.0
        assert set(v.subtasks) == {"x", "y"}
        assert v.overload == pytest.approx(10.0)
        assert "platform" in str(v)

    def test_utilization(self):
        a = manual({
            "x": Window(0.0, 10.0, 5.0),
            "y": Window(10.0, 20.0, 5.0),
        })
        report = analyze_platform(a, n_processors=2)
        assert report.utilization == pytest.approx(10.0 / 40.0)

    def test_bad_processor_count(self):
        a = manual({"x": Window(0.0, 10.0, 5.0)})
        with pytest.raises(ValidationError):
            analyze_platform(a, n_processors=0)

    def test_real_distribution_is_feasible_on_the_paper_platform(
        self, random_graph
    ):
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        report = analyze_platform(assignment, n_processors=16)
        assert report.schedulable
        assert report.min_processors >= 1

    def test_include_messages_is_more_pessimistic(self, chain_graph):
        assignment = bst("PURE", "CCAA").distribute(chain_graph)
        with_m = analyze_platform(
            assignment, n_processors=1, include_messages=True
        )
        without = analyze_platform(assignment, n_processors=1)
        assert with_m.min_processors >= without.min_processors


class TestPlacementAnalysis:
    def test_valid_placement_passes(self, random_graph):
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        schedule = ListScheduler(System(8)).schedule(random_graph, assignment)
        report = analyze_placement(assignment, schedule)
        # With the paper's laxity (OLR 1.5) and 8 processors the per-
        # processor demand criterion holds for the whole placement.
        assert report.schedulable, [str(v) for v in report.violations[:3]]

    def test_overloaded_processor_detected(self):
        g = TaskGraph()
        g.add_subtask("x", wcet=10.0, release=0.0, end_to_end_deadline=12.0,
                      pinned_to=0)
        g.add_subtask("y", wcet=10.0, release=0.0, end_to_end_deadline=12.0,
                      pinned_to=0)
        a = DeadlineAssignment(
            graph=g, metric_name="T", comm_strategy_name="T",
            windows={
                "x": Window(0.0, 12.0, 10.0),
                "y": Window(0.0, 12.0, 10.0),
            },
            message_windows={},
        )
        schedule = ListScheduler(System(2)).schedule(g, a)
        report = analyze_placement(a, schedule)
        assert not report.schedulable
        assert report.violations[0].processor == 0
        assert "processor 0" in str(report.violations[0])


class TestMinProcessors:
    def test_chain_needs_one(self, chain_graph):
        assignment = bst("PURE", "CCNE").distribute(chain_graph)
        assert min_processors_needed(assignment) == 1

    def test_parallel_block_needs_width(self):
        a = manual({f"t{i}": Window(0.0, 10.0, 10.0) for i in range(5)})
        assert min_processors_needed(a) == 5

    def test_bound_is_sound_for_real_workloads(self, random_graph):
        # The bound never exceeds what a successful feasible placement used.
        assignment = bst("PURE", "CCNE").distribute(random_graph)
        needed = min_processors_needed(assignment)
        report = analyze_platform(assignment, n_processors=needed)
        assert report.schedulable
