"""Heterogeneous platforms: speed profiles and the ADAPT-C variant."""

import pytest

from repro.core.commcost import CCNE
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import AdaptiveLaxityRatio, MetricContext
from repro.core.slicer import DeadlineDistributor
from repro.errors import ExperimentError, ValidationError
from repro.feast.config import (
    SPEED_PROFILES,
    ExperimentConfig,
    MethodSpec,
    speeds_for,
)
from repro.graph.taskgraph import TaskGraph


def chain():
    g = TaskGraph()
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=30.0)
    g.add_subtask("c", wcet=20.0, end_to_end_deadline=120.0)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestSpeedProfiles:
    def test_uniform(self):
        assert speeds_for("uniform", 4) == (1.0, 1.0, 1.0, 1.0)

    def test_mixed_alternates(self):
        assert speeds_for("mixed", 4) == (1.0, 2.0, 1.0, 2.0)

    def test_one_fast(self):
        assert speeds_for("one-fast", 3) == (4.0, 1.0, 1.0)

    def test_unknown_profile(self):
        with pytest.raises(ExperimentError):
            speeds_for("warp", 4)

    def test_config_validates_profile(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(
                name="x",
                description="d",
                methods=(MethodSpec(label="PURE", metric="PURE"),),
                speed_profile="warp",
            )

    def test_all_profiles_registered(self):
        assert set(SPEED_PROFILES) == {"uniform", "mixed", "one-fast"}


class TestAdaptCapacityAware:
    def context(self, total_capacity=None):
        g = chain()
        return ExpandedGraph(g, CCNE()), MetricContext(
            graph=g, n_processors=2, total_capacity=total_capacity
        )

    def test_divides_by_capacity(self):
        m = AdaptiveLaxityRatio(capacity_aware=True, threshold=0.0)
        expanded, context = self.context(total_capacity=5.0)
        m.prepare(expanded, context)
        # Chain parallelism 1: surplus 1/5 instead of 1/2.
        assert m.effective_surplus == pytest.approx(0.2)
        assert m.name == "ADAPT-C"

    def test_coincides_with_count_on_unit_speeds(self):
        plain = AdaptiveLaxityRatio(threshold=0.0)
        aware = AdaptiveLaxityRatio(capacity_aware=True, threshold=0.0)
        expanded, context = self.context(total_capacity=2.0)
        plain.prepare(expanded, context)
        aware.prepare(expanded, context)
        assert plain.effective_surplus == aware.effective_surplus

    def test_falls_back_to_count_without_capacity(self):
        aware = AdaptiveLaxityRatio(capacity_aware=True, threshold=0.0)
        expanded, context = self.context(total_capacity=None)
        aware.prepare(expanded, context)
        assert aware.effective_surplus == pytest.approx(0.5)

    def test_rejects_nonpositive_capacity(self):
        aware = AdaptiveLaxityRatio(capacity_aware=True)
        expanded, context = self.context(total_capacity=0.0)
        with pytest.raises(ValidationError):
            aware.prepare(expanded, context)

    def test_distribute_passes_capacity(self):
        distributor = DeadlineDistributor(
            AdaptiveLaxityRatio(capacity_aware=True, threshold=0.0)
        )
        loose = distributor.distribute(
            chain(), n_processors=2, total_capacity=100.0
        )
        tight = distributor.distribute(
            chain(), n_processors=2, total_capacity=1.0
        )
        # Huge capacity -> negligible surplus -> PURE-like equal windows;
        # tiny capacity -> big surplus -> long subtask b gets more slack.
        assert tight.relative_deadline("b") > loose.relative_deadline("b")


class TestMethodSpecCapacityAware:
    def test_builds_adapt_c(self):
        spec = MethodSpec(
            label="ADAPT-C", metric="ADAPT", capacity_aware=True
        )
        distributor = spec.build()
        assert distributor.metric.name == "ADAPT-C"
        assert spec.needs_system_size

    def test_capacity_flag_ignored_for_other_metrics(self):
        spec = MethodSpec(label="PURE", metric="PURE", capacity_aware=True)
        assert spec.build().metric.name == "PURE"


class TestRunnerIntegration:
    def test_heterogeneous_experiment_runs(self):
        from repro.feast import build_experiment, run_experiment
        from repro.graph.generator import RandomGraphConfig

        configs = build_experiment(
            "ext-heterogeneous", n_graphs=2, system_sizes=(2,)
        )
        for config in configs:
            config = ExperimentConfig(
                **{
                    **config.__dict__,
                    "graph_config": RandomGraphConfig(
                        n_subtasks_range=(8, 10), depth_range=(3, 4)
                    ),
                }
            )
            result = run_experiment(config)
            methods = {r.method for r in result.records}
            assert methods == {"PURE", "ADAPT", "ADAPT-C"}
