"""Sensitivity analysis: scaling factors and per-subtask margins."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.sensitivity import (
    critical_scaling_factor,
    per_subtask_margins,
    window_scaling_factor,
)
from repro.core.slicer import ast, bst
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System


def manual(windows, message_windows=None):
    g = TaskGraph()
    for node_id, w in windows.items():
        g.add_subtask(node_id, wcet=w.cost, release=0.0,
                      end_to_end_deadline=1e9)
    return DeadlineAssignment(
        graph=g,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows=dict(windows),
        message_windows=message_windows or {},
    )


class TestWindowScalingFactor:
    def test_minimum_ratio_wins(self):
        a = manual({
            "tight": Window(0.0, 15.0, 10.0),   # ratio 1.5
            "loose": Window(0.0, 40.0, 10.0),   # ratio 4.0
        })
        assert window_scaling_factor(a) == pytest.approx(1.5)

    def test_degenerate_window_gives_below_one(self):
        a = manual({"x": Window(0.0, 5.0, 10.0)})
        assert window_scaling_factor(a) == pytest.approx(0.5)

    def test_message_windows_participate(self):
        a = manual(
            {"x": Window(0.0, 40.0, 10.0)},
            message_windows={("x", "y"): Window(40.0, 45.0, 5.0)},
        )
        assert window_scaling_factor(a) == pytest.approx(1.0)

    def test_real_distribution_has_headroom(self, random_graph):
        a = bst("PURE", "CCNE").distribute(random_graph)
        # OLR 1.5 means ~1.5x total headroom; PURE spreads it, so every
        # window tolerates some growth.
        assert window_scaling_factor(a) > 1.0


class TestPerSubtaskMargins:
    def test_sorted_most_fragile_first(self):
        a = manual({
            "fragile": Window(0.0, 12.0, 10.0),
            "comfy": Window(0.0, 100.0, 10.0),
        })
        margins = per_subtask_margins(a)
        assert [m.node_id for m in margins] == ["fragile", "comfy"]
        assert margins[0].absolute_margin == pytest.approx(2.0)
        assert margins[0].growth_factor == pytest.approx(1.2)

    def test_margins_cover_all_subtasks(self, random_graph):
        a = bst("PURE", "CCNE").distribute(random_graph)
        margins = per_subtask_margins(a)
        assert len(margins) == random_graph.n_subtasks
        assert min(m.growth_factor for m in margins) == pytest.approx(
            window_scaling_factor(a)
        )


class TestCriticalScalingFactor:
    def chain(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=60.0)
        g.add_edge("a", "b")
        return g

    def test_single_processor_chain_analytic(self):
        # One processor, redistribute on: scaled chain of 20α must fit 60
        # and PURE re-splits the window, so feasibility is α <= 3.
        g = self.chain()
        factor = critical_scaling_factor(
            g, System(1), lambda graph: bst("PURE", "CCNE").distribute(graph),
        )
        assert factor == pytest.approx(3.0, abs=0.01)

    def test_fixed_assignment_is_not_more_robust(self):
        # Without redistribution the α=1 windows are kept; feasibility can
        # only be harder (each window must hold its own scaled cost).
        g = self.chain()
        distribute = lambda graph: bst("PURE", "CCNE").distribute(graph)
        adaptive = critical_scaling_factor(g, System(1), distribute)
        fixed = critical_scaling_factor(
            g, System(1), distribute, redistribute=False
        )
        assert fixed <= adaptive + 1e-6

    def test_infeasible_at_lower_raises(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=1.0)
        with pytest.raises(ValidationError, match="infeasible"):
            critical_scaling_factor(
                g, System(1),
                lambda graph: bst("PURE", "CCNE").distribute(graph),
                lower=1.0,
            )

    def test_upper_cap_returned_when_never_failing(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=1.0, release=0.0, end_to_end_deadline=1e6)
        factor = critical_scaling_factor(
            g, System(1),
            lambda graph: bst("PURE", "CCNE").distribute(graph),
            upper=4.0,
        )
        assert factor == 4.0

    def test_bad_bracket(self):
        with pytest.raises(ValidationError):
            critical_scaling_factor(
                self.chain(), System(1),
                lambda graph: bst("PURE", "CCNE").distribute(graph),
                lower=2.0, upper=1.0,
            )

    def test_random_workload_on_paper_platform(self, random_graph):
        factor = critical_scaling_factor(
            random_graph,
            System(4),
            lambda graph: ast("ADAPT").distribute(graph, n_processors=4),
            tolerance=0.05,
        )
        # OLR 1.5 leaves real headroom; the factor must reflect it.
        assert factor > 1.0
