"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph


@pytest.fixture
def chain_graph() -> TaskGraph:
    """a -> b -> c, end-to-end deadline 100, messages of size 5."""
    g = TaskGraph(name="chain")
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=20.0)
    g.add_subtask("c", wcet=10.0, end_to_end_deadline=100.0)
    g.add_edge("a", "b", message_size=5.0)
    g.add_edge("b", "c", message_size=5.0)
    return g


@pytest.fixture
def diamond_graph() -> TaskGraph:
    """a fans out to b (long) and c (short), joining at d."""
    g = TaskGraph(name="diamond")
    g.add_subtask("a", wcet=10.0, release=0.0)
    g.add_subtask("b", wcet=40.0)
    g.add_subtask("c", wcet=10.0)
    g.add_subtask("d", wcet=10.0, end_to_end_deadline=200.0)
    g.add_edge("a", "b", message_size=4.0)
    g.add_edge("a", "c", message_size=4.0)
    g.add_edge("b", "d", message_size=4.0)
    g.add_edge("c", "d", message_size=4.0)
    return g


@pytest.fixture
def random_graph() -> TaskGraph:
    """One paper-config random graph, fixed seed."""
    return generate_task_graph(RandomGraphConfig(), rng=random.Random(1234))


@pytest.fixture
def small_config() -> RandomGraphConfig:
    """A small random-graph configuration for fast tests."""
    return RandomGraphConfig(n_subtasks_range=(12, 18), depth_range=(4, 6))
