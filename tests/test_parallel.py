"""The parallel trial engine: record identity, dispatch, instrumentation."""

import pytest

from repro.errors import ExperimentError, ExperimentWarning
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import Instrumentation, PhaseTimings
from repro.feast.parallel import (
    TrialSpec,
    default_jobs,
    is_parallelizable,
    resolve_jobs,
    run_chunk,
    run_parallel_experiment,
)
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig


def pipeline_factory(graph_config, rng):
    """Module-level (hence picklable) custom workload source."""
    from repro.graph.structured import generate_pipeline

    return generate_pipeline(5, config=graph_config, rng=rng)


def tiny_config(**kwargs):
    defaults = dict(
        name="par",
        description="parallel engine test",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 14), depth_range=(3, 5)
        ),
        scenarios=("MDET",),
        n_graphs=3,
        system_sizes=(2, 4),
        seed=5,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


def dicts(result):
    return [r.as_dict() for r in result.records]


class TestRecordIdentity:
    """jobs=N must reproduce jobs=1 byte-for-byte, records in order."""

    def test_multi_scenario(self):
        cfg = tiny_config(scenarios=("LDET", "MDET", "HDET"), n_graphs=2)
        serial = run_experiment(cfg, jobs=1)
        parallel = run_experiment(cfg, jobs=4)
        assert dicts(serial) == dicts(parallel)
        assert parallel.jobs == 4

    def test_heterogeneous_speeds_with_adapt(self):
        cfg = tiny_config(
            speed_profile="mixed",
            methods=(
                MethodSpec(label="ADAPT-C", metric="ADAPT",
                           capacity_aware=True),
                MethodSpec(label="ED", metric="PURE", baseline="ED"),
            ),
        )
        assert dicts(run_experiment(cfg, jobs=1)) == dicts(
            run_experiment(cfg, jobs=2)
        )

    def test_graph_factory(self):
        cfg = tiny_config(
            graph_factory=pipeline_factory,
            methods=(MethodSpec(label="PURE", metric="PURE"),),
            scenarios=("LDET", "MDET"),
            n_graphs=2,
        )
        assert dicts(run_experiment(cfg, jobs=1)) == dicts(
            run_experiment(cfg, jobs=2)
        )

    def test_more_jobs_than_chunks(self):
        cfg = tiny_config(n_graphs=1)
        assert dicts(run_experiment(cfg, jobs=8)) == dicts(
            run_experiment(cfg, jobs=1)
        )


class TestDispatch:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == default_jobs()
        assert resolve_jobs(0) == default_jobs()
        assert default_jobs() >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiment(tiny_config(), jobs=-2)

    def test_unpicklable_factory_falls_back_to_serial(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: pipeline_factory(gc, rng),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        assert not is_parallelizable(cfg)
        with pytest.warns(ExperimentWarning, match="unpicklable"):
            result = run_experiment(cfg, jobs=4)
        assert result.jobs == 1
        assert result.fallback_reason is not None
        assert "unpicklable" in result.fallback_reason
        assert dicts(result) == dicts(run_experiment(cfg, jobs=1))

    def test_run_parallel_rejects_unpicklable(self):
        cfg = tiny_config(
            graph_factory=lambda gc, rng: pipeline_factory(gc, rng),
            methods=(MethodSpec(label="PURE", metric="PURE"),),
        )
        with pytest.raises(ExperimentError, match="unpicklable"):
            run_parallel_experiment(cfg, jobs=2)

    def test_plain_config_is_parallelizable(self):
        assert is_parallelizable(tiny_config())


class TestChunk:
    def test_chunk_covers_all_sizes_and_methods(self):
        cfg = tiny_config()
        chunk = run_chunk(TrialSpec(config=cfg, scenario="MDET", index=1))
        assert chunk.n_trials == cfg.trials_per_graph
        assert set(chunk.records) == {
            (size, method.label)
            for size in cfg.system_sizes
            for method in cfg.methods
        }
        record = chunk.records[(2, "PURE")]
        assert record.scenario == "MDET" and record.graph_index == 1
        assert chunk.timings.total > 0


class TestProgress:
    def test_parallel_progress_reaches_total(self):
        cfg = tiny_config(scenarios=("LDET", "MDET"))
        calls = []
        run_experiment(cfg, progress=lambda d, t: calls.append((d, t)),
                       jobs=2)
        assert calls[-1] == (cfg.n_trials, cfg.n_trials)
        assert all(t == cfg.n_trials for _, t in calls)
        # One event per chunk, monotone, never past 100 %.
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)
        assert len(calls) == len(cfg.scenarios) * cfg.n_graphs
        assert all(d <= t for d, t in calls)


class TestInstrumentation:
    def test_phase_timings_merge_and_total(self):
        a = PhaseTimings(generate=1.0, distribute=2.0, schedule=3.0)
        a.merge(PhaseTimings(generate=0.5, schedule=0.5))
        assert a.as_dict() == {
            "generate": 1.5, "distribute": 2.0, "schedule": 3.5
        }
        assert a.total == 7.0

    def test_unknown_phase_rejected(self):
        with pytest.raises(ExperimentError, match="unknown phase"):
            PhaseTimings().add("teleport", 1.0)

    def test_overcounting_rejected(self):
        inst = Instrumentation()
        inst.start(2)
        inst.completed(2)
        with pytest.raises(ExperimentError, match="planned"):
            inst.completed()

    def test_serial_run_times_all_phases(self):
        inst = Instrumentation()
        result = run_experiment(tiny_config(), instrumentation=inst)
        assert result.timings is inst.timings
        assert inst.timings.generate > 0
        assert inst.timings.distribute > 0
        assert inst.timings.schedule > 0
        assert inst.trials_completed == result.config.n_trials

    def test_parallel_run_merges_worker_timings(self):
        inst = Instrumentation()
        result = run_experiment(tiny_config(), jobs=2, instrumentation=inst)
        assert result.timings is inst.timings
        assert inst.timings.generate > 0
        assert inst.timings.distribute > 0
        assert inst.timings.schedule > 0

    def test_multiple_callbacks(self):
        first, second = [], []
        inst = Instrumentation(progress=lambda d, t: first.append(d))
        inst.add_progress(lambda d, t: second.append(d))
        cfg = tiny_config(n_graphs=1)
        run_experiment(cfg, instrumentation=inst)
        assert first == second == list(range(1, cfg.n_trials + 1))
