"""The deadline-driven list scheduler."""

import pytest

from repro.core.annotations import DeadlineAssignment, Window
from repro.core.slicer import bst
from repro.errors import SchedulingError, ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.list_scheduler import ListScheduler
from repro.sched.policies import make_policy


def assign(graph, **dist_kwargs):
    return bst("PURE", "CCNE").distribute(graph, **dist_kwargs)


def manual_assignment(graph, deadlines):
    """Windows with chosen absolute deadlines (release 0, cost = wcet)."""
    return DeadlineAssignment(
        graph=graph,
        metric_name="TEST",
        comm_strategy_name="TEST",
        windows={
            n: Window(0.0, deadlines[n], graph.node(n).wcet)
            for n in graph.node_ids()
        },
        message_windows={},
    )


class TestBasics:
    def test_chain_on_one_processor(self, chain_graph):
        schedule = ListScheduler(System(1)).schedule(
            chain_graph, assign(chain_graph)
        )
        schedule.validate()
        assert schedule.task("a").start == 0.0
        assert schedule.task("b").start == 10.0
        assert schedule.task("c").start == 30.0
        assert schedule.makespan() == 40.0
        # Same processor everywhere: no messages.
        assert schedule.messages == {}

    def test_independent_tasks_spread_over_processors(self):
        g = TaskGraph()
        for i in range(4):
            g.add_subtask(
                f"t{i}", wcet=10.0, release=0.0, end_to_end_deadline=100.0
            )
        schedule = ListScheduler(System(4)).schedule(g, assign(g))
        schedule.validate()
        assert schedule.makespan() == 10.0
        assert {schedule.processor_of(f"t{i}") for i in range(4)} == {0, 1, 2, 3}

    def test_colocation_beats_communication(self):
        # Chain with a big message: shipping it across the bus (cost 50)
        # is worse than queueing behind the producer.
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=200.0)
        g.add_edge("a", "b", message_size=50.0)
        schedule = ListScheduler(System(2)).schedule(g, assign(g))
        schedule.validate()
        assert schedule.processor_of("a") == schedule.processor_of("b")
        assert schedule.makespan() == 20.0

    def test_communication_beats_waiting(self):
        # Producer's processor is blocked by a long sibling scheduled
        # first (earlier deadline); a cheap message lets the consumer run
        # remotely much earlier.
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, pinned_to=0)
        g.add_subtask("blocker", wcet=100.0, release=0.0,
                      end_to_end_deadline=120.0, pinned_to=0)
        g.add_subtask("b", wcet=10.0, end_to_end_deadline=200.0)
        g.add_edge("a", "b", message_size=2.0)
        deadlines = {"a": 15.0, "blocker": 120.0, "b": 200.0}
        schedule = ListScheduler(System(1 + 1)).schedule(
            g, manual_assignment(g, deadlines)
        )
        schedule.validate()
        assert schedule.processor_of("b") != schedule.processor_of("a")
        assert schedule.task("b").start == pytest.approx(12.0)


class TestPriorities:
    def test_edf_order_on_single_processor(self):
        g = TaskGraph()
        g.add_subtask("late", wcet=10.0, release=0.0, end_to_end_deadline=300.0)
        g.add_subtask("soon", wcet=10.0, release=0.0, end_to_end_deadline=30.0)
        schedule = ListScheduler(System(1)).schedule(
            g, manual_assignment(g, {"late": 300.0, "soon": 30.0})
        )
        assert schedule.task("soon").start == 0.0
        assert schedule.task("late").start == 10.0

    def test_policy_injection(self):
        g = TaskGraph()
        g.add_subtask("long", wcet=50.0, release=0.0, end_to_end_deadline=300.0)
        g.add_subtask("short", wcet=5.0, release=0.0, end_to_end_deadline=30.0)
        # LPT ignores deadlines: the long task goes first.
        schedule = ListScheduler(System(1), policy=make_policy("LPT")).schedule(
            g, manual_assignment(g, {"long": 300.0, "short": 30.0})
        )
        assert schedule.task("long").start == 0.0


class TestPinning:
    def test_pins_honoured(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        g.add_subtask("b", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=1)
        schedule = ListScheduler(System(4)).schedule(g, assign(g))
        schedule.validate()
        assert schedule.processor_of("a") == 1
        assert schedule.processor_of("b") == 1
        assert schedule.makespan() == 20.0  # forced serialization

    def test_pin_out_of_range(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0, end_to_end_deadline=100.0,
                      pinned_to=9)
        with pytest.raises(ValidationError):
            ListScheduler(System(2)).schedule(g, assign(g))


class TestReleaseTimes:
    def test_greedy_ignores_releases(self, chain_graph):
        assignment = assign(chain_graph)
        schedule = ListScheduler(System(2)).schedule(chain_graph, assignment)
        assert schedule.task("a").start == 0.0
        assert schedule.task("b").start == 10.0  # before b's window opens

    def test_time_triggered_waits_for_release(self, chain_graph):
        assignment = assign(chain_graph)
        schedule = ListScheduler(
            System(2), respect_release_times=True
        ).schedule(chain_graph, assignment)
        schedule.validate()
        assert schedule.task("b").start == pytest.approx(
            assignment.release("b")
        )


class TestBusContention:
    def test_two_messages_serialize_on_bus(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, release=0.0)
        g.add_subtask("c", wcet=10.0, end_to_end_deadline=500.0)
        g.add_edge("a", "c", message_size=20.0)
        g.add_edge("b", "c", message_size=20.0)
        # Pin everything so both messages must cross the bus.
        g.node("a").pinned_to = 0
        g.node("b").pinned_to = 1
        g.node("c").pinned_to = 2
        schedule = ListScheduler(System(3)).schedule(g, assign(g))
        schedule.validate()
        hops = sorted(
            (m.hops[0].start, m.hops[0].finish)
            for m in schedule.messages.values()
        )
        assert hops == [(10.0, 30.0), (30.0, 50.0)]
        assert schedule.task("c").start == 50.0

    def test_ideal_network_no_serialization(self):
        g = TaskGraph()
        g.add_subtask("a", wcet=10.0, release=0.0)
        g.add_subtask("b", wcet=10.0, release=0.0)
        g.add_subtask("c", wcet=10.0, end_to_end_deadline=500.0)
        g.add_edge("a", "c", message_size=20.0)
        g.add_edge("b", "c", message_size=20.0)
        g.node("a").pinned_to = 0
        g.node("b").pinned_to = 1
        g.node("c").pinned_to = 2
        system = System(3, interconnect=IdealNetwork(3))
        schedule = ListScheduler(system).schedule(g, assign(g))
        schedule.validate()
        assert schedule.task("c").start == 30.0  # both arrive at 30


class TestErrors:
    def test_missing_assignment_rejected(self, chain_graph):
        partial = bst("PURE", "CCNE").distribute(chain_graph)
        del partial.windows["b"]
        with pytest.raises(SchedulingError, match="misses subtask"):
            ListScheduler(System(1)).schedule(chain_graph, partial)
