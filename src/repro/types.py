"""Shared type aliases used across the ``repro`` package.

Keeping the aliases in one module gives the rest of the code a single
vocabulary for the domain: node identifiers are strings, time is measured in
abstract *time units* (the paper's bus moves one data item per time unit),
and processors are small non-negative integers.
"""

from __future__ import annotations

from typing import Tuple

#: Identifier of a computation subtask (a node of the task graph).
NodeId = str

#: Identifier of a precedence arc / message, as an ordered (src, dst) pair.
EdgeId = Tuple[NodeId, NodeId]

#: Abstract time unit used throughout (execution times, deadlines, lateness).
Time = float

#: Index of a processor in the platform, ``0 .. n_processors - 1``.
ProcessorId = int

#: Numerical slack for comparing :data:`Time` values across layers.
#:
#: Every module that compares times built by *different* computations
#: (validation of windows, schedule consistency checks, the qa oracles)
#: must use this single tolerance, so "A is consistent with B" means the
#: same thing everywhere. Purely internal comparisons on values produced
#: by one algorithm (e.g. the branch-and-bound incumbent test) may use a
#: tighter private epsilon.
TIME_EPS: float = 1e-6
