"""The deadline-distribution slicing algorithm (paper Figure 1).

:class:`DeadlineDistributor` implements the basic algorithm shared by BST
and AST: repeatedly find the critical path among unassigned (computation
and communication) subtasks, slice its end-to-end window into consecutive
per-subtask windows according to the metric, propagate anchors to the
path's unassigned neighbours, and repeat until every subtask has a window.

The technique is selected by the metric / estimator combination:

* BST  = :class:`~repro.core.metrics.PureLaxityRatio` or
  :class:`~repro.core.metrics.NormalizedLaxityRatio`, either estimator;
* AST  = :class:`~repro.core.metrics.ThresholdLaxityRatio` or
  :class:`~repro.core.metrics.AdaptiveLaxityRatio` with
  :class:`~repro.core.commcost.CCNE` (the paper designs AST around the
  no-communication-cost assumption, its best BST finding).

The convenience constructors :func:`bst` and :func:`ast` encode those
pairings.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.annotations import DeadlineAssignment, SliceRecord, Window
from repro.core.commcost import CCNE, CommCostEstimator
from repro.core.criticalpath import CriticalPath, find_critical_path_indexed
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import (
    AdaptiveLaxityRatio,
    MetricContext,
    SlicingMetric,
    make_metric,
)
from repro.errors import DistributionError
from repro.graph.taskgraph import TaskGraph
from repro.obs import runtime as obs
from repro.obs.metrics import COUNT_BUCKETS
from repro.types import Time


class DeadlineDistributor:
    """Distribute end-to-end deadlines over subtasks before assignment.

    Parameters
    ----------
    metric:
        The laxity-ratio metric (critical-path objective and slack rule).
    estimator:
        Communication-cost estimation strategy; defaults to CCNE, the
        paper's best-performing choice.
    clamp_to_anchors:
        The paper leaves the interaction between a sliced window and
        anchors a node already holds (from earlier slices) unspecified.
        When True (default), windows are clamped into the node's pending
        anchors, which guarantees precedence-consistent windows:
        ``deadline(pred) <= release(succ)`` on every arc. See DESIGN.md §5.

    Over-constrained graphs
    -----------------------
    When an end-to-end budget cannot even hold its path's execution time
    (negative slack), no window set can satisfy precedence consistency,
    release anchors and deadline anchors simultaneously. The clamp resolves
    the conflict in that priority order: windows along the sliced path stay
    precedence-consistent and never release before their anchors, but
    collapsed (zero-width) windows may then slide past a deadline anchor.
    Because an *inherited* deadline anchor encodes precedence toward an
    already-sliced successor, a collapsed window sliding past one surfaces
    as ``deadline(pred) > release(succ)`` on that arc. Such assignments
    show up as ``degenerate_windows`` on the result and as positive
    lateness in the evaluation — they are measurements of infeasibility,
    not errors.
    """

    def __init__(
        self,
        metric: SlicingMetric,
        estimator: Optional[CommCostEstimator] = None,
        clamp_to_anchors: bool = True,
    ) -> None:
        self.metric = metric
        self.estimator = estimator if estimator is not None else CCNE()
        self.clamp_to_anchors = clamp_to_anchors

    def distribute(
        self,
        graph: TaskGraph,
        n_processors: Optional[int] = None,
        total_capacity: Optional[float] = None,
    ) -> DeadlineAssignment:
        """Annotate ``graph`` with windows; returns the assignment.

        ``n_processors`` is required by the ADAPT metric and recorded on
        the result either way; ``total_capacity`` (the platform's speed
        sum) additionally feeds the capacity-aware ADAPT variant on
        heterogeneous platforms.
        """
        graph.validate()
        expanded = ExpandedGraph.for_graph(graph, self.estimator)
        context = MetricContext(
            graph=graph,
            n_processors=n_processors,
            total_capacity=total_capacity,
        )
        self.metric.prepare(expanded, context)

        n = len(expanded)
        # Per-iteration state, all over dense expanded ids: the unassigned
        # mask plus its topologically-ordered compaction (each critical-path
        # DP walks only what is still unassigned), the pending anchors, and
        # the metric's virtual costs (computed once — they do not change
        # between slices).
        unassigned = bytearray(b"\x01" * n)
        remaining: List[int] = list(expanded.topo_indices)
        has_release = bytearray(expanded.has_release)
        release_anchor: List[Time] = list(expanded.release_anchor)
        has_deadline = bytearray(expanded.has_deadline)
        deadline_anchor: List[Time] = list(expanded.deadline_anchor)
        vcost: List[Time] = [
            self.metric.virtual_cost(nd) for nd in expanded.by_index
        ]
        windows: Dict[int, Window] = {}
        slices = []

        while remaining:
            path = find_critical_path_indexed(
                expanded, self.metric, remaining,
                has_release, release_anchor,
                has_deadline, deadline_anchor,
                vcost,
            )
            slices.append(
                SliceRecord(
                    nodes=path.nodes,
                    ratio=path.ratio,
                    release=path.release,
                    deadline=path.deadline,
                )
            )
            self._slice(
                expanded, path,
                has_release, release_anchor,
                has_deadline, deadline_anchor,
                windows,
            )
            for i in path.indices:
                unassigned[i] = 0
            remaining = [i for i in remaining if unassigned[i]]
            self._propagate_anchors(
                expanded, path.indices, unassigned,
                has_release, release_anchor,
                has_deadline, deadline_anchor,
                windows,
            )

        obs.count("slicer.distributions")
        obs.count("slicer.slices", len(slices))
        obs.observe(
            "slicer.slices_per_distribution", len(slices),
            buckets=COUNT_BUCKETS,
        )
        return self._build_assignment(expanded, windows, slices, n_processors)

    # ------------------------------------------------------------------
    def _slice(
        self,
        expanded: ExpandedGraph,
        path: CriticalPath,
        has_release: bytearray,
        release_anchor: List[Time],
        has_deadline: bytearray,
        deadline_anchor: List[Time],
        windows: Dict[int, Window],
    ) -> None:
        """Figure 1 step 4: consecutive windows along the critical path."""
        ratio = path.ratio
        clock = path.release
        by_index = expanded.by_index
        raw = []
        for i in path.indices:
            d = self.metric.relative_deadline(by_index[i], ratio)
            raw.append((i, clock, clock + d))
            clock += d
        # The metric's telescoping property lands the last deadline on the
        # path's end-to-end deadline (up to float error).
        if not math.isclose(clock, path.deadline, rel_tol=1e-9, abs_tol=1e-6):
            raise DistributionError(
                f"metric {self.metric.name} broke the telescoping property: "
                f"path ends at {clock}, expected {path.deadline}"
            )
        prev_deadline = path.release
        for i, release, deadline in raw:
            if self.clamp_to_anchors:
                # Keep windows inside the node's pending anchors and after
                # the (possibly clamped) predecessor window, so the edge
                # invariant deadline(pred) <= release(succ) survives. An
                # over-constrained node collapses to a zero-width window.
                if has_release[i] and release_anchor[i] > release:
                    release = release_anchor[i]
                if prev_deadline > release:
                    release = prev_deadline
                if has_deadline[i] and deadline_anchor[i] < deadline:
                    deadline = deadline_anchor[i]
                if release > deadline:
                    deadline = release
                prev_deadline = deadline
            windows[i] = Window(
                release=release,
                absolute_deadline=deadline,
                cost=expanded.costs[i],
            )

    @staticmethod
    def _propagate_anchors(
        expanded: ExpandedGraph,
        sliced_indices,
        unassigned: bytearray,
        has_release: bytearray,
        release_anchor: List[Time],
        has_deadline: bytearray,
        deadline_anchor: List[Time],
        windows: Dict[int, Window],
    ) -> None:
        """Figure 1 steps 5–11 (following the prose; see DESIGN.md §5):
        unassigned successors inherit a release anchor, unassigned
        predecessors inherit a deadline anchor."""
        succ_lists = expanded.succ_lists
        pred_lists = expanded.pred_lists
        for i in sliced_indices:
            w = windows[i]
            for s in succ_lists[i]:
                if unassigned[s] and (
                    not has_release[s] or w.absolute_deadline > release_anchor[s]
                ):
                    has_release[s] = 1
                    release_anchor[s] = w.absolute_deadline
            for p in pred_lists[i]:
                if unassigned[p] and (
                    not has_deadline[p] or w.release < deadline_anchor[p]
                ):
                    has_deadline[p] = 1
                    deadline_anchor[p] = w.release

    def _build_assignment(
        self,
        expanded: ExpandedGraph,
        windows: Dict[int, Window],
        slices,
        n_processors: Optional[int],
    ) -> DeadlineAssignment:
        task_windows = {}
        message_windows = {}
        by_index = expanded.by_index
        for i, window in windows.items():
            node = by_index[i]
            if node.is_task:
                task_windows[node.task_id] = window
            else:
                message_windows[node.edge] = window
        return DeadlineAssignment(
            graph=expanded.graph,
            metric_name=self.metric.name,
            comm_strategy_name=self.estimator.name,
            windows=task_windows,
            message_windows=message_windows,
            slices=list(slices),
            n_processors=n_processors,
        )


def bst(
    metric: str = "PURE",
    comm: str = "CCNE",
    cost_per_item: Time = 1.0,
    **metric_kwargs,
) -> DeadlineDistributor:
    """The Basic Slicing Technique: NORM or PURE with a named estimator."""
    from repro.core.commcost import make_estimator

    return DeadlineDistributor(
        metric=make_metric(metric, **metric_kwargs),
        estimator=make_estimator(comm, cost_per_item=cost_per_item),
    )


def ast(
    metric: str = "ADAPT",
    cost_per_item: Time = 1.0,
    **metric_kwargs,
) -> DeadlineDistributor:
    """The Adaptive Slicing Technique: THRES or ADAPT over CCNE.

    Remember to pass ``n_processors`` to :meth:`DeadlineDistributor.distribute`
    when using ADAPT.
    """
    if metric.upper() not in ("THRES", "ADAPT"):
        raise DistributionError(
            f"AST uses the THRES or ADAPT metric, not {metric!r}"
        )
    return DeadlineDistributor(
        metric=make_metric(metric, **metric_kwargs),
        estimator=CCNE(cost_per_item=cost_per_item),
    )
