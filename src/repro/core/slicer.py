"""The deadline-distribution slicing algorithm (paper Figure 1).

:class:`DeadlineDistributor` implements the basic algorithm shared by BST
and AST: repeatedly find the critical path among unassigned (computation
and communication) subtasks, slice its end-to-end window into consecutive
per-subtask windows according to the metric, propagate anchors to the
path's unassigned neighbours, and repeat until every subtask has a window.

The technique is selected by the metric / estimator combination:

* BST  = :class:`~repro.core.metrics.PureLaxityRatio` or
  :class:`~repro.core.metrics.NormalizedLaxityRatio`, either estimator;
* AST  = :class:`~repro.core.metrics.ThresholdLaxityRatio` or
  :class:`~repro.core.metrics.AdaptiveLaxityRatio` with
  :class:`~repro.core.commcost.CCNE` (the paper designs AST around the
  no-communication-cost assumption, its best BST finding).

The convenience constructors :func:`bst` and :func:`ast` encode those
pairings.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from repro.core.annotations import DeadlineAssignment, SliceRecord, Window
from repro.core.commcost import CCNE, CommCostEstimator
from repro.core.criticalpath import find_critical_path
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import (
    AdaptiveLaxityRatio,
    MetricContext,
    SlicingMetric,
    make_metric,
)
from repro.errors import DistributionError
from repro.graph.taskgraph import TaskGraph
from repro.types import Time


class DeadlineDistributor:
    """Distribute end-to-end deadlines over subtasks before assignment.

    Parameters
    ----------
    metric:
        The laxity-ratio metric (critical-path objective and slack rule).
    estimator:
        Communication-cost estimation strategy; defaults to CCNE, the
        paper's best-performing choice.
    clamp_to_anchors:
        The paper leaves the interaction between a sliced window and
        anchors a node already holds (from earlier slices) unspecified.
        When True (default), windows are clamped into the node's pending
        anchors, which guarantees precedence-consistent windows:
        ``deadline(pred) <= release(succ)`` on every arc. See DESIGN.md §5.

    Over-constrained graphs
    -----------------------
    When an end-to-end budget cannot even hold its path's execution time
    (negative slack), no window set can satisfy precedence consistency,
    release anchors and deadline anchors simultaneously. The clamp resolves
    the conflict in that priority order: windows stay precedence-consistent
    and never release before their anchors, but collapsed (zero-width)
    windows may then slide past a deadline anchor. Such assignments show up
    as ``degenerate_windows`` on the result and as positive lateness in the
    evaluation — they are measurements of infeasibility, not errors.
    """

    def __init__(
        self,
        metric: SlicingMetric,
        estimator: Optional[CommCostEstimator] = None,
        clamp_to_anchors: bool = True,
    ) -> None:
        self.metric = metric
        self.estimator = estimator if estimator is not None else CCNE()
        self.clamp_to_anchors = clamp_to_anchors

    def distribute(
        self,
        graph: TaskGraph,
        n_processors: Optional[int] = None,
        total_capacity: Optional[float] = None,
    ) -> DeadlineAssignment:
        """Annotate ``graph`` with windows; returns the assignment.

        ``n_processors`` is required by the ADAPT metric and recorded on
        the result either way; ``total_capacity`` (the platform's speed
        sum) additionally feeds the capacity-aware ADAPT variant on
        heterogeneous platforms.
        """
        graph.validate()
        expanded = ExpandedGraph(graph, self.estimator)
        context = MetricContext(
            graph=graph,
            n_processors=n_processors,
            total_capacity=total_capacity,
        )
        self.metric.prepare(expanded, context)

        unassigned: Set[str] = set(expanded.nodes)
        pending_release: Dict[str, Time] = dict(expanded.static_release)
        pending_deadline: Dict[str, Time] = dict(expanded.static_deadline)
        windows: Dict[str, Window] = {}
        slices = []

        while unassigned:
            path = find_critical_path(
                expanded, self.metric, unassigned, pending_release, pending_deadline
            )
            slices.append(
                SliceRecord(
                    nodes=path.nodes,
                    ratio=path.ratio,
                    release=path.release,
                    deadline=path.deadline,
                )
            )
            self._slice(expanded, path, pending_release, pending_deadline, windows)
            for eid in path.nodes:
                unassigned.discard(eid)
            self._propagate_anchors(
                expanded, path.nodes, unassigned,
                pending_release, pending_deadline, windows,
            )

        return self._build_assignment(expanded, windows, slices, n_processors)

    # ------------------------------------------------------------------
    def _slice(
        self,
        expanded: ExpandedGraph,
        path,
        pending_release: Dict[str, Time],
        pending_deadline: Dict[str, Time],
        windows: Dict[str, Window],
    ) -> None:
        """Figure 1 step 4: consecutive windows along the critical path."""
        ratio = path.ratio
        clock = path.release
        raw = []
        for eid in path.nodes:
            node = expanded.node(eid)
            d = self.metric.relative_deadline(node, ratio)
            raw.append((eid, clock, clock + d))
            clock += d
        # The metric's telescoping property lands the last deadline on the
        # path's end-to-end deadline (up to float error).
        if not math.isclose(clock, path.deadline, rel_tol=1e-9, abs_tol=1e-6):
            raise DistributionError(
                f"metric {self.metric.name} broke the telescoping property: "
                f"path ends at {clock}, expected {path.deadline}"
            )
        prev_deadline = path.release
        for eid, release, deadline in raw:
            if self.clamp_to_anchors:
                # Keep windows inside the node's pending anchors and after
                # the (possibly clamped) predecessor window, so the edge
                # invariant deadline(pred) <= release(succ) survives. An
                # over-constrained node collapses to a zero-width window.
                release = max(release, pending_release.get(eid, release), prev_deadline)
                deadline = min(deadline, pending_deadline.get(eid, deadline))
                deadline = max(deadline, release)
                prev_deadline = deadline
            windows[eid] = Window(
                release=release,
                absolute_deadline=deadline,
                cost=expanded.node(eid).cost,
            )

    @staticmethod
    def _propagate_anchors(
        expanded: ExpandedGraph,
        sliced_nodes,
        unassigned: Set[str],
        pending_release: Dict[str, Time],
        pending_deadline: Dict[str, Time],
        windows: Dict[str, Window],
    ) -> None:
        """Figure 1 steps 5–11 (following the prose; see DESIGN.md §5):
        unassigned successors inherit a release anchor, unassigned
        predecessors inherit a deadline anchor."""
        for eid in sliced_nodes:
            w = windows[eid]
            for succ in expanded.successors(eid):
                if succ in unassigned:
                    current = pending_release.get(succ)
                    if current is None or w.absolute_deadline > current:
                        pending_release[succ] = w.absolute_deadline
            for pred in expanded.predecessors(eid):
                if pred in unassigned:
                    current = pending_deadline.get(pred)
                    if current is None or w.release < current:
                        pending_deadline[pred] = w.release

    def _build_assignment(
        self,
        expanded: ExpandedGraph,
        windows: Dict[str, Window],
        slices,
        n_processors: Optional[int],
    ) -> DeadlineAssignment:
        task_windows = {}
        message_windows = {}
        for eid, window in windows.items():
            node = expanded.node(eid)
            if node.is_task:
                task_windows[node.task_id] = window
            else:
                message_windows[node.edge] = window
        return DeadlineAssignment(
            graph=expanded.graph,
            metric_name=self.metric.name,
            comm_strategy_name=self.estimator.name,
            windows=task_windows,
            message_windows=message_windows,
            slices=list(slices),
            n_processors=n_processors,
        )


def bst(
    metric: str = "PURE",
    comm: str = "CCNE",
    cost_per_item: Time = 1.0,
    **metric_kwargs,
) -> DeadlineDistributor:
    """The Basic Slicing Technique: NORM or PURE with a named estimator."""
    from repro.core.commcost import make_estimator

    return DeadlineDistributor(
        metric=make_metric(metric, **metric_kwargs),
        estimator=make_estimator(comm, cost_per_item=cost_per_item),
    )


def ast(
    metric: str = "ADAPT",
    cost_per_item: Time = 1.0,
    **metric_kwargs,
) -> DeadlineDistributor:
    """The Adaptive Slicing Technique: THRES or ADAPT over CCNE.

    Remember to pass ``n_processors`` to :meth:`DeadlineDistributor.distribute`
    when using ADAPT.
    """
    if metric.upper() not in ("THRES", "ADAPT"):
        raise DistributionError(
            f"AST uses the THRES or ADAPT metric, not {metric!r}"
        )
    return DeadlineDistributor(
        metric=make_metric(metric, **metric_kwargs),
        estimator=CCNE(cost_per_item=cost_per_item),
    )
