"""Core contribution: deadline distribution before task assignment."""

from repro.core.annotations import DeadlineAssignment, SliceRecord, Window
from repro.core.baselines import (
    BASELINES,
    BaselineDistributor,
    EffectiveDeadline,
    EqualFlexibility,
    EqualSlack,
    EvenFlexibility,
    UltimateDeadline,
    make_baseline,
)
from repro.core.commcost import (
    CCAA,
    CCNE,
    CommCostEstimator,
    Oracle,
    Scaled,
    make_estimator,
)
from repro.core.criticalpath import CriticalPath, find_critical_path
from repro.core.expanded import ENode, ExpandedGraph
from repro.core.metrics import (
    AdaptiveLaxityRatio,
    MetricContext,
    NormalizedLaxityRatio,
    PureLaxityRatio,
    SlicingMetric,
    ThresholdLaxityRatio,
    make_metric,
)
from repro.core.pinning import (
    pin_boundary_subtasks,
    pin_random_fraction,
    pin_subtasks,
    pinned_fraction,
    validate_pins,
)
from repro.core.sensitivity import (
    SubtaskMargin,
    critical_scaling_factor,
    per_subtask_margins,
    window_scaling_factor,
)
from repro.core.slicer import DeadlineDistributor, ast, bst
from repro.core.validation import ValidationReport, validate_assignment

#: Batch-kernel names served lazily via __getattr__: repro.core.batch is
#: the package's only numpy consumer, and importing repro.core must keep
#: working on numpy-free interpreters (the scalar pipeline never needs it).
_BATCH_EXPORTS = (
    "DistributeRequest",
    "batch_distribute",
    "distribute_many",
    "fallback_reason",
)


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.core import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DeadlineAssignment",
    "BASELINES",
    "BaselineDistributor",
    "UltimateDeadline",
    "EffectiveDeadline",
    "EqualSlack",
    "EqualFlexibility",
    "EvenFlexibility",
    "make_baseline",
    "SliceRecord",
    "Window",
    "CommCostEstimator",
    "CCNE",
    "CCAA",
    "Scaled",
    "Oracle",
    "make_estimator",
    "CriticalPath",
    "find_critical_path",
    "ENode",
    "ExpandedGraph",
    "SlicingMetric",
    "MetricContext",
    "NormalizedLaxityRatio",
    "PureLaxityRatio",
    "ThresholdLaxityRatio",
    "AdaptiveLaxityRatio",
    "make_metric",
    "pin_subtasks",
    "pin_random_fraction",
    "pin_boundary_subtasks",
    "pinned_fraction",
    "validate_pins",
    "DeadlineDistributor",
    "bst",
    "ast",
    "SubtaskMargin",
    "critical_scaling_factor",
    "per_subtask_margins",
    "window_scaling_factor",
    "ValidationReport",
    "validate_assignment",
    "DistributeRequest",
    "batch_distribute",
    "distribute_many",
    "fallback_reason",
]
