"""Validation of a deadline distribution (paper Section 4.1).

The problem statement requires ``d_1 + ... + d_n <= D`` along every path
between an end-to-end pair. Our slicer guarantees the stronger window form

* ``deadline(u) <= release(v)`` for every precedence arc ``(u, v)``
  (taking the communication subtask's window into account when one was
  assigned), and
* windows respect the application's release and deadline anchors,

which together imply the path-sum constraint. The validator checks the
window form on the full graph, plus the per-path form directly (by path
enumeration) when asked — useful on small graphs and in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.graph import paths as graph_paths
from repro.graph.taskgraph import TaskGraph
from repro.types import TIME_EPS

#: Numerical slack for float comparisons (the shared cross-layer tolerance).
EPS = TIME_EPS


@dataclass
class ValidationReport:
    """Outcome of validating one deadline assignment."""

    missing_windows: List[str] = field(default_factory=list)
    precedence_violations: List[str] = field(default_factory=list)
    anchor_violations: List[str] = field(default_factory=list)
    degenerate_windows: List[str] = field(default_factory=list)
    path_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the assignment is structurally sound.

        Degenerate windows (window smaller than the execution time) are a
        schedulability *warning*, not a structural violation: they occur by
        design when the end-to-end deadline cannot accommodate the path.
        """
        return not (
            self.missing_windows
            or self.precedence_violations
            or self.anchor_violations
            or self.path_violations
        )

    def raise_if_invalid(self) -> None:
        if not self.ok:
            issues = (
                self.missing_windows
                + self.precedence_violations
                + self.anchor_violations
                + self.path_violations
            )
            raise ValidationError(
                "invalid deadline assignment: " + "; ".join(issues[:10])
            )


def validate_assignment(
    assignment: DeadlineAssignment,
    check_paths: bool = False,
    path_limit: int = 10_000,
) -> ValidationReport:
    """Validate ``assignment`` against its graph.

    ``check_paths=True`` additionally enumerates end-to-end paths (up to
    ``path_limit`` per pair) and verifies the paper's literal path-sum
    constraint — exponential in the worst case, intended for small graphs.
    """
    report = ValidationReport()
    graph = assignment.graph
    _check_windows_present(graph, assignment, report)
    if report.missing_windows:
        return report
    _check_precedence(graph, assignment, report)
    _check_anchors(graph, assignment, report)
    report.degenerate_windows = [
        str(n) for n in assignment.degenerate_windows()
    ]
    if check_paths:
        _check_paths(graph, assignment, report, path_limit)
    return report


def _check_windows_present(
    graph: TaskGraph, assignment: DeadlineAssignment, report: ValidationReport
) -> None:
    for node_id in graph.node_ids():
        if node_id not in assignment.windows:
            report.missing_windows.append(f"subtask {node_id!r} has no window")


def _check_precedence(
    graph: TaskGraph, assignment: DeadlineAssignment, report: ValidationReport
) -> None:
    for src, dst in graph.edges():
        upstream = assignment.window(src).absolute_deadline
        comm = assignment.message_window(src, dst)
        if comm is not None:
            if comm.release < upstream - EPS:
                report.precedence_violations.append(
                    f"comm window of {src!r}->{dst!r} releases at {comm.release} "
                    f"before producer deadline {upstream}"
                )
            upstream = comm.absolute_deadline
        downstream = assignment.window(dst).release
        if downstream < upstream - EPS:
            report.precedence_violations.append(
                f"arc {src!r}->{dst!r}: successor releases at {downstream} "
                f"before upstream deadline {upstream}"
            )


def _check_anchors(
    graph: TaskGraph, assignment: DeadlineAssignment, report: ValidationReport
) -> None:
    for node_id in graph.input_subtasks():
        anchor = graph.node(node_id).release
        if anchor is None:
            continue
        release = assignment.window(node_id).release
        if release < anchor - EPS:
            report.anchor_violations.append(
                f"input {node_id!r} released at {release}, before anchor {anchor}"
            )
    for node_id in graph.output_subtasks():
        anchor = graph.node(node_id).end_to_end_deadline
        if anchor is None:
            continue
        deadline = assignment.window(node_id).absolute_deadline
        if deadline > anchor + EPS:
            report.anchor_violations.append(
                f"output {node_id!r} deadline {deadline} exceeds "
                f"end-to-end anchor {anchor}"
            )


def _check_paths(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    report: ValidationReport,
    path_limit: int,
) -> None:
    for src in graph.input_subtasks():
        release = graph.node(src).release
        if release is None:
            continue
        for dst in graph.output_subtasks():
            deadline = graph.node(dst).end_to_end_deadline
            if deadline is None:
                continue
            budget = deadline - release
            for path in graph_paths.enumerate_paths(graph, src, dst, limit=path_limit):
                total = sum(
                    assignment.window(n).relative_deadline for n in path
                )
                total += sum(
                    w.relative_deadline
                    for a, b in zip(path, path[1:])
                    for w in (assignment.message_window(a, b),)
                    if w is not None
                )
                if total > budget + EPS:
                    report.path_violations.append(
                        f"path {'->'.join(path)}: relative deadlines sum to "
                        f"{total}, budget is {budget}"
                    )
