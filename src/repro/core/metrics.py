"""Laxity-ratio metrics for critical-path selection and slack assignment.

The slicing algorithm (paper Figure 1) is parameterized by a metric ``R``:
the candidate path minimizing ``R`` is the critical path, and ``R`` then
prescribes each path member's relative deadline. Four metrics appear in the
paper:

* :class:`NormalizedLaxityRatio` (NORM, BST) — slack proportional to
  execution time: ``R = (D − Σc) / Σc``, ``d_i = c_i (1 + R)``;
* :class:`PureLaxityRatio` (PURE, BST) — equal slack share:
  ``R = (D − Σc) / n``, ``d_i = c_i + R``;
* :class:`ThresholdLaxityRatio` (THRES, AST) — PURE over *virtual*
  execution times ``c' = c (1 + Δ)`` for subtasks whose execution time
  reaches the threshold ``c_thres``;
* :class:`AdaptiveLaxityRatio` (ADAPT, AST) — THRES with the surplus
  factor replaced by ``ξ / N_proc`` (average graph parallelism over
  processor count), which adapts the extra slack to how much of the graph's
  parallelism the platform can actually exploit.

Virtual execution times apply to *computation* subtasks only; an estimated
communication cost is never inflated (the threshold concept targets
processor contention, which communication subtasks do not experience on
the paper's bus).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.core.expanded import ENode, ExpandedGraph
from repro.errors import ValidationError
from repro.graph import paths
from repro.graph.taskgraph import TaskGraph
from repro.types import Time

#: Paper default: threshold 25 % above the mean execution time.
DEFAULT_THRESHOLD_FACTOR = 1.25
#: Paper default surplus factor for THRES (Figure 5 uses Δ = 1).
DEFAULT_SURPLUS = 1.0


@dataclass(frozen=True)
class MetricContext:
    """Workload/platform facts a metric may consume.

    ``n_processors`` is known before task *assignment* (the platform is
    given, only the placement is relaxed), which is exactly what ADAPT
    exploits. ``total_capacity`` is the platform's speed sum (equal to
    ``n_processors`` on the paper's homogeneous unit-speed platform);
    the capacity-aware ADAPT variant consumes it on heterogeneous
    platforms.
    """

    graph: TaskGraph
    n_processors: Optional[int] = None
    total_capacity: Optional[float] = None

    @property
    def mean_execution_time(self) -> Time:
        return self.graph.mean_execution_time()

    @property
    def average_parallelism(self) -> float:
        return paths.average_parallelism(self.graph)


class SlicingMetric(ABC):
    """Interface between the slicing algorithm and a laxity-ratio metric.

    The contract that makes slicing correct: for any path with end-to-end
    deadline ``D``, ``sum(relative_deadline(v, R)) == D`` where
    ``R = ratio(D, ...)`` over the same path. Each concrete metric keeps
    that telescoping property (verified by the test suite).
    """

    #: Name used in experiment tables.
    name: str = "abstract"
    #: Whether ``ratio`` depends on the path's node count (PURE family).
    uses_count: bool = True

    def prepare(self, expanded: ExpandedGraph, context: MetricContext) -> None:
        """Hook called once per distribution run, before any path search."""

    def virtual_cost(self, node: ENode) -> Time:
        """The (possibly inflated) cost the metric attributes to ``node``."""
        return node.cost

    @abstractmethod
    def ratio(self, end_to_end: Time, total_virtual_cost: Time, count: int) -> float:
        """The metric value R of a path; smaller means more critical."""

    @abstractmethod
    def relative_deadline(self, node: ENode, ratio: float) -> Time:
        """The relative deadline assigned to a path member given R."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PureLaxityRatio(SlicingMetric):
    """PURE: equal share of the path slack for every path member."""

    name = "PURE"
    uses_count = True

    def ratio(self, end_to_end: Time, total_virtual_cost: Time, count: int) -> float:
        if count <= 0:
            raise ValidationError("PURE ratio of an empty path")
        return (end_to_end - total_virtual_cost) / count

    def relative_deadline(self, node: ENode, ratio: float) -> Time:
        return self.virtual_cost(node) + ratio


class NormalizedLaxityRatio(SlicingMetric):
    """NORM: slack proportional to execution time."""

    name = "NORM"
    uses_count = False

    def ratio(self, end_to_end: Time, total_virtual_cost: Time, count: int) -> float:
        if total_virtual_cost <= 0:
            raise ValidationError("NORM ratio of a zero-cost path")
        return (end_to_end - total_virtual_cost) / total_virtual_cost

    def relative_deadline(self, node: ENode, ratio: float) -> Time:
        return node.cost * (1.0 + ratio)


class ThresholdLaxityRatio(PureLaxityRatio):
    """THRES: PURE with virtual execution times above a threshold.

    ``c'_i = c_i`` when ``c_i < c_thres`` and ``c_i (1 + Δ)`` otherwise.
    The threshold defaults to ``threshold_factor × MET`` of the distributed
    graph (paper: 25 % above MET); an absolute ``threshold`` overrides it.
    """

    name = "THRES"

    def __init__(
        self,
        surplus: float = DEFAULT_SURPLUS,
        threshold: Optional[Time] = None,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
    ) -> None:
        if surplus < 0:
            raise ValidationError(f"surplus factor must be >= 0, got {surplus}")
        if threshold is not None and threshold < 0:
            raise ValidationError(f"threshold must be >= 0, got {threshold}")
        if threshold_factor <= 0:
            raise ValidationError(
                f"threshold_factor must be > 0, got {threshold_factor}"
            )
        self.surplus = surplus
        self.threshold = threshold
        self.threshold_factor = threshold_factor
        self._effective_threshold: Optional[Time] = threshold
        self._effective_surplus: float = surplus

    def prepare(self, expanded: ExpandedGraph, context: MetricContext) -> None:
        if self.threshold is None:
            self._effective_threshold = (
                self.threshold_factor * context.mean_execution_time
            )
        else:
            self._effective_threshold = self.threshold
        self._effective_surplus = self.surplus

    def virtual_cost(self, node: ENode) -> Time:
        if not node.is_task:
            return node.cost
        assert self._effective_threshold is not None, (
            "metric used before prepare(); the slicer always prepares"
        )
        if node.cost >= self._effective_threshold:
            return node.cost * (1.0 + self._effective_surplus)
        return node.cost

    @property
    def effective_threshold(self) -> Time:
        """The ``c_thres`` in effect after :meth:`prepare`.

        Exposed for the vectorized batch kernel, which snapshots the
        prepared state into flat arrays (see :mod:`repro.core.batch`).
        """
        assert self._effective_threshold is not None, (
            "metric used before prepare(); the slicer always prepares"
        )
        return self._effective_threshold

    @property
    def effective_surplus(self) -> float:
        """The Δ in effect after :meth:`prepare` (ADAPT: ξ / N_proc)."""
        return self._effective_surplus

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(surplus={self.surplus}, "
            f"threshold={self.threshold}, threshold_factor={self.threshold_factor})"
        )


class AdaptiveLaxityRatio(ThresholdLaxityRatio):
    """ADAPT: THRES whose surplus adapts to exploitable parallelism.

    ``Δ = ξ / N_proc`` with ξ the average task-graph parallelism (total
    workload / longest-path execution length). On small platforms relative
    to the graph's parallelism, long subtasks receive a large surplus;
    once ``N_proc`` exceeds ξ the surplus fades and ADAPT follows PURE.

    ``capacity_aware=True`` selects the heterogeneous-platform variant
    (beyond the paper; see the ext-heterogeneous experiment): the divisor
    becomes the platform's *speed sum* instead of its processor count, so
    a platform of few fast processors is not mistaken for a contended one.
    On the paper's homogeneous unit-speed platform both variants coincide.
    """

    name = "ADAPT"

    def __init__(
        self,
        threshold: Optional[Time] = None,
        threshold_factor: float = DEFAULT_THRESHOLD_FACTOR,
        capacity_aware: bool = False,
    ) -> None:
        super().__init__(
            surplus=0.0, threshold=threshold, threshold_factor=threshold_factor
        )
        self.capacity_aware = capacity_aware
        if capacity_aware:
            self.name = "ADAPT-C"

    def prepare(self, expanded: ExpandedGraph, context: MetricContext) -> None:
        super().prepare(expanded, context)
        if context.n_processors is None:
            raise ValidationError(
                "ADAPT needs the platform size: pass n_processors to "
                "DeadlineDistributor.distribute() or MetricContext"
            )
        if context.n_processors < 1:
            raise ValidationError(
                f"n_processors must be >= 1, got {context.n_processors}"
            )
        divisor: float = context.n_processors
        if self.capacity_aware:
            if context.total_capacity is not None:
                if context.total_capacity <= 0:
                    raise ValidationError(
                        f"total_capacity must be > 0, got "
                        f"{context.total_capacity}"
                    )
                divisor = context.total_capacity
            # Without capacity information fall back to the count — the
            # homogeneous unit-speed assumption, where both coincide.
        self._effective_surplus = context.average_parallelism / divisor


def make_metric(name: str, **kwargs) -> SlicingMetric:
    """Instantiate a metric by table name (``NORM``/``PURE``/``THRES``/``ADAPT``)."""
    table = {
        "NORM": NormalizedLaxityRatio,
        "PURE": PureLaxityRatio,
        "THRES": ThresholdLaxityRatio,
        "ADAPT": AdaptiveLaxityRatio,
    }
    try:
        cls = table[name.upper()]
    except KeyError:
        raise ValidationError(
            f"unknown metric {name!r}; expected one of {sorted(table)}"
        ) from None
    return cls(**kwargs)
