"""Communication-cost estimation strategies (paper Section 5.4).

With relaxed locality constraints the deadline-distribution phase does not
know which arcs will cross processors, so it must *estimate* the cost of
each communication subtask. The paper evaluates two extremes:

* :class:`CCNE` — *Communication Cost Non-Existing*: assume no arc ever
  crosses processors (estimated cost 0 everywhere);
* :class:`CCAA` — *Communication Cost Always Assumed*: assume every arc
  crosses processors (estimated cost = message size × per-item cost).

Both honour the *strict* subset of locality constraints: when both endpoint
subtasks are pinned, the cost is no longer an estimate — it is 0 for a
shared processor and the full transfer cost otherwise. That is what makes
the estimators usable in the paper's "only a subset of assignments is
known" setting. :class:`Oracle` reproduces the fully-known-assignment
baseline of the BST paper by reading a complete assignment map.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.errors import ValidationError
from repro.graph.node import Message
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, ProcessorId, Time


class CommCostEstimator(ABC):
    """Strategy object estimating the cost of one communication subtask."""

    #: Short name used in experiment tables ("CCNE", "CCAA", ...).
    name: str = "abstract"

    def __init__(self, cost_per_item: Time = 1.0) -> None:
        if cost_per_item < 0:
            raise ValidationError("cost_per_item must be >= 0")
        self.cost_per_item = cost_per_item

    def transfer_cost(self, message: Message) -> Time:
        """The full interprocessor cost of ``message`` on the paper's bus
        (one time unit per data item by default)."""
        return message.size * self.cost_per_item

    def estimate(self, graph: TaskGraph, message: Message) -> Time:
        """Estimated cost of the communication subtask for ``message``.

        Pinned endpoint pairs short-circuit to the *actual* cost; relaxed
        arcs defer to the concrete strategy.
        """
        src = graph.node(message.src)
        dst = graph.node(message.dst)
        if src.is_pinned and dst.is_pinned:
            if src.pinned_to == dst.pinned_to:
                return 0.0
            return self.transfer_cost(message)
        return self._estimate_relaxed(graph, message)

    @abstractmethod
    def _estimate_relaxed(self, graph: TaskGraph, message: Message) -> Time:
        """Estimate for an arc whose placement is not fully known."""

    def cache_key(self) -> Optional[object]:
        """Hashable identity for expanded-graph reuse, or ``None``.

        Two estimators with equal keys must produce identical
        :meth:`estimate` results on every (graph, message); the key lets
        :meth:`ExpandedGraph.for_graph
        <repro.core.expanded.ExpandedGraph.for_graph>` share one expansion
        across metrics and platform sizes. The conservative default is
        ``None`` — never cached — so estimators carrying external state
        (like :class:`Oracle`'s assignment map) cannot be served stale.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cost_per_item={self.cost_per_item})"


class CCNE(CommCostEstimator):
    """Communication Cost Non-Existing: assume same-processor placement."""

    name = "CCNE"

    def _estimate_relaxed(self, graph: TaskGraph, message: Message) -> Time:
        return 0.0

    def cache_key(self) -> Optional[object]:
        return (CCNE, self.cost_per_item)


class CCAA(CommCostEstimator):
    """Communication Cost Always Assumed: assume cross-processor placement."""

    name = "CCAA"

    def _estimate_relaxed(self, graph: TaskGraph, message: Message) -> Time:
        return self.transfer_cost(message)

    def cache_key(self) -> Optional[object]:
        return (CCAA, self.cost_per_item)


class Scaled(CommCostEstimator):
    """Interpolation between CCNE (factor 0) and CCAA (factor 1).

    Not part of the paper's evaluation; provided for sensitivity studies of
    the estimation strategy (e.g. "assume cross-processor communication with
    probability ``factor``").
    """

    def __init__(self, factor: float, cost_per_item: Time = 1.0) -> None:
        super().__init__(cost_per_item)
        if not 0.0 <= factor <= 1.0:
            raise ValidationError(f"factor must be in [0, 1], got {factor}")
        self.factor = factor
        self.name = f"CC{int(round(factor * 100)):02d}"

    def _estimate_relaxed(self, graph: TaskGraph, message: Message) -> Time:
        return self.factor * self.transfer_cost(message)

    def cache_key(self) -> Optional[object]:
        return (Scaled, self.cost_per_item, self.factor)


class Oracle(CommCostEstimator):
    """Exact costs from a complete task assignment (strict locality).

    Reproduces the BST setting in which the assignment is entirely known
    before deadline distribution: pass the full node → processor map.
    """

    name = "ORACLE"

    def __init__(
        self,
        assignment: Mapping[NodeId, ProcessorId],
        cost_per_item: Time = 1.0,
    ) -> None:
        super().__init__(cost_per_item)
        self.assignment: Dict[NodeId, ProcessorId] = dict(assignment)

    def estimate(self, graph: TaskGraph, message: Message) -> Time:
        try:
            src_proc = self.assignment[message.src]
            dst_proc = self.assignment[message.dst]
        except KeyError as exc:
            raise ValidationError(
                f"Oracle estimator is missing an assignment for subtask {exc}"
            ) from exc
        if src_proc == dst_proc:
            return 0.0
        return self.transfer_cost(message)

    def _estimate_relaxed(self, graph: TaskGraph, message: Message) -> Time:
        raise AssertionError("Oracle.estimate never delegates here")


#: Estimators by name, as used in experiment configurations.
ESTIMATORS = {"CCNE": CCNE, "CCAA": CCAA}


def make_estimator(name: str, cost_per_item: Time = 1.0) -> CommCostEstimator:
    """Instantiate a named estimation strategy (``"CCNE"`` or ``"CCAA"``)."""
    try:
        cls = ESTIMATORS[name.upper()]
    except KeyError:
        raise ValidationError(
            f"unknown communication-cost strategy {name!r}; "
            f"expected one of {sorted(ESTIMATORS)}"
        ) from None
    return cls(cost_per_item=cost_per_item)
