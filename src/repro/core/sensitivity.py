"""Sensitivity analysis of deadline assignments.

Section 2 of the paper describes Saksena & Hong's approach built on a
*critical scaling factor*: the largest multiplier applied to all subtask
execution times that keeps the system schedulable. That number is a
robustness currency every hard-real-time shop wants — "how much heavier
can the workload get before something breaks?" — and complements the
lateness metric (which answers the same question only at the current
scale).

Three analyses are provided:

* :func:`window_scaling_factor` — analytic, placement-free: the largest α
  such that every window still holds its scaled execution time
  (``α·c ≤ d`` for all subtasks). Exact for the window model, independent
  of any scheduler.
* :func:`critical_scaling_factor` — empirical, end-to-end: the largest α
  such that scaling all execution times (and re-running the actual
  pipeline — distribution optional, scheduling always) still meets every
  distributed deadline. Found by bisection over monotone feasibility.
* :func:`per_subtask_margins` — per-subtask growth tolerance: how much one
  subtask's execution time can grow, all else fixed, before its own window
  degenerates; the distribution's weakest links rank first.

Note scheduling feasibility is not perfectly monotone in α (list-scheduling
anomalies), so :func:`critical_scaling_factor` brackets the *first* failure:
it returns the largest α below the smallest failing α probed, which is the
conservative answer a certification argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.graph.transform import scale_workload
from repro.machine.system import System
from repro.sched.analysis import max_lateness
from repro.sched.list_scheduler import ListScheduler
from repro.types import NodeId, Time

#: Numerical slack for float comparisons.
EPS = 1e-9


def window_scaling_factor(assignment: DeadlineAssignment) -> float:
    """Largest α with ``α·cost ≤ relative deadline`` for every window.

    Communication windows participate too (their cost scales with message
    sizes under a heavier workload). Returns ``inf`` when every window has
    zero cost (no constraint), 0 when some window is already degenerate.
    """
    factors: List[float] = []
    windows = list(assignment.windows.values()) + list(
        assignment.message_windows.values()
    )
    for window in windows:
        if window.cost <= 0:
            continue
        factors.append(window.relative_deadline / window.cost)
    if not factors:
        return float("inf")
    return max(0.0, min(factors))


@dataclass(frozen=True)
class SubtaskMargin:
    """Growth tolerance of one subtask within its window."""

    node_id: NodeId
    cost: Time
    relative_deadline: Time

    @property
    def absolute_margin(self) -> Time:
        """Extra execution time the window tolerates."""
        return self.relative_deadline - self.cost

    @property
    def growth_factor(self) -> float:
        """Multiplier on this subtask's own cost before degeneration."""
        if self.cost <= 0:
            return float("inf")
        return self.relative_deadline / self.cost


def per_subtask_margins(
    assignment: DeadlineAssignment,
) -> List[SubtaskMargin]:
    """Per-subtask growth margins, tightest (most fragile) first."""
    margins = [
        SubtaskMargin(
            node_id=node_id,
            cost=window.cost,
            relative_deadline=window.relative_deadline,
        )
        for node_id, window in assignment.windows.items()
    ]
    return sorted(margins, key=lambda m: (m.growth_factor, m.node_id))


def critical_scaling_factor(
    graph: TaskGraph,
    system: System,
    distribute: Callable[[TaskGraph], DeadlineAssignment],
    redistribute: bool = True,
    lower: float = 0.1,
    upper: float = 8.0,
    tolerance: float = 1e-3,
) -> float:
    """Empirical critical scaling factor of one workload on one platform.

    At each probe α the graph's execution times and message sizes are
    scaled by α (end-to-end deadlines stay fixed), deadlines are
    redistributed (or the α = 1 distribution's deadlines are kept, when
    ``redistribute=False`` — Saksena & Hong's setting of a *fixed* local
    deadline assignment), the list scheduler runs, and feasibility means
    maximum lateness ≤ 0. Bisection brackets the smallest failing α.

    Raises :class:`ValidationError` when the workload is infeasible even
    at ``lower`` (no useful factor exists).
    """
    if not 0 < lower < upper:
        raise ValidationError(f"need 0 < lower < upper, got [{lower}, {upper}]")
    base_assignment = distribute(graph)

    def feasible(alpha: float) -> bool:
        scaled = scale_workload(graph, alpha)
        if redistribute:
            assignment = distribute(scaled)
        else:
            # Keep the original deadlines; re-bind them to the scaled graph
            # so lateness is measured against the fixed assignment.
            assignment = DeadlineAssignment(
                graph=scaled,
                metric_name=base_assignment.metric_name,
                comm_strategy_name=base_assignment.comm_strategy_name,
                windows=base_assignment.windows,
                message_windows=base_assignment.message_windows,
                slices=base_assignment.slices,
                n_processors=base_assignment.n_processors,
            )
        schedule = ListScheduler(system).schedule(scaled, assignment)
        return max_lateness(schedule, assignment) <= EPS

    if not feasible(lower):
        raise ValidationError(
            f"workload infeasible even at scaling factor {lower}"
        )
    if feasible(upper):
        return upper
    lo, hi = lower, upper
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo
