"""Vectorized batch deadline distribution (ROADMAP item: batch kernel).

Paper-scale sweeps run the distribute phase — critical-path DP plus
slicing — over thousands of generated graphs, one interpreter-driven
graph at a time. This module amortizes that overhead: many distribution
problems are *packed* into concatenated flat arrays (one CSR-style node
block per problem, with per-problem offsets, mirroring the layout of
:class:`~repro.graph.indexed.GraphIndex`) and every slicing iteration
runs one numpy dynamic program across all still-active problems in
lockstep.

Bit-identity contract
---------------------
For every supported problem the kernel reproduces the scalar pipeline
(:class:`~repro.core.slicer.DeadlineDistributor`) **bit-for-bit** — not
within :data:`repro.types.TIME_EPS`, but exactly:

* the DP performs the same IEEE-754 operations in the same order per
  state (``cost = pred_cost + vc`` then ``val = pred_release + cost``;
  ratio ``((deadline - release) - cost) / count``), so every float is
  the same bits as the scalar left-fold;
* per (node, count) the scalar keeps the *first* state attaining the
  maximum ``release + cost`` (self-anchor before predecessors,
  predecessors in adjacency order).  The kernel reproduces that
  first-seen-wins order with strict-improvement updates applied
  per predecessor slot in the same adjacency order;
* the critical path is the minimum of the total order (ratio, count,
  lexicographic id sequence) — a true minimum, so vectorized reduction
  order cannot change the winner; ties compare exact float equality,
  never an epsilon;
* slicing, clamping and anchor propagation reuse the scalar arithmetic
  verbatim (they are O(path length) and stay in Python).

``numpy.float64`` and Python ``float`` are both IEEE-754 binary64, so
values cross the boundary losslessly; every value stored on a
:class:`~repro.core.annotations.Window` or
:class:`~repro.core.annotations.SliceRecord` is converted back to a
built-in ``float`` (bit-exact) to keep results JSON-serializable.

Supported problems & scalar fallback
------------------------------------
The dense (node × count) DP table is exact only for metrics whose ratio
depends on a path through ``release + Σc'`` and the node count — the
PURE family (PURE / THRES / ADAPT).  :func:`fallback_reason` spells out
the rule; :func:`distribute_many` transparently routes unsupported
requests (NORM's Pareto-frontier DP, related-work baselines, custom
metric/distributor subclasses) through the scalar path, so callers can
hand over any request mix.  See EXTENDING.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.annotations import DeadlineAssignment, SliceRecord, Window
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import (
    MetricContext,
    PureLaxityRatio,
    SlicingMetric,
    ThresholdLaxityRatio,
)
from repro.core.slicer import DeadlineDistributor
from repro.errors import DistributionError
from repro.graph.taskgraph import TaskGraph
from repro.obs import runtime as obs
from repro.obs.metrics import COUNT_BUCKETS

#: Cap on ``total nodes × (max level + 1)`` cells per pack; packs beyond
#: it are split so the DP tables stay comfortably in memory (~130 MB of
#: float64 at the default).
DEFAULT_MAX_CELLS = 2_000_000


@dataclass(frozen=True)
class DistributeRequest:
    """One deadline-distribution problem for :func:`distribute_many`.

    Mirrors one ``distributor.distribute(graph, n_processors=...,
    total_capacity=...)`` call; ``None`` platform arguments mean the
    scalar call would omit them (the runner's size-independent reuse
    path distributes with no platform and re-stamps later).
    """

    graph: TaskGraph
    distributor: object
    n_processors: Optional[int] = None
    total_capacity: Optional[float] = None


def fallback_reason(distributor) -> Optional[str]:
    """Why ``distributor`` must take the scalar path (``None`` = batchable).

    The kernel's per-(node, count) DP is exact only for the PURE family,
    and the lockstep slicer re-implements ``DeadlineDistributor``'s
    arithmetic — so both the distributor class and the metric hooks must
    be the known ones. Anything else (NORM, baselines, user subclasses)
    is handled by the scalar pipeline instead; see EXTENDING.md.
    """
    if type(distributor) is not DeadlineDistributor:
        return (
            f"distributor {type(distributor).__name__} is not the plain "
            "DeadlineDistributor"
        )
    metric = distributor.metric
    cls = type(metric)
    if not getattr(metric, "uses_count", False):
        return f"metric {metric.name} does not use path counts (NORM family)"
    if cls.ratio is not PureLaxityRatio.ratio:
        return f"metric {metric.name} overrides ratio()"
    if cls.relative_deadline is not PureLaxityRatio.relative_deadline:
        return f"metric {metric.name} overrides relative_deadline()"
    if cls.virtual_cost not in (
        SlicingMetric.virtual_cost,
        ThresholdLaxityRatio.virtual_cost,
    ):
        return f"metric {metric.name} overrides virtual_cost()"
    return None


# ----------------------------------------------------------------------
# Per-expansion static view (cached on the ExpandedGraph instance)
# ----------------------------------------------------------------------
class _GraphView:
    """Flat numpy image of one expansion's structure.

    Built once per :class:`ExpandedGraph` and cached on it, so the view
    inherits the expansion's invalidation story: structural mutation
    recompiles the :class:`~repro.graph.indexed.GraphIndex`, attribute
    mutation changes the index's value fingerprint — either way a fresh
    expansion (hence a fresh view) is built. Levels are 1-based longest
    path lengths from the sources; ``pred_slot[k, i]`` is node ``i``'s
    k-th predecessor in adjacency order (-1 past the in-degree), which
    is what lets the DP replay the scalar merge order.
    """

    __slots__ = (
        "n", "levels", "max_level", "pred_slot", "costs", "is_task",
        "has_release", "release_anchor", "has_deadline", "deadline_anchor",
    )

    def __init__(self, expanded: ExpandedGraph) -> None:
        n = len(expanded.by_index)
        pred_lists = expanded.pred_lists
        levels = [0] * n
        for i in expanded.topo_indices:
            preds = pred_lists[i]
            levels[i] = 1 + max((levels[p] for p in preds), default=0)
        self.n = n
        self.levels = np.asarray(levels, dtype=np.intp)
        self.max_level = int(self.levels.max()) if n else 0
        maxdeg = max((len(p) for p in pred_lists), default=0)
        slot = np.full((maxdeg, n), -1, dtype=np.intp)
        for i, preds in enumerate(pred_lists):
            for k, p in enumerate(preds):
                slot[k, i] = p
        self.pred_slot = slot
        self.costs = np.asarray(expanded.costs, dtype=np.float64)
        self.is_task = np.fromiter(
            (nd.is_task for nd in expanded.by_index), dtype=bool, count=n
        )
        self.has_release = np.frombuffer(
            bytes(expanded.has_release), dtype=np.uint8
        ).astype(bool)
        self.release_anchor = np.asarray(
            expanded.release_anchor, dtype=np.float64
        )
        self.has_deadline = np.frombuffer(
            bytes(expanded.has_deadline), dtype=np.uint8
        ).astype(bool)
        self.deadline_anchor = np.asarray(
            expanded.deadline_anchor, dtype=np.float64
        )


def graph_view(expanded: ExpandedGraph) -> _GraphView:
    """The (cached) flat view of one expansion."""
    view = getattr(expanded, "_batch_view", None)
    if view is None:
        view = _GraphView(expanded)
        expanded._batch_view = view
        obs.count("batch.views_built")
    return view


def _virtual_costs(metric: SlicingMetric, view: _GraphView) -> np.ndarray:
    """Vectorized ``metric.virtual_cost`` over one expansion.

    Bit-identical to the scalar calls: THRES/ADAPT inflate a task cost
    with the same single multiply ``cost * (1.0 + surplus)`` and the
    same threshold comparison; every other supported metric attributes
    the plain cost. ``metric.prepare`` must already have run.
    """
    if isinstance(metric, ThresholdLaxityRatio):
        threshold = metric.effective_threshold
        surplus = metric.effective_surplus
        inflate = view.is_task & (view.costs >= threshold)
        return np.where(inflate, view.costs * (1.0 + surplus), view.costs)
    return view.costs


# ----------------------------------------------------------------------
# One prepared problem and one pack of problems
# ----------------------------------------------------------------------
class _Problem:
    __slots__ = (
        "request", "expanded", "view", "vcost", "metric_name",
        "estimator_name", "clamp", "windows", "slices",
    )

    def __init__(self, request: DistributeRequest) -> None:
        distributor = request.distributor
        graph = request.graph
        graph.validate()
        self.request = request
        self.expanded = ExpandedGraph.for_graph(graph, distributor.estimator)
        self.view = graph_view(self.expanded)
        context = MetricContext(
            graph=graph,
            n_processors=request.n_processors,
            total_capacity=request.total_capacity,
        )
        # prepare() then the immediate virtual-cost snapshot make shared
        # metric instances safe across a pack: nothing later reads the
        # metric's mutable state (the PURE-family ratio is stateless).
        distributor.metric.prepare(self.expanded, context)
        self.vcost = _virtual_costs(distributor.metric, self.view)
        self.metric_name = distributor.metric.name
        self.estimator_name = distributor.estimator.name
        self.clamp = distributor.clamp_to_anchors
        #: node -> (release, absolute_deadline); Window objects are only
        #: materialized in _build_assignment, off the per-slice hot loop.
        self.windows: Dict[int, Tuple[float, float]] = {}
        self.slices: List[SliceRecord] = []

    @property
    def cells(self) -> int:
        return self.view.n * (self.view.max_level + 1)


class _Pack:
    """Concatenated arrays + lockstep DP/slicing over many problems.

    Layout: problem ``p`` owns the contiguous node rows
    ``off[p] : off[p + 1]`` of every per-node array (anchors, virtual
    costs, predecessor slots, DP tables), exactly the node-offset CSR
    convention of :class:`~repro.graph.indexed.GraphIndex`. Each call to
    :meth:`run` executes the shared slicing loop: one vectorized
    critical-path DP over all still-active problems per iteration, then
    per-problem Python slicing along the (short) chosen paths.
    """

    def __init__(self, problems: List[_Problem]) -> None:
        self.problems = problems
        views = [p.view for p in problems]
        counts = np.array([v.n for v in views], dtype=np.intp)
        self.off = np.concatenate(([0], np.cumsum(counts)))
        self.n_nodes = int(self.off[-1])
        self.prob_of = np.repeat(np.arange(len(problems)), counts)
        self.max_level = max(v.max_level for v in views)
        self.maxdeg = max(v.pred_slot.shape[0] for v in views)

        level = np.concatenate([v.levels for v in views])
        slot_blocks = []
        for v, off in zip(views, self.off):
            block = np.full((self.maxdeg, v.n), -1, dtype=np.intp)
            k = v.pred_slot.shape[0]
            if k:
                block[:k] = np.where(
                    v.pred_slot >= 0, v.pred_slot + off, -1
                )
            slot_blocks.append(block)
        self.pred_slot = (
            np.concatenate(slot_blocks, axis=1)
            if slot_blocks else np.empty((0, 0), dtype=np.intp)
        )
        self.indeg = (self.pred_slot >= 0).sum(axis=0)
        order = np.argsort(level, kind="stable")
        bounds = np.searchsorted(
            level[order], np.arange(1, self.max_level + 2)
        )
        self.level_nodes = [
            order[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        self.node_level = level
        self.vc = np.concatenate([p.vcost for p in problems])
        #: Python-float mirror for the slicing loop (bit-exact).
        self.vc_f = self.vc.tolist()
        # Mutable anchor state, seeded from the static application anchors.
        self.has_release = np.concatenate([v.has_release for v in views])
        self.release_anchor = np.concatenate(
            [v.release_anchor for v in views]
        )
        self.has_deadline = np.concatenate([v.has_deadline for v in views])
        self.deadline_anchor = np.concatenate(
            [v.deadline_anchor for v in views]
        )
        self.remaining = np.ones(self.n_nodes, dtype=bool)
        self.n_rem = counts.copy()
        # Python-list mirrors of the mutable per-node state, kept in
        # lockstep with the arrays by _apply_slice. The slicing loops
        # are scalar Python; reading numpy scalars there costs ~5x a
        # list read, while the vector passes keep using the arrays.
        self.remaining_l = [True] * self.n_nodes
        self.has_release_l = self.has_release.tolist()
        self.release_anchor_l = self.release_anchor.tolist()
        self.has_deadline_l = self.has_deadline.tolist()
        self.deadline_anchor_l = self.deadline_anchor.tolist()

        # DP tables over (node, path length): best state per cell keeps
        # the maximum release + cost, exactly the scalar by_count slots.
        width = self.max_level + 1
        self.val = np.full((self.n_nodes, width), -np.inf)
        self.rel = np.zeros((self.n_nodes, width))
        self.cst = np.zeros((self.n_nodes, width))
        self.par = np.full((self.n_nodes, width), -2, dtype=np.intp)
        self.valid = np.zeros((self.n_nodes, width), dtype=bool)
        counts_div = np.arange(width, dtype=np.float64)
        counts_div[0] = 1.0  # column 0 is unused; avoid 0-division noise
        self.counts_div = counts_div
        self.dp_width = width
        self.total_slices = 0
        # Incremental-DP bookkeeping: nodes whose DP states may have
        # changed since the last _dp (removed path nodes and nodes whose
        # release anchor moved), and the shallowest level among them.
        self.affected = np.ones(self.n_nodes, dtype=bool)
        self.min_aff_level = 1
        # Incremental candidate cache: per-node minimum ratio over its
        # valid DP states, recomputed only for nodes whose states or
        # deadline anchor moved since the last _candidates pass.
        self.row_min = np.full(self.n_nodes, np.inf)
        self.cand_dirty = np.ones(self.n_nodes, dtype=bool)

    # ------------------------------------------------------------------
    def run(self) -> List[DeadlineAssignment]:
        active = [p for p in range(len(self.problems)) if self.n_rem[p]]
        iterations = 0
        while active:
            iterations += 1
            self._dp()
            candidates = self._candidates()
            for p in active:
                chosen = candidates.get(p)
                if chosen is None:
                    raise DistributionError(
                        "no candidate path between anchors; anchor "
                        "bookkeeping is corrupt"
                    )
                self._apply_slice(p, *chosen)
            active = [p for p in active if self.n_rem[p]]
        obs.count("batch.dp_iterations", iterations)
        obs.count("batch.slices", self.total_slices)
        results = []
        for p, problem in enumerate(self.problems):
            obs.count("slicer.distributions")
            obs.count("slicer.slices", len(problem.slices))
            obs.observe(
                "slicer.slices_per_distribution", len(problem.slices),
                buckets=COUNT_BUCKETS,
            )
            results.append(self._build_assignment(p))
        return results

    # ------------------------------------------------------------------
    def _dp(self) -> None:
        """One critical-path DP over every remaining node of every
        active problem — the vectorized image of
        :func:`~repro.core.criticalpath.find_critical_path_indexed`.

        Levels run in ascending order (every predecessor sits at a
        strictly lower level), each node belongs to exactly one level,
        and path length 1 (the self-anchor) cannot collide with pred
        candidates (lengths >= 2) — so per level the whole merge is one
        reduction over the predecessor-slot axis. ``argmax`` returns the
        *first* slot attaining the maximum, which under exact float
        equality is precisely the scalar merge's first-seen-wins rule
        (self-anchor seeded first, predecessors in adjacency order).

        The DP is *incremental*: tables persist across slicing
        iterations, and only the cone downstream of the last round's
        changes is recomputed. A node's states are a pure function of
        its immediate predecessors' states, its own release anchor, and
        its remaining-flag, so a node is recomputed iff it was seeded as
        affected by :meth:`_apply_slice` (removed, or release anchor
        moved) or any predecessor was recomputed this round. Removed
        predecessors contribute nothing either way (their valid bits
        were cleared on removal), so influence never flows through
        them. Levels shallower than every seed are skipped outright."""
        val, rel, cst, par, valid = (
            self.val, self.rel, self.cst, self.par, self.valid
        )
        remaining = self.remaining
        aff = self.affected
        # Longest currently-valid path: bounds the count columns each
        # level must read/write. Persisted states are included via a
        # whole-table scan; the bound then grows as levels add states.
        cols = np.flatnonzero(valid.any(axis=0))
        cur_max = int(cols[-1]) if cols.size else 0
        start_lvl = self.min_aff_level
        for lvl, nodes in enumerate(self.level_nodes, start=1):
            if lvl < start_lvl:
                continue  # no seed this shallow: states persist as-is
            idx = nodes[remaining[nodes]]
            if not idx.size:
                continue
            preds = present = None
            if lvl >= 2:
                # Predecessor slots trimmed to the level's maximum
                # in-degree; -1 (absent) slots are masked via `present`
                # everywhere they are read.
                n_slots = int(self.indeg[idx].max())
                preds = self.pred_slot[:n_slots, idx]
                present = preds >= 0
                pred_aff = (aff[preds] & present).any(axis=0)
                sub_mask = aff[idx] | pred_aff
            else:
                sub_mask = aff[idx]
            if not sub_mask.any():
                continue
            sub = idx[sub_mask]
            aff[sub] = True  # propagate to deeper levels
            self.cand_dirty[sub] = True
            valid[sub] = False
            vc_sub = self.vc[sub]
            anchored = self.has_release[sub]
            rows = sub[anchored]
            if rows.size:
                anchor = self.release_anchor[rows]
                rel[rows, 1] = anchor
                cst[rows, 1] = vc_sub[anchored]
                val[rows, 1] = anchor + vc_sub[anchored]
                par[rows, 1] = -1
                valid[rows, 1] = True
                cur_max = max(cur_max, 1)
            if lvl == 1 or cur_max == 0:
                continue
            hi = min(lvl, cur_max + 1)
            preds_s = preds[:, sub_mask]
            present_s = present[:, sub_mask]
            preds_c = np.where(present_s, preds_s, 0)
            s_valid = valid[preds_c, 1:hi] & present_s[:, :, None]
            if not s_valid.any():
                continue
            s_rel = rel[preds_c, 1:hi]
            # Scalar op order per candidate: cost = pred.cost + vc, then
            # val = pred.release + cost.
            c_cst = cst[preds_c, 1:hi] + vc_sub[None, :, None]
            c_val = np.where(s_valid, s_rel + c_cst, -np.inf)
            best = c_val.max(axis=0)
            has = best > -np.inf
            winner = c_val.argmax(axis=0)
            sel = winner[None]
            w_rel = np.take_along_axis(s_rel, sel, axis=0)[0]
            w_cst = np.take_along_axis(c_cst, sel, axis=0)[0]
            w_par = preds_c[winner, np.arange(sub.size)[:, None]]
            val[sub, 2:hi + 1] = best
            rel[sub, 2:hi + 1] = np.where(has, w_rel, 0.0)
            cst[sub, 2:hi + 1] = np.where(has, w_cst, 0.0)
            par[sub, 2:hi + 1] = np.where(has, w_par, -2)
            valid[sub, 2:hi + 1] = has
            reached = np.flatnonzero(has.any(axis=0))
            if reached.size:
                cur_max = max(cur_max, int(reached[-1]) + 2)
        # Columns beyond this hold stale values from earlier iterations;
        # their valid bits are False, and every consumer masks on valid.
        self.dp_width = cur_max + 1
        aff[:] = False
        self.min_aff_level = self.max_level + 1  # until new seeds arrive

    def _candidates(self) -> Dict[int, Tuple[int, int, float]]:
        """Per active problem, the best (node, count, ratio) candidate
        under the scalar total order (ratio, count, lexicographic id
        sequence). Ratio ties use exact float equality, never an
        epsilon."""
        width = self.dp_width
        anchored_mask = self.has_deadline & self.remaining
        dirty = np.flatnonzero(self.cand_dirty & anchored_mask)
        if dirty.size:
            cell_valid = self.valid[dirty, :width]
            # Scalar op order: end_to_end = deadline - release, then
            # (end_to_end - cost) / count.
            e2e = (
                self.deadline_anchor[dirty][:, None]
                - self.rel[dirty, :width]
            )
            ratio = (
                (e2e - self.cst[dirty, :width]) / self.counts_div[:width]
            )
            self.row_min[dirty] = np.where(
                cell_valid, ratio, np.inf
            ).min(axis=1)
        self.cand_dirty[:] = False
        row_min = np.where(anchored_mask, self.row_min, np.inf)
        # Problems own contiguous node rows, so per-problem minima are
        # one reduceat over the node-offset boundaries (every problem
        # has at least one node).
        group_min = np.minimum.reduceat(row_min, self.off[:-1])
        hits = np.flatnonzero(
            np.isfinite(row_min) & (row_min == group_min[self.prob_of])
        )
        ties: Dict[int, List[Tuple[int, int]]] = {}
        valid_h = self.valid[hits, :width]
        e2e_h = self.deadline_anchor[hits][:, None] - self.rel[hits, :width]
        ratio_h = (
            (e2e_h - self.cst[hits, :width]) / self.counts_div[:width]
        )
        ratio_h = np.where(valid_h, ratio_h, np.inf)
        prob_h = self.prob_of[hits]
        for r in range(hits.size):
            p = int(prob_h[r])
            for c in np.nonzero(ratio_h[r] == group_min[p])[0]:
                ties.setdefault(p, []).append((int(hits[r]), int(c)))
        chosen: Dict[int, Tuple[int, int, float]] = {}
        for p, cands in ties.items():
            best = self._break_ties(p, cands)
            chosen[p] = (best[0], best[1], group_min[p])
        return chosen

    def _break_ties(
        self, p: int, cands: List[Tuple[int, int]]
    ) -> Tuple[int, int]:
        if len(cands) == 1:
            return cands[0]
        min_count = min(c for _, c in cands)
        cands = [gc for gc in cands if gc[1] == min_count]
        if len(cands) == 1:
            return cands[0]
        off = int(self.off[p])
        lex_rank = self.problems[p].expanded.lex_rank
        return min(
            cands,
            key=lambda gc: [
                lex_rank[j - off] for j in self._walk(gc[0], gc[1])
            ],
        )

    def _walk(self, node: int, count: int) -> List[int]:
        """Reconstruct a DP state's path (global ids, source first)."""
        seq = []
        while node != -1:
            seq.append(node)
            node = int(self.par[node, count])
            count -= 1
        seq.reverse()
        return seq

    # ------------------------------------------------------------------
    def _apply_slice(self, p: int, node: int, count: int, ratio) -> None:
        """Slice problem ``p`` along its critical path and propagate
        anchors — the scalar ``_slice`` / ``_propagate_anchors``
        arithmetic on the packed arrays."""
        problem = self.problems[p]
        off = int(self.off[p])
        expanded = problem.expanded
        indices = self._walk(node, count)
        # Pull everything into Python floats up front: the per-path loops
        # below are scalar, and float arithmetic on numpy scalars would
        # pay ufunc dispatch per op (the values are bit-identical either
        # way — float() of a float64 is exact).
        release = float(self.rel[node, count])
        deadline = self.deadline_anchor_l[node]
        ratio = float(ratio)
        problem.slices.append(
            SliceRecord(
                nodes=tuple(expanded.eids[j - off] for j in indices),
                ratio=ratio,
                release=release,
                deadline=deadline,
            )
        )
        vc_f = self.vc_f
        clock = release
        raw = []
        for j in indices:
            d = vc_f[j] + ratio
            nxt = clock + d
            raw.append((j, clock, nxt))
            clock = nxt
        if not math.isclose(clock, deadline, rel_tol=1e-9, abs_tol=1e-6):
            raise DistributionError(
                f"metric {problem.metric_name} broke the telescoping "
                f"property: path ends at {clock}, expected {deadline}"
            )
        windows = problem.windows
        has_release = self.has_release_l
        release_anchor = self.release_anchor_l
        has_deadline = self.has_deadline_l
        deadline_anchor = self.deadline_anchor_l
        remaining = self.remaining_l
        placed = []
        prev_deadline = release
        if problem.clamp:
            for j, w_release, w_deadline in raw:
                if has_release[j]:
                    anchor = release_anchor[j]
                    if anchor > w_release:
                        w_release = anchor
                if prev_deadline > w_release:
                    w_release = prev_deadline
                if has_deadline[j]:
                    anchor = deadline_anchor[j]
                    if anchor < w_deadline:
                        w_deadline = anchor
                if w_release > w_deadline:
                    w_deadline = w_release
                prev_deadline = w_deadline
                windows[j] = (w_release, w_deadline)
                placed.append((j, w_release, w_deadline))
        else:
            for j, w_release, w_deadline in raw:
                windows[j] = (w_release, w_deadline)
                placed.append((j, w_release, w_deadline))
        aff = self.affected
        remaining_a = self.remaining
        for j in indices:
            remaining[j] = False
            remaining_a[j] = False
            aff[j] = True
        self.valid[np.asarray(indices, dtype=np.intp)] = False
        # Path nodes ascend levels, so the path head is the shallowest
        # seed; anchor updates below only touch deeper nodes (succs) or
        # nodes the DP never reads deadline anchors for (preds).
        self.min_aff_level = min(
            self.min_aff_level, int(self.node_level[indices[0]])
        )
        self.n_rem[p] -= len(indices)
        succ_lists = expanded.succ_lists
        pred_lists = expanded.pred_lists
        has_release_a = self.has_release
        release_anchor_a = self.release_anchor
        has_deadline_a = self.has_deadline
        deadline_anchor_a = self.deadline_anchor
        cand_dirty = self.cand_dirty
        for j, w_release, w_deadline in placed:
            local = j - off
            for s in succ_lists[local]:
                g = s + off
                if remaining[g] and (
                    not has_release[g]
                    or w_deadline > release_anchor[g]
                ):
                    has_release[g] = True
                    release_anchor[g] = w_deadline
                    has_release_a[g] = True
                    release_anchor_a[g] = w_deadline
                    aff[g] = True
            for q in pred_lists[local]:
                g = q + off
                if remaining[g] and (
                    not has_deadline[g]
                    or w_release < deadline_anchor[g]
                ):
                    has_deadline[g] = True
                    deadline_anchor[g] = w_release
                    has_deadline_a[g] = True
                    deadline_anchor_a[g] = w_release
                    cand_dirty[g] = True
        self.total_slices += 1

    def _build_assignment(self, p: int) -> DeadlineAssignment:
        problem = self.problems[p]
        off = int(self.off[p])
        by_index = problem.expanded.by_index
        costs = problem.expanded.costs
        task_windows = {}
        message_windows = {}
        for j, (w_release, w_deadline) in problem.windows.items():
            local = j - off
            enode = by_index[local]
            window = Window(
                release=w_release,
                absolute_deadline=w_deadline,
                cost=costs[local],
            )
            if enode.is_task:
                task_windows[enode.task_id] = window
            else:
                message_windows[enode.edge] = window
        return DeadlineAssignment(
            graph=problem.expanded.graph,
            metric_name=problem.metric_name,
            comm_strategy_name=problem.estimator_name,
            windows=task_windows,
            message_windows=message_windows,
            slices=list(problem.slices),
            n_processors=problem.request.n_processors,
        )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def distribute_many(
    requests: Sequence[DistributeRequest],
    max_cells: int = DEFAULT_MAX_CELLS,
) -> List[DeadlineAssignment]:
    """Distribute every request, batching all kernel-supported ones.

    Returns one :class:`DeadlineAssignment` per request, in request
    order. Supported requests (see :func:`fallback_reason`) are packed
    and evaluated by the vectorized kernel; the rest run through their
    own distributor's scalar path. Either way each result is exactly
    what ``request.distributor.distribute(...)`` returns.
    """
    results: List[Optional[DeadlineAssignment]] = [None] * len(requests)
    batchable: List[Tuple[int, DistributeRequest]] = []
    for i, request in enumerate(requests):
        reason = fallback_reason(request.distributor)
        if reason is None:
            batchable.append((i, request))
        else:
            obs.count("batch.fallbacks")
            results[i] = _scalar_distribute(request)
    if batchable:
        obs.count("batch.requests", len(batchable))
        pack_slots: List[int] = []
        pack_problems: List[_Problem] = []
        total_nodes = 0
        max_level = 0

        def flush() -> None:
            nonlocal total_nodes, max_level
            if not pack_problems:
                return
            obs.count("batch.packs")
            for slot, assignment in zip(
                pack_slots, _Pack(pack_problems).run()
            ):
                results[slot] = assignment
            pack_slots.clear()
            pack_problems.clear()
            total_nodes = 0
            max_level = 0

        for i, request in batchable:
            problem = _Problem(request)
            depth = max(max_level, problem.view.max_level)
            if pack_problems and (
                (total_nodes + problem.view.n) * (depth + 1) > max_cells
            ):
                flush()
                depth = problem.view.max_level
            pack_slots.append(i)
            pack_problems.append(problem)
            total_nodes += problem.view.n
            max_level = depth
        flush()
    return results  # type: ignore[return-value]


def batch_distribute(
    distributor,
    graphs: Sequence[TaskGraph],
    n_processors: Optional[int] = None,
    total_capacity: Optional[float] = None,
    max_cells: int = DEFAULT_MAX_CELLS,
) -> List[DeadlineAssignment]:
    """Distribute one strategy over many graphs in a single call.

    Convenience wrapper over :func:`distribute_many`: every graph gets
    the same distributor and platform arguments, results are returned in
    graph order and match ``distributor.distribute(graph, ...)``
    bit-for-bit (or exactly, via the scalar fallback, when the
    distributor is unsupported).
    """
    return distribute_many(
        [
            DistributeRequest(
                graph=graph,
                distributor=distributor,
                n_processors=n_processors,
                total_capacity=total_capacity,
            )
            for graph in graphs
        ],
        max_cells=max_cells,
    )


def _scalar_distribute(request: DistributeRequest) -> DeadlineAssignment:
    """Run one request through its distributor's own scalar path."""
    kwargs = {}
    if request.n_processors is not None:
        kwargs["n_processors"] = request.n_processors
    if request.total_capacity is not None:
        kwargs["total_capacity"] = request.total_capacity
    return request.distributor.distribute(request.graph, **kwargs)
