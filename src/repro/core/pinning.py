"""Locality constraints: strict pins on a subset of subtasks (Section 1).

The paper's setting is *relaxed* locality: most subtasks may run anywhere,
but some — typically those bound to sensors and actuators in their physical
proximity — are pre-assigned to specific processors. This module provides
utilities for imposing such pins on a graph, so experiments can sweep the
"fraction of the system under strict constraints" axis.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, ProcessorId


def pin_subtasks(
    graph: TaskGraph, assignment: Dict[NodeId, ProcessorId]
) -> TaskGraph:
    """Return a copy of ``graph`` with the given subtasks pinned."""
    out = graph.copy()
    for node_id, proc in assignment.items():
        if node_id not in out:
            raise ValidationError(f"cannot pin unknown subtask {node_id!r}")
        if proc < 0:
            raise ValidationError(f"cannot pin {node_id!r} to processor {proc}")
        out.node(node_id).pinned_to = proc
    return out


def pin_random_fraction(
    graph: TaskGraph,
    fraction: float,
    n_processors: int,
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """Pin a uniformly random ``fraction`` of subtasks to random processors.

    ``fraction = 0`` returns an unpinned copy (fully relaxed);
    ``fraction = 1`` pins everything (strict locality, the BST setting).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValidationError(f"fraction must be in [0, 1], got {fraction}")
    if n_processors < 1:
        raise ValidationError(f"n_processors must be >= 1, got {n_processors}")
    rng = rng if rng is not None else random.Random()
    ids = graph.node_ids()
    count = int(round(fraction * len(ids)))
    chosen = rng.sample(ids, count)
    return pin_subtasks(
        graph, {node_id: rng.randrange(n_processors) for node_id in chosen}
    )


def pin_boundary_subtasks(
    graph: TaskGraph,
    n_processors: int,
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """Pin exactly the input and output subtasks (sensor/actuator pattern).

    This is the paper's motivating example of strict constraints: tasks
    "constrained by demands of resources in their physical proximity such
    as sensors and actuators" — the graph's boundary.
    """
    if n_processors < 1:
        raise ValidationError(f"n_processors must be >= 1, got {n_processors}")
    rng = rng if rng is not None else random.Random()
    boundary = sorted(set(graph.input_subtasks()) | set(graph.output_subtasks()))
    return pin_subtasks(
        graph, {node_id: rng.randrange(n_processors) for node_id in boundary}
    )


def pinned_fraction(graph: TaskGraph) -> float:
    """Fraction of subtasks under strict locality constraints."""
    if graph.n_subtasks == 0:
        raise ValidationError("pinned fraction of an empty graph")
    return len(graph.pinned_subtasks()) / graph.n_subtasks


def validate_pins(graph: TaskGraph, n_processors: int) -> None:
    """Check every pin references an existing processor."""
    for node_id in graph.pinned_subtasks():
        proc = graph.node(node_id).pinned_to
        if proc is not None and proc >= n_processors:
            raise ValidationError(
                f"subtask {node_id!r} pinned to processor {proc}, but the "
                f"platform has only {n_processors} processors"
            )
