"""The expanded graph: computation + materialized communication subtasks.

Deadline distribution (paper Section 4.2) treats communication subtasks as
first-class path members whenever their estimated cost is non-negligible.
This module builds that view: every arc whose estimated cost is positive
becomes an :class:`ENode` of kind ``"comm"`` spliced between its endpoints;
zero-cost arcs remain plain edges. The expanded graph is an internal data
structure of the ``repro.core`` layer — users interact with
:class:`~repro.graph.taskgraph.TaskGraph` only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.commcost import CommCostEstimator
from repro.graph.taskgraph import TaskGraph
from repro.types import EdgeId, NodeId, Time

#: Kind tags of expanded-graph nodes.
TASK = "task"
COMM = "comm"


@dataclass(frozen=True)
class ENode:
    """One node of the expanded graph.

    ``eid`` is unique across both kinds (comm nodes use the synthetic
    ``chi(src->dst)`` id). ``cost`` is the execution time for task nodes and
    the *estimated* communication cost for comm nodes.
    """

    eid: str
    kind: str
    cost: Time
    task_id: Optional[NodeId] = None
    edge: Optional[EdgeId] = None

    @property
    def is_task(self) -> bool:
        return self.kind == TASK

    @property
    def is_comm(self) -> bool:
        return self.kind == COMM


class ExpandedGraph:
    """Expanded view of a task graph under one comm-cost estimation."""

    def __init__(self, graph: TaskGraph, estimator: CommCostEstimator) -> None:
        self.graph = graph
        self.estimator = estimator
        self.nodes: Dict[str, ENode] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        #: Static anchors from the application (input releases, output
        #: end-to-end deadlines), keyed by expanded node id.
        self.static_release: Dict[str, Time] = {}
        self.static_deadline: Dict[str, Time] = {}
        self._build()

    def _build(self) -> None:
        graph = self.graph
        for sub in graph.nodes():
            enode = ENode(
                eid=sub.node_id, kind=TASK, cost=sub.wcet, task_id=sub.node_id
            )
            self.nodes[enode.eid] = enode
            self._succ[enode.eid] = []
            self._pred[enode.eid] = []
        for message in graph.messages():
            estimated = self.estimator.estimate(graph, message)
            if estimated > 0:
                comm = ENode(
                    eid=f"chi({message.src}->{message.dst})",
                    kind=COMM,
                    cost=estimated,
                    edge=(message.src, message.dst),
                )
                self.nodes[comm.eid] = comm
                self._succ[comm.eid] = [message.dst]
                self._pred[comm.eid] = [message.src]
                self._succ[message.src].append(comm.eid)
                self._pred[message.dst].append(comm.eid)
            else:
                self._succ[message.src].append(message.dst)
                self._pred[message.dst].append(message.src)
        # Anchors come from ANY node carrying one, not just the boundary:
        # graph validation requires them on inputs/outputs, but interior
        # anchors (e.g. a periodic task's own deadline surviving an
        # unrolling that gave it downstream consumers) are honoured too —
        # a path may legitimately start or end at an interior anchor.
        for sub in graph.nodes():
            if sub.release is not None:
                self.static_release[sub.node_id] = sub.release
            if sub.end_to_end_deadline is not None:
                self.static_deadline[sub.node_id] = sub.end_to_end_deadline
        self._topo = self._topological_order()

    def _topological_order(self) -> List[str]:
        in_deg = {eid: len(self._pred[eid]) for eid in self.nodes}
        ready = sorted(eid for eid, d in in_deg.items() if d == 0)
        order: List[str] = []
        head = 0
        ready = list(ready)
        while head < len(ready):
            eid = ready[head]
            head += 1
            order.append(eid)
            for s in self._succ[eid]:
                in_deg[s] -= 1
                if in_deg[s] == 0:
                    ready.append(s)
        # The underlying task graph is validated acyclic; splicing comm
        # nodes into arcs cannot create cycles.
        assert len(order) == len(self.nodes)
        return order

    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        return list(self._topo)

    def successors(self, eid: str) -> List[str]:
        return list(self._succ[eid])

    def predecessors(self, eid: str) -> List[str]:
        return list(self._pred[eid])

    def node(self, eid: str) -> ENode:
        return self.nodes[eid]

    def task_nodes(self) -> List[ENode]:
        return [n for n in self.nodes.values() if n.is_task]

    def comm_nodes(self) -> List[ENode]:
        return [n for n in self.nodes.values() if n.is_comm]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, eid: object) -> bool:
        return eid in self.nodes
