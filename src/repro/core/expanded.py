"""The expanded graph: computation + materialized communication subtasks.

Deadline distribution (paper Section 4.2) treats communication subtasks as
first-class path members whenever their estimated cost is non-negligible.
This module builds that view: every arc whose estimated cost is positive
becomes an :class:`ENode` of kind ``"comm"`` spliced between its endpoints;
zero-cost arcs remain plain edges. The expanded graph is an internal data
structure of the ``repro.core`` layer — users interact with
:class:`~repro.graph.taskgraph.TaskGraph` only.

Representation
--------------
The expansion is a thin integer-indexed overlay on the graph's compiled
:class:`~repro.graph.indexed.GraphIndex`: expanded node ``i`` for
``i < n_tasks`` *is* dense task id ``i`` of the index; materialized
communication subtasks follow, in edge insertion order. Successor /
predecessor adjacency, costs, anchors and the topological order are flat
arrays over those ids, which is what the critical-path search and the
slicer iterate. The string-keyed accessors (``successors("a")`` etc.) are
a compatibility surface over the same arrays.

The topological order follows the unified contract of
:mod:`repro.graph.indexed`: Kahn's algorithm, insertion order among
simultaneously ready nodes (task nodes in graph insertion order, comm
nodes in message insertion order).

Reuse
-----
An expansion depends only on (graph structure, node/message values,
estimator) — **not** on the slicing metric and not on the platform. Build
it through :meth:`ExpandedGraph.for_graph` and one instance is cached on
the graph's index and shared by every metric and every system size of a
trial; the cache keys on the estimator's :meth:`cache_key
<repro.core.commcost.CommCostEstimator.cache_key>` plus the index's value
fingerprint, so attribute mutation between calls rebuilds instead of
serving stale costs. Instances must be treated as immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.commcost import CommCostEstimator
from repro.graph.taskgraph import TaskGraph
from repro.obs import runtime as obs
from repro.types import EdgeId, NodeId, Time

#: Kind tags of expanded-graph nodes.
TASK = "task"
COMM = "comm"


@dataclass(frozen=True)
class ENode:
    """One node of the expanded graph.

    ``eid`` is unique across both kinds (comm nodes use the synthetic
    ``chi(src->dst)`` id). ``cost`` is the execution time for task nodes and
    the *estimated* communication cost for comm nodes. ``index`` is the
    node's dense id in the expansion's arrays.
    """

    eid: str
    kind: str
    cost: Time
    task_id: Optional[NodeId] = None
    edge: Optional[EdgeId] = None
    index: int = -1

    @property
    def is_task(self) -> bool:
        return self.kind == TASK

    @property
    def is_comm(self) -> bool:
        return self.kind == COMM


class ExpandedGraph:
    """Expanded view of a task graph under one comm-cost estimation."""

    def __init__(self, graph: TaskGraph, estimator: CommCostEstimator) -> None:
        self.graph = graph
        self.estimator = estimator
        self.nodes: Dict[str, ENode] = {}
        #: ENode per dense expanded id (tasks first, then comm nodes).
        self.by_index: List[ENode] = []
        #: Expanded-node id strings, by dense id.
        self.eids: List[str] = []
        #: Node cost per dense id.
        self.costs: List[Time] = []
        #: Flat adjacency over dense ids.
        self.succ_lists: List[List[int]] = []
        self.pred_lists: List[List[int]] = []
        #: Static anchors from the application (input releases, output
        #: end-to-end deadlines), keyed by expanded node id.
        self.static_release: Dict[str, Time] = {}
        self.static_deadline: Dict[str, Time] = {}
        #: Array form of the static anchors (value meaningful only where
        #: the ``has_*`` byte is set).
        self.release_anchor: List[Time] = []
        self.deadline_anchor: List[Time] = []
        self.has_release: bytearray = bytearray()
        self.has_deadline: bytearray = bytearray()
        self._build()

    # ------------------------------------------------------------------
    # Cached construction
    # ------------------------------------------------------------------
    @classmethod
    def for_graph(
        cls, graph: TaskGraph, estimator: CommCostEstimator
    ) -> "ExpandedGraph":
        """The expansion of ``graph`` under ``estimator``, cached.

        One expansion per (graph structure, values, estimator) is built
        and shared across metrics and platform sizes; estimators whose
        :meth:`~repro.core.commcost.CommCostEstimator.cache_key` is
        ``None`` (stateful ones, e.g. Oracle) are built fresh each call.
        """
        key = estimator.cache_key()
        if key is None:
            obs.count("expanded.cache.uncacheable")
            return cls(graph, estimator)
        index = graph.index()
        fingerprint = index.value_fingerprint()
        cached = index._expanded_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            expanded = cached[1]
            assert isinstance(expanded, cls)
            obs.count("expanded.cache.hits")
            return expanded
        obs.count("expanded.cache.misses")
        expanded = cls(graph, estimator)
        index._expanded_cache[key] = (fingerprint, expanded)
        return expanded

    def _build(self) -> None:
        graph = self.graph
        index = graph.index()
        self.index = index
        self.n_tasks = index.n_nodes

        for i, sub in enumerate(index.subtasks):
            enode = ENode(
                eid=sub.node_id, kind=TASK, cost=sub.wcet,
                task_id=sub.node_id, index=i,
            )
            self._append_node(enode)
        for e, message in enumerate(index.edge_messages):
            src, dst = index.edge_src[e], index.edge_dst[e]
            estimated = self.estimator.estimate(graph, message)
            if estimated > 0:
                comm = ENode(
                    eid=f"chi({message.src}->{message.dst})",
                    kind=COMM,
                    cost=estimated,
                    edge=(message.src, message.dst),
                    index=len(self.by_index),
                )
                self._append_node(comm)
                self.succ_lists[comm.index].append(dst)
                self.pred_lists[comm.index].append(src)
                self.succ_lists[src].append(comm.index)
                self.pred_lists[dst].append(comm.index)
            else:
                self.succ_lists[src].append(dst)
                self.pred_lists[dst].append(src)
        # Anchors come from ANY node carrying one, not just the boundary:
        # graph validation requires them on inputs/outputs, but interior
        # anchors (e.g. a periodic task's own deadline surviving an
        # unrolling that gave it downstream consumers) are honoured too —
        # a path may legitimately start or end at an interior anchor.
        for i, sub in enumerate(index.subtasks):
            if sub.release is not None:
                self.static_release[sub.node_id] = sub.release
                self.release_anchor[i] = sub.release
                self.has_release[i] = 1
            if sub.end_to_end_deadline is not None:
                self.static_deadline[sub.node_id] = sub.end_to_end_deadline
                self.deadline_anchor[i] = sub.end_to_end_deadline
                self.has_deadline[i] = 1
        self._topo = self._topological_order()
        #: Deterministic tie-break helper: rank of each node's eid among
        #: all eids in lexicographic order (comparing rank sequences is
        #: exactly comparing eid sequences).
        rank = sorted(range(len(self.eids)), key=lambda i: self.eids[i])
        self.lex_rank: List[int] = [0] * len(rank)
        for r, i in enumerate(rank):
            self.lex_rank[i] = r

    def _append_node(self, enode: ENode) -> None:
        self.nodes[enode.eid] = enode
        self.by_index.append(enode)
        self.eids.append(enode.eid)
        self.costs.append(enode.cost)
        self.succ_lists.append([])
        self.pred_lists.append([])
        self.release_anchor.append(0.0)
        self.deadline_anchor.append(0.0)
        self.has_release.append(0)
        self.has_deadline.append(0)

    def _topological_order(self) -> List[int]:
        n = len(self.by_index)
        in_deg = [len(p) for p in self.pred_lists]
        order = [i for i in range(n) if in_deg[i] == 0]
        head = 0
        while head < len(order):
            i = order[head]
            head += 1
            for s in self.succ_lists[i]:
                in_deg[s] -= 1
                if in_deg[s] == 0:
                    order.append(s)
        # The underlying task graph is validated acyclic; splicing comm
        # nodes into arcs cannot create cycles.
        assert len(order) == n
        return order

    # ------------------------------------------------------------------
    # Integer API (the hot path)
    # ------------------------------------------------------------------
    @property
    def topo_indices(self) -> List[int]:
        """Dense ids in topological order (shared list — read-only)."""
        return self._topo

    # ------------------------------------------------------------------
    # String compatibility API
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        return [self.eids[i] for i in self._topo]

    def successors(self, eid: str) -> List[str]:
        return [self.eids[i] for i in self.succ_lists[self.nodes[eid].index]]

    def predecessors(self, eid: str) -> List[str]:
        return [self.eids[i] for i in self.pred_lists[self.nodes[eid].index]]

    def node(self, eid: str) -> ENode:
        return self.nodes[eid]

    def task_nodes(self) -> List[ENode]:
        return [n for n in self.by_index if n.is_task]

    def comm_nodes(self) -> List[ENode]:
        return [n for n in self.by_index if n.is_comm]

    def __len__(self) -> int:
        return len(self.by_index)

    def __contains__(self, eid: object) -> bool:
        return eid in self.nodes
