"""Related-work deadline-distribution baselines (paper Section 2).

The paper positions BST/AST against a family of earlier end-to-end
deadline-assignment strategies. This module implements the classical ones
so the library can compare the slicing techniques against the related work
the paper surveys, on the same workloads and the same measurement:

* Kao & Garcia-Molina (ICDCS'93/'94), for soft real-time systems with
  known assignments:

  - :class:`UltimateDeadline` (UD) — every subtask simply inherits the
    end-to-end deadline of its downstream output;
  - :class:`EffectiveDeadline` (ED) — UD minus the execution time still to
    come downstream (the subtask's *effective* latest completion);
  - :class:`EqualSlack` (EQS) — spread the remaining slack equally over
    the remaining downstream stages;
  - :class:`EqualFlexibility` (EQF) — spread the remaining slack in
    proportion to the remaining execution times.

* Bettati & Liu (ICDCS'92), flow-shop scheduling:

  - :class:`EvenFlexibility` (DIV) — divide the end-to-end window evenly
    over the stages of each path ("distributing end-to-end deadlines
    evenly over subtasks").

All of them were designed for *sequential* pipelines; on a general DAG we
use the standard conservative generalization: a subtask's downstream
quantities are taken along its *worst* (heaviest) downstream path, and
when windows from several outputs disagree the tightest wins. Deadlines
are then tightened to the literature's consistency notion —
``deadline(pred) <= deadline(succ) − c(succ)`` — and release times are the
earliest-start estimates along the heaviest upstream path. Unlike the
slicing techniques these strategies do not produce non-overlapping
*windows* (that concept is BST's contribution); the deadlines are what the
scheduler and the lateness measurement consume.

These strategies ignore communication costs by design (their original
setting has none) — equivalent to the CCNE world-view.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.core.annotations import DeadlineAssignment, Window
from repro.errors import DistributionError, ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, Time


class BaselineDistributor(ABC):
    """A non-slicing deadline-distribution strategy.

    Subclasses define :meth:`_absolute_deadline` from per-node downstream
    aggregates; the base class derives consistent release times and
    packages the result as a :class:`DeadlineAssignment`.
    """

    #: Name recorded on the produced assignments.
    name: str = "abstract"

    def distribute(
        self,
        graph: TaskGraph,
        n_processors: Optional[int] = None,
        total_capacity: Optional[float] = None,
    ) -> DeadlineAssignment:
        """Assign windows to every subtask of ``graph``.

        ``n_processors``/``total_capacity`` are accepted for interface
        compatibility with the slicing distributors; these strategies are
        platform-oblivious and ignore both.
        """
        graph.validate()
        down = _downstream_aggregates(graph)
        up = _upstream_aggregates(graph)
        deadlines: Dict[NodeId, Time] = {}
        for node_id in graph.node_ids():
            deadlines[node_id] = self._absolute_deadline(
                graph, node_id, down[node_id], up[node_id]
            )
        # Tighten to precedence consistency: a node must complete before
        # the earliest successor deadline minus that successor's wcet.
        for node_id in reversed(graph.topological_order()):
            for succ in graph.successors(node_id):
                bound = deadlines[succ] - graph.node(succ).wcet
                if bound < deadlines[node_id]:
                    deadlines[node_id] = bound
        # Releases follow forward: earliest-start given upstream deadlines
        # is not meaningful for these strategies (they predate windows), so
        # use the canonical earliest release: heaviest upstream work.
        windows: Dict[NodeId, Window] = {}
        for node_id in graph.node_ids():
            release = up[node_id].release
            windows[node_id] = Window(
                release=release,
                absolute_deadline=deadlines[node_id],
                cost=graph.node(node_id).wcet,
            )
        return DeadlineAssignment(
            graph=graph,
            metric_name=self.name,
            comm_strategy_name="CCNE",
            windows=windows,
            message_windows={},
            slices=[],
            n_processors=n_processors,
        )

    @abstractmethod
    def _absolute_deadline(
        self,
        graph: TaskGraph,
        node_id: NodeId,
        down: "_Downstream",
        up: "_Upstream",
    ) -> Time:
        """The strategy's absolute deadline for one subtask."""


class _Downstream:
    """Worst-path downstream aggregates of one node."""

    __slots__ = ("deadline", "remaining_exec", "remaining_stages")

    def __init__(self, deadline: Time, remaining_exec: Time, remaining_stages: int):
        #: Tightest end-to-end deadline among reachable outputs (via the
        #: binding worst path).
        self.deadline = deadline
        #: Execution time strictly after this node along the binding path.
        self.remaining_exec = remaining_exec
        #: Number of subtasks strictly after this node along the binding path.
        self.remaining_stages = remaining_stages


class _Upstream:
    """Worst-path upstream aggregates of one node."""

    __slots__ = ("release", "elapsed_exec", "elapsed_stages")

    def __init__(self, release: Time, elapsed_exec: Time, elapsed_stages: int):
        #: Earliest consistent release: latest (anchor + upstream work).
        self.release = release
        #: Execution time strictly before this node along the binding path.
        self.elapsed_exec = elapsed_exec
        #: Number of subtasks strictly before this node along the binding path.
        self.elapsed_stages = elapsed_stages


def _downstream_aggregates(graph: TaskGraph) -> Dict[NodeId, _Downstream]:
    """Per node: the binding (tightest-slack) downstream path's numbers.

    The binding output for a node is the one minimizing
    ``deadline − remaining execution time`` — the conservative choice every
    strategy here needs (a window derived from it satisfies all others).
    """
    out: Dict[NodeId, _Downstream] = {}
    for node_id in reversed(graph.topological_order()):
        node = graph.node(node_id)
        if not graph.successors(node_id):
            anchor = node.end_to_end_deadline
            if anchor is None:
                raise ValidationError(
                    f"output subtask {node_id!r} lacks an end-to-end deadline"
                )
            out[node_id] = _Downstream(anchor, 0.0, 0)
            continue
        best: Optional[_Downstream] = None
        for succ in graph.successors(node_id):
            tail = out[succ]
            candidate = _Downstream(
                deadline=tail.deadline,
                remaining_exec=tail.remaining_exec + graph.node(succ).wcet,
                remaining_stages=tail.remaining_stages + 1,
            )
            if best is None or (
                candidate.deadline - candidate.remaining_exec
                < best.deadline - best.remaining_exec
            ):
                best = candidate
        assert best is not None
        out[node_id] = best
    return out


def _upstream_aggregates(graph: TaskGraph) -> Dict[NodeId, _Upstream]:
    """Per node: the binding (latest-arrival) upstream path's numbers."""
    out: Dict[NodeId, _Upstream] = {}
    for node_id in graph.topological_order():
        node = graph.node(node_id)
        if not graph.predecessors(node_id):
            anchor = node.release
            if anchor is None:
                raise ValidationError(
                    f"input subtask {node_id!r} lacks a release time"
                )
            out[node_id] = _Upstream(anchor, 0.0, 0)
            continue
        best: Optional[_Upstream] = None
        for pred in graph.predecessors(node_id):
            head = out[pred]
            pred_wcet = graph.node(pred).wcet
            candidate = _Upstream(
                # The node cannot start before the binding upstream path's
                # work completes; elapsed figures are relative to the
                # binding input's release, which candidate.release hides,
                # so carry (input release, elapsed) separately.
                release=head.release + pred_wcet,
                elapsed_exec=head.elapsed_exec + pred_wcet,
                elapsed_stages=head.elapsed_stages + 1,
            )
            if best is None or candidate.release > best.release:
                best = candidate
        assert best is not None
        out[node_id] = best
    return out


class UltimateDeadline(BaselineDistributor):
    """UD: every subtask inherits its binding output's end-to-end deadline.

    The weakest strategy — interior subtasks see no urgency at all — and
    the classical straw-man in the deadline-assignment literature.
    """

    name = "UD"

    def _absolute_deadline(self, graph, node_id, down, up):
        return down.deadline


class EffectiveDeadline(BaselineDistributor):
    """ED: ultimate deadline minus the downstream execution still to come."""

    name = "ED"

    def _absolute_deadline(self, graph, node_id, down, up):
        return down.deadline - down.remaining_exec


class EqualSlack(BaselineDistributor):
    """EQS: remaining slack divided equally over the remaining stages.

    ``D − (t_arrival + remaining exec)`` is the path slack seen at this
    node; the node keeps ``1/(k+1)`` of it (itself plus k downstream
    stages).
    """

    name = "EQS"

    def _absolute_deadline(self, graph, node_id, down, up):
        node = graph.node(node_id)
        arrival = up.release
        finish_earliest = arrival + node.wcet
        slack = down.deadline - (finish_earliest + down.remaining_exec)
        share = slack / (down.remaining_stages + 1)
        return finish_earliest + share


class EqualFlexibility(BaselineDistributor):
    """EQF: remaining slack divided in proportion to execution times.

    The node keeps ``c_i / (c_i + remaining exec)`` of the remaining
    slack — Kao & Garcia-Molina's best-performing sequential strategy.
    """

    name = "EQF"

    def _absolute_deadline(self, graph, node_id, down, up):
        node = graph.node(node_id)
        arrival = up.release
        finish_earliest = arrival + node.wcet
        remaining = node.wcet + down.remaining_exec
        slack = down.deadline - (finish_earliest + down.remaining_exec)
        share = slack * (node.wcet / remaining) if remaining > 0 else 0.0
        return finish_earliest + share


class EvenFlexibility(BaselineDistributor):
    """DIV: the end-to-end window divided evenly over the path stages.

    Bettati & Liu's flow-shop assignment: stage ``j`` of ``m`` completes by
    ``release + (j/m) × (D − release)``, independent of execution times.
    """

    name = "DIV"

    def _absolute_deadline(self, graph, node_id, down, up):
        stages_total = up.elapsed_stages + 1 + down.remaining_stages
        # Anchor the division at the binding input's release.
        input_release = up.release - up.elapsed_exec
        fraction = (up.elapsed_stages + 1) / stages_total
        return input_release + fraction * (down.deadline - input_release)


#: Baselines by table name.
BASELINES = {
    "UD": UltimateDeadline,
    "ED": EffectiveDeadline,
    "EQS": EqualSlack,
    "EQF": EqualFlexibility,
    "DIV": EvenFlexibility,
}


def make_baseline(name: str) -> BaselineDistributor:
    """Instantiate a related-work baseline by name."""
    try:
        cls = BASELINES[name.upper()]
    except KeyError:
        raise DistributionError(
            f"unknown baseline {name!r}; expected one of {sorted(BASELINES)}"
        ) from None
    return cls()
