"""Result objects of deadline distribution.

A :class:`DeadlineAssignment` is the "annotated task graph" the paper's
algorithm produces: a release time and relative deadline per subtask, plus
windows for every materialized communication subtask, plus a record of the
slices (critical paths) the algorithm committed, in order — useful both for
debugging and for the validation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownNodeError
from repro.graph.taskgraph import TaskGraph
from repro.types import EdgeId, NodeId, Time


@dataclass(frozen=True)
class Window:
    """One execution window: ``[release, absolute_deadline]`` for an entity
    whose (estimated) cost is ``cost``."""

    release: Time
    absolute_deadline: Time
    cost: Time

    @property
    def relative_deadline(self) -> Time:
        """Paper's ``d_i``: the time budget from release to deadline."""
        return self.absolute_deadline - self.release

    @property
    def laxity(self) -> Time:
        """Pre-schedule laxity: how much delay the window tolerates."""
        return self.relative_deadline - self.cost

    @property
    def is_degenerate(self) -> bool:
        """True when the window cannot even hold its own cost."""
        return self.laxity < 0


@dataclass(frozen=True)
class SliceRecord:
    """One committed critical path: which nodes, at what metric value."""

    nodes: Tuple[str, ...]
    ratio: float
    release: Time
    deadline: Time


@dataclass
class DeadlineAssignment:
    """Deadline distribution output for one task graph.

    ``windows`` maps every subtask id to its window; ``message_windows``
    maps the arcs whose estimated communication cost was non-negligible
    (only those receive windows — paper Section 4.2, step 4).
    """

    graph: TaskGraph
    metric_name: str
    comm_strategy_name: str
    windows: Dict[NodeId, Window]
    message_windows: Dict[EdgeId, Window]
    slices: List[SliceRecord] = field(default_factory=list)
    n_processors: Optional[int] = None

    def window(self, node_id: NodeId) -> Window:
        try:
            return self.windows[node_id]
        except KeyError:
            raise UnknownNodeError(
                f"no window assigned for subtask {node_id!r}"
            ) from None

    def release(self, node_id: NodeId) -> Time:
        return self.window(node_id).release

    def absolute_deadline(self, node_id: NodeId) -> Time:
        return self.window(node_id).absolute_deadline

    def relative_deadline(self, node_id: NodeId) -> Time:
        return self.window(node_id).relative_deadline

    def laxity(self, node_id: NodeId) -> Time:
        return self.window(node_id).laxity

    def message_window(self, src: NodeId, dst: NodeId) -> Optional[Window]:
        """The window of the arc's communication subtask, or ``None`` when
        its estimated cost was negligible (no window assigned)."""
        return self.message_windows.get((src, dst))

    def min_laxity(self) -> Time:
        """Minimum subtask laxity — BST's notion of distribution quality."""
        return min(w.laxity for w in self.windows.values())

    def degenerate_windows(self) -> List[NodeId]:
        """Subtasks whose window is smaller than their execution time."""
        return [n for n, w in self.windows.items() if w.is_degenerate]

    def n_slices(self) -> int:
        return len(self.slices)

    def __repr__(self) -> str:
        return (
            f"DeadlineAssignment(metric={self.metric_name}, "
            f"comm={self.comm_strategy_name}, windows={len(self.windows)}, "
            f"slices={len(self.slices)})"
        )
