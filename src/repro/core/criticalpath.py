"""Critical-path search for the slicing algorithm (paper Figure 1, step 3).

A *candidate path* runs through unassigned expanded-graph nodes from a
release-anchored node to a deadline-anchored node; the critical path is the
candidate minimizing the slicing metric R. The paper finds it with a
breadth-first traversal; we use an equivalent dynamic program over the
topological order that is exact for the paper's metrics:

* PURE-family metrics (``uses_count = True``) depend on a path only through
  ``release + Σc'`` and the node count, so per (node, count) a single best
  state — maximum ``release + Σc'`` — suffices.
* NORM (``uses_count = False``) depends on ``release`` and ``Σc``
  separately; per node we keep the Pareto frontier over (release, Σc),
  larger-is-better in both coordinates. The dominance argument is exact
  whenever candidate end-to-end windows are non-negative; with negative
  windows (over-constrained sub-problems) the pruning may return a
  near-critical path, which only affects already-infeasible cases.

Ties between equal-R candidates are broken deterministically (the paper
breaks them arbitrarily): by fewer nodes, then by the path's id sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.expanded import ExpandedGraph
from repro.core.metrics import SlicingMetric
from repro.errors import DistributionError
from repro.types import Time


@dataclass(frozen=True)
class CriticalPath:
    """The outcome of one critical-path search."""

    nodes: Tuple[str, ...]
    ratio: float
    release: Time
    deadline: Time

    @property
    def end_to_end(self) -> Time:
        return self.deadline - self.release

    def __len__(self) -> int:
        return len(self.nodes)


class _State:
    """One partial path ending at ``node``."""

    __slots__ = ("release", "cost", "count", "node", "parent")

    def __init__(
        self,
        release: Time,
        cost: Time,
        count: int,
        node: str,
        parent: Optional["_State"],
    ) -> None:
        self.release = release
        self.cost = cost
        self.count = count
        self.node = node
        self.parent = parent

    def path(self) -> Tuple[str, ...]:
        nodes: List[str] = []
        state: Optional[_State] = self
        while state is not None:
            nodes.append(state.node)
            state = state.parent
        return tuple(reversed(nodes))


def find_critical_path(
    expanded: ExpandedGraph,
    metric: SlicingMetric,
    unassigned: Set[str],
    pending_release: Mapping[str, Time],
    pending_deadline: Mapping[str, Time],
) -> CriticalPath:
    """Return the candidate path minimizing ``metric`` among ``unassigned``.

    ``pending_release``/``pending_deadline`` carry the current anchors
    (static application anchors plus anchors inherited from already-sliced
    neighbours). Raises :class:`DistributionError` when no candidate path
    exists — which cannot happen for a validated graph and indicates
    corrupted anchor bookkeeping.
    """
    states: Dict[str, List[_State]] = {}
    best: Optional[Tuple[float, int, _State]] = None

    for eid in expanded.topological_order():
        if eid not in unassigned:
            continue
        node = expanded.node(eid)
        vcost = metric.virtual_cost(node)
        incoming: List[_State] = []
        if eid in pending_release:
            incoming.append(_State(pending_release[eid], vcost, 1, eid, None))
        for pred in expanded.predecessors(eid):
            for s in states.get(pred, ()):
                incoming.append(
                    _State(s.release, s.cost + vcost, s.count + 1, eid, s)
                )
        if not incoming:
            continue
        kept = _prune(incoming, metric.uses_count)
        states[eid] = kept
        if eid in pending_deadline:
            deadline = pending_deadline[eid]
            for s in kept:
                ratio = metric.ratio(deadline - s.release, s.cost, s.count)
                candidate = (ratio, s.count, s)
                if best is None or _better(candidate, best):
                    best = candidate

    if best is None:
        raise DistributionError(
            "no candidate path between anchors; anchor bookkeeping is corrupt"
        )
    _, __, state = best
    end = state.node
    return CriticalPath(
        nodes=state.path(),
        ratio=best[0],
        release=state.release,
        deadline=pending_deadline[end],
    )


def _better(a: Tuple[float, int, _State], b: Tuple[float, int, _State]) -> bool:
    """Deterministic candidate ordering: smaller R, then shorter path,
    then lexicographically smaller node sequence."""
    if a[0] != b[0]:
        return a[0] < b[0]
    if a[1] != b[1]:
        return a[1] < b[1]
    return a[2].path() < b[2].path()


def _prune(incoming: List[_State], uses_count: bool) -> List[_State]:
    if uses_count:
        # Keep, per path length, the single state maximizing release + cost.
        by_count: Dict[int, _State] = {}
        for s in incoming:
            cur = by_count.get(s.count)
            if cur is None or s.release + s.cost > cur.release + cur.cost:
                by_count[s.count] = s
        return [by_count[n] for n in sorted(by_count)]
    # Pareto frontier over (release, cost), larger-is-better.
    ordered = sorted(incoming, key=lambda s: (-s.release, -s.cost))
    kept: List[_State] = []
    best_cost = float("-inf")
    for s in ordered:
        if s.cost > best_cost:
            kept.append(s)
            best_cost = s.cost
    return kept
