"""Critical-path search for the slicing algorithm (paper Figure 1, step 3).

A *candidate path* runs through unassigned expanded-graph nodes from a
release-anchored node to a deadline-anchored node; the critical path is the
candidate minimizing the slicing metric R. The paper finds it with a
breadth-first traversal; we use an equivalent dynamic program over the
topological order that is exact for the paper's metrics:

* PURE-family metrics (``uses_count = True``) depend on a path only through
  ``release + Σc'`` and the node count, so per (node, count) a single best
  state — maximum ``release + Σc'`` — suffices.
* NORM (``uses_count = False``) depends on ``release`` and ``Σc``
  separately; per node we keep the Pareto frontier over (release, Σc),
  larger-is-better in both coordinates. The dominance argument is exact
  whenever candidate end-to-end windows are non-negative; with negative
  windows (over-constrained sub-problems) the pruning may return a
  near-critical path, which only affects already-infeasible cases.

Ties between equal-R candidates are broken deterministically (the paper
breaks them arbitrarily): by fewer nodes, then by the path's id sequence.

The search runs on the expansion's dense integer ids
(:func:`find_critical_path_indexed`), walking only the still-unassigned
nodes the slicer hands it; id-sequence ties compare via the expansion's
precomputed lexicographic ranks, which orders exactly like the string
sequences did. :func:`find_critical_path` is the string-keyed wrapper kept
for callers addressing nodes by id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.expanded import ExpandedGraph
from repro.core.metrics import SlicingMetric
from repro.errors import DistributionError
from repro.types import Time


@dataclass(frozen=True)
class CriticalPath:
    """The outcome of one critical-path search."""

    nodes: Tuple[str, ...]
    ratio: float
    release: Time
    deadline: Time
    #: Dense expanded-graph ids of ``nodes`` (same order); empty when the
    #: path was built outside the indexed search.
    indices: Tuple[int, ...] = field(default=(), compare=False)

    @property
    def end_to_end(self) -> Time:
        return self.deadline - self.release

    def __len__(self) -> int:
        return len(self.nodes)


# A partial path ending at a node is a plain tuple
#   (release, cost, count, node, parent)
# with ``parent`` the predecessor state tuple (or None); tuples keep the
# inner DP loop allocation-light. ``_state_path`` rebuilds the node-id
# sequence by walking the parent chain.
_State = tuple

_BY_RELEASE = itemgetter(0)
_BY_COST = itemgetter(1)


def _state_path(state) -> Tuple[int, ...]:
    nodes: List[int] = []
    while state is not None:
        nodes.append(state[3])
        state = state[4]
    return tuple(reversed(nodes))


def find_critical_path_indexed(
    expanded: ExpandedGraph,
    metric: SlicingMetric,
    remaining: Sequence[int],
    has_release: bytearray,
    release_anchor: List[Time],
    has_deadline: bytearray,
    deadline_anchor: List[Time],
    vcost: List[Time],
) -> CriticalPath:
    """Return the candidate path minimizing ``metric``, on dense ids.

    ``remaining`` must list the unassigned dense ids **in topological
    order** — the dynamic program walks exactly that list, so each slicing
    iteration pays only for what is still unassigned. ``has_*`` /
    ``*_anchor`` carry the current anchors (static application anchors plus
    anchors inherited from already-sliced neighbours) and ``vcost`` the
    metric's precomputed per-node virtual costs. Raises
    :class:`DistributionError` when no candidate path exists — which cannot
    happen for a validated graph and indicates corrupted anchor
    bookkeeping.
    """
    n = len(expanded.by_index)
    states: List[Optional[List[_State]]] = [None] * n
    pred_lists = expanded.pred_lists
    lex_rank = expanded.lex_rank
    uses_count = metric.uses_count
    ratio_of = metric.ratio
    # Best candidate so far, under the total order (ratio, count, path
    # id-sequence) — total, because equal ratio+count+sequence means the
    # same path, so the scan order cannot change the winner.
    best_r = 0.0
    best_c = 0
    best_s: Optional[_State] = None

    for i in remaining:
        vc = vcost[i]
        if uses_count:
            # Merge incoming states in place: per path length, the single
            # state maximizing release + cost, first-seen winning ties
            # (self-anchor before predecessors, predecessors in adjacency
            # order). The slots are mutated, not reallocated, so the inner
            # loop allocates only on a strict improvement's parent swap.
            by_count: dict = {}
            if has_release[i]:
                r = release_anchor[i]
                by_count[1] = [r + vc, r, vc, None]
            for p in pred_lists[i]:
                plist = states[p]
                if plist:
                    for s in plist:
                        cost = s[1] + vc
                        val = s[0] + cost
                        c = s[2] + 1
                        cur = by_count.get(c)
                        if cur is None:
                            by_count[c] = [val, s[0], cost, s]
                        elif val > cur[0]:
                            cur[0] = val
                            cur[1] = s[0]
                            cur[2] = cost
                            cur[3] = s
            if not by_count:
                continue
            # No need to order by count: downstream merges key on the
            # count stored in each state, and the candidate scan below
            # picks the minimum of a total order — both are invariant
            # to the order of this list (dict order is deterministic).
            kept: List[_State] = [
                (slot[1], slot[2], c, i, slot[3])
                for c, slot in by_count.items()
            ]
        else:
            incoming: List[_State] = []
            if has_release[i]:
                incoming.append((release_anchor[i], vc, 1, i, None))
            for p in pred_lists[i]:
                plist = states[p]
                if plist:
                    for s in plist:
                        incoming.append((s[0], s[1] + vc, s[2] + 1, i, s))
            if not incoming:
                continue
            kept = _pareto(incoming)
        states[i] = kept
        if has_deadline[i]:
            deadline = deadline_anchor[i]
            for s in kept:
                ratio = ratio_of(deadline - s[0], s[1], s[2])
                if best_s is None or ratio < best_r:
                    best_r, best_c, best_s = ratio, s[2], s
                elif ratio == best_r:
                    c = s[2]
                    if c < best_c or (
                        c == best_c
                        and [lex_rank[j] for j in _state_path(s)]
                        < [lex_rank[j] for j in _state_path(best_s)]
                    ):
                        best_r, best_c, best_s = ratio, c, s

    if best_s is None:
        raise DistributionError(
            "no candidate path between anchors; anchor bookkeeping is corrupt"
        )
    indices = _state_path(best_s)
    eids = expanded.eids
    return CriticalPath(
        nodes=tuple(eids[i] for i in indices),
        ratio=best_r,
        release=best_s[0],
        deadline=deadline_anchor[best_s[3]],
        indices=indices,
    )


def find_critical_path(
    expanded: ExpandedGraph,
    metric: SlicingMetric,
    unassigned: Set[str],
    pending_release: Mapping[str, Time],
    pending_deadline: Mapping[str, Time],
) -> CriticalPath:
    """String-keyed wrapper over :func:`find_critical_path_indexed`.

    ``pending_release``/``pending_deadline`` carry the current anchors,
    keyed by expanded node id; ``unassigned`` restricts the search.
    """
    n = len(expanded.by_index)
    eids = expanded.eids
    has_release = bytearray(n)
    release_anchor: List[Time] = [0.0] * n
    has_deadline = bytearray(n)
    deadline_anchor: List[Time] = [0.0] * n
    for eid, t in pending_release.items():
        i = expanded.nodes[eid].index
        has_release[i] = 1
        release_anchor[i] = t
    for eid, t in pending_deadline.items():
        i = expanded.nodes[eid].index
        has_deadline[i] = 1
        deadline_anchor[i] = t
    remaining = [i for i in expanded.topo_indices if eids[i] in unassigned]
    vcost = [metric.virtual_cost(nd) for nd in expanded.by_index]
    return find_critical_path_indexed(
        expanded, metric, remaining,
        has_release, release_anchor,
        has_deadline, deadline_anchor,
        vcost,
    )


def _pareto(incoming: List[_State]) -> List[_State]:
    """Pareto frontier over (release, cost), larger-is-better.

    Order contract: the frontier is sorted by (release desc, cost desc),
    ties keeping first-incoming order — downstream Pareto merges tie-break
    on that order, so it is part of the deterministic-output contract.
    """
    if len(incoming) == 1:
        return incoming
    # Two stable C-level passes == one sort by (-release, -cost): reverse
    # sorts keep the original order of equal elements.
    incoming.sort(key=_BY_COST, reverse=True)
    incoming.sort(key=_BY_RELEASE, reverse=True)
    kept: List[_State] = []
    best_cost = float("-inf")
    for s in incoming:
        if s[1] > best_cost:
            kept.append(s)
            best_cost = s[1]
    return kept
