"""Deadline-driven list scheduling (paper Section 5.3).

The task-assignment algorithm of the evaluation: a deadline-driven variant
of the list scheduler of Lee, Hwang, Chow & Anger. At every step the
scheduler

1. picks, among *schedulable* subtasks (all predecessors scheduled), the one
   with the highest priority — by default the earliest distributed absolute
   deadline (EDF);
2. places it on the processor yielding the earliest start time, taking
   interprocessor message transfers (and their contention on the
   interconnect) into account, under a non-preemptive time-driven run-time
   model. Pinned subtasks (strict locality constraints) only consider their
   pinned processor.

Messages are reserved on the interconnect when their consumer is placed —
i.e. in consumer-priority order, which under EDF realizes deadline-ordered
message scheduling. Candidate processors are ranked by *probed* start times
(no reservations); the chosen processor's transfers are then committed, so
the final schedule is always consistent even when several transfers compete
for the same link.

``respect_release_times=True`` additionally delays every start to the
subtask's distributed release time, turning the distributed windows into a
time-triggered dispatch table. The default (``False``) is the greedy
packing standard in the list-scheduling literature; the distribution then
acts through the priority order and through the lateness measurement.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.core.pinning import validate_pins
from repro.errors import SchedulingError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.obs import runtime as obs
from repro.sched.bus import LinkTimelines
from repro.sched.policies import EarliestDeadlineFirst, SelectionPolicy
from repro.sched.schedule import Schedule, ScheduledMessage, ScheduledTask
from repro.types import ProcessorId, Time


class ListScheduler:
    """Assign and schedule a deadline-annotated task graph on a system."""

    def __init__(
        self,
        system: System,
        policy: Optional[SelectionPolicy] = None,
        respect_release_times: bool = False,
    ) -> None:
        self.system = system
        self.policy = policy if policy is not None else EarliestDeadlineFirst()
        self.respect_release_times = respect_release_times

    def schedule(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> Schedule:
        """Produce a complete non-preemptive schedule.

        ``assignment`` must cover every subtask of ``graph`` (it supplies
        the EDF priorities and, optionally, release times).
        """
        validate_pins(graph, self.system.n_processors)
        index = graph.index()
        ids = index.ids
        for node_id in ids:
            if node_id not in assignment.windows:
                raise SchedulingError(
                    f"deadline assignment misses subtask {node_id!r}; "
                    "run deadline distribution first"
                )

        schedule = Schedule(graph, self.system)
        links = LinkTimelines(self.system.interconnect)
        proc_available: List[Time] = [0.0] * self.system.n_processors
        # Per dense node id: finish time and processor of placed subtasks
        # (mirrors the Schedule, saving the per-query dict hops in the
        # probe/commit inner loops).
        finish_of: List[Time] = [0.0] * index.n_nodes
        proc_of: List[ProcessorId] = [-1] * index.n_nodes
        pending_preds: List[int] = [
            index.in_degree_of(j) for j in range(index.n_nodes)
        ]
        ready: Set[int] = {j for j, k in enumerate(pending_preds) if k == 0}
        policy_key = self.policy.key

        while ready:
            # Highest priority first; ties broken by node id, as before
            # the indexed rewrite (string order, not insertion order).
            j = min(ready, key=lambda j: (policy_key(ids[j], graph, assignment), ids[j]))
            ready.discard(j)
            self._place(
                j, graph, index, assignment, schedule, links,
                proc_available, finish_of, proc_of,
            )
            for k in range(index.succ_indptr[j], index.succ_indptr[j + 1]):
                s = index.succ_ids[k]
                pending_preds[s] -= 1
                if pending_preds[s] == 0:
                    ready.add(s)

        if len(schedule.tasks) != graph.n_subtasks:
            raise SchedulingError(
                "scheduler finished with unplaced subtasks; "
                "the task graph is corrupt"
            )
        obs.count("list.schedules")
        obs.count("list.tasks_placed", len(schedule.tasks))
        obs.count("list.messages_placed", len(schedule.messages))
        return schedule

    # ------------------------------------------------------------------
    def _place(
        self,
        j: int,
        graph: TaskGraph,
        index,
        assignment: DeadlineAssignment,
        schedule: Schedule,
        links: LinkTimelines,
        proc_available: List[Time],
        finish_of: List[Time],
        proc_of: List[ProcessorId],
    ) -> None:
        ids = index.ids
        node_id = ids[j]
        sub = index.subtasks[j]
        if sub.is_pinned:
            candidates: List[ProcessorId] = [sub.pinned_to]  # type: ignore[list-item]
        else:
            candidates = list(range(self.system.n_processors))

        floor = (
            assignment.release(node_id) if self.respect_release_times else 0.0
        )
        # Incoming arcs as (pred dense id, message size) pairs, in
        # adjacency order.
        messages = index.edge_messages
        incoming = [
            (index.pred_ids[k], messages[index.pred_edges[k]].size)
            for k in range(index.pred_indptr[j], index.pred_indptr[j + 1])
        ]
        best: Optional[Tuple[Time, ProcessorId]] = None
        for proc in candidates:
            start = self._probe_start(
                proc, incoming, links, proc_available, floor, finish_of, proc_of
            )
            if best is None or (start, proc) < best:
                best = (start, proc)
        assert best is not None
        _, proc = best

        arrivals = [floor, proc_available[proc]]
        for p, size in sorted(incoming, key=lambda it: (finish_of[it[0]], ids[it[0]])):
            finish = finish_of[p]
            pred_proc = proc_of[p]
            if pred_proc == proc or size <= 0:
                arrivals.append(finish)
                continue
            hops = links.commit_transfer(pred_proc, proc, size, finish)
            schedule.place_message(
                ScheduledMessage(
                    src=ids[p],
                    dst=node_id,
                    src_processor=pred_proc,
                    dst_processor=proc,
                    size=size,
                    hops=tuple(hops),
                )
            )
            arrivals.append(hops[-1].finish if hops else finish)

        start = max(arrivals)
        finish = start + self.system.execution_time(proc, sub.wcet)
        schedule.place_task(
            ScheduledTask(node_id=node_id, processor=proc, start=start, finish=finish)
        )
        proc_available[proc] = finish
        finish_of[j] = finish
        proc_of[j] = proc

    def _probe_start(
        self,
        proc: ProcessorId,
        incoming: List[Tuple[int, Time]],
        links: LinkTimelines,
        proc_available: List[Time],
        floor: Time,
        finish_of: List[Time],
        proc_of: List[ProcessorId],
    ) -> Time:
        """Estimated earliest start on ``proc`` without reserving links.

        Transfers are probed independently, which can be optimistic when
        several of this subtask's messages would share a link; the commit
        path serializes them, so the schedule stays consistent either way.
        """
        start = max(floor, proc_available[proc])
        for p, size in incoming:
            finish = finish_of[p]
            pred_proc = proc_of[p]
            if pred_proc == proc or size <= 0:
                arrival = finish
            else:
                arrival = links.probe_transfer(pred_proc, proc, size, finish)
            if arrival > start:
                start = arrival
        return start
