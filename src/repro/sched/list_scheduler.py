"""Deadline-driven list scheduling (paper Section 5.3).

The task-assignment algorithm of the evaluation: a deadline-driven variant
of the list scheduler of Lee, Hwang, Chow & Anger. At every step the
scheduler

1. picks, among *schedulable* subtasks (all predecessors scheduled), the one
   with the highest priority — by default the earliest distributed absolute
   deadline (EDF);
2. places it on the processor yielding the earliest start time, taking
   interprocessor message transfers (and their contention on the
   interconnect) into account, under a non-preemptive time-driven run-time
   model. Pinned subtasks (strict locality constraints) only consider their
   pinned processor.

Messages are reserved on the interconnect when their consumer is placed —
i.e. in consumer-priority order, which under EDF realizes deadline-ordered
message scheduling. Candidate processors are ranked by *probed* start times
(no reservations); the chosen processor's transfers are then committed, so
the final schedule is always consistent even when several transfers compete
for the same link.

``respect_release_times=True`` additionally delays every start to the
subtask's distributed release time, turning the distributed windows into a
time-triggered dispatch table. The default (``False``) is the greedy
packing standard in the list-scheduling literature; the distribution then
acts through the priority order and through the lateness measurement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.core.pinning import validate_pins
from repro.errors import SchedulingError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.bus import LinkTimelines
from repro.sched.policies import EarliestDeadlineFirst, SelectionPolicy
from repro.sched.schedule import Schedule, ScheduledMessage, ScheduledTask
from repro.types import NodeId, ProcessorId, Time


class ListScheduler:
    """Assign and schedule a deadline-annotated task graph on a system."""

    def __init__(
        self,
        system: System,
        policy: Optional[SelectionPolicy] = None,
        respect_release_times: bool = False,
    ) -> None:
        self.system = system
        self.policy = policy if policy is not None else EarliestDeadlineFirst()
        self.respect_release_times = respect_release_times

    def schedule(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> Schedule:
        """Produce a complete non-preemptive schedule.

        ``assignment`` must cover every subtask of ``graph`` (it supplies
        the EDF priorities and, optionally, release times).
        """
        validate_pins(graph, self.system.n_processors)
        for node_id in graph.node_ids():
            if node_id not in assignment.windows:
                raise SchedulingError(
                    f"deadline assignment misses subtask {node_id!r}; "
                    "run deadline distribution first"
                )

        schedule = Schedule(graph, self.system)
        links = LinkTimelines(self.system.interconnect)
        proc_available: List[Time] = [0.0] * self.system.n_processors
        pending_preds: Dict[NodeId, int] = {
            n: graph.in_degree(n) for n in graph.node_ids()
        }
        ready: Set[NodeId] = {n for n, k in pending_preds.items() if k == 0}

        while ready:
            node_id = min(
                ready, key=lambda n: (self.policy.key(n, graph, assignment), n)
            )
            ready.discard(node_id)
            self._place(node_id, graph, assignment, schedule, links, proc_available)
            for succ in graph.successors(node_id):
                pending_preds[succ] -= 1
                if pending_preds[succ] == 0:
                    ready.add(succ)

        if len(schedule.tasks) != graph.n_subtasks:
            raise SchedulingError(
                "scheduler finished with unplaced subtasks; "
                "the task graph is corrupt"
            )
        return schedule

    # ------------------------------------------------------------------
    def _place(
        self,
        node_id: NodeId,
        graph: TaskGraph,
        assignment: DeadlineAssignment,
        schedule: Schedule,
        links: LinkTimelines,
        proc_available: List[Time],
    ) -> None:
        sub = graph.node(node_id)
        if sub.is_pinned:
            candidates: List[ProcessorId] = [sub.pinned_to]  # type: ignore[list-item]
        else:
            candidates = list(range(self.system.n_processors))

        floor = (
            assignment.release(node_id) if self.respect_release_times else 0.0
        )
        best: Optional[Tuple[Time, ProcessorId]] = None
        for proc in candidates:
            start = self._probe_start(
                node_id, proc, graph, schedule, links, proc_available, floor
            )
            if best is None or (start, proc) < best:
                best = (start, proc)
        assert best is not None
        _, proc = best

        arrivals = [floor, proc_available[proc]]
        for pred in sorted(
            graph.predecessors(node_id),
            key=lambda p: (schedule.finish_time(p), p),
        ):
            finish = schedule.finish_time(pred)
            pred_proc = schedule.processor_of(pred)
            size = graph.message(pred, node_id).size
            if pred_proc == proc or size <= 0:
                arrivals.append(finish)
                continue
            hops = links.commit_transfer(pred_proc, proc, size, finish)
            schedule.place_message(
                ScheduledMessage(
                    src=pred,
                    dst=node_id,
                    src_processor=pred_proc,
                    dst_processor=proc,
                    size=size,
                    hops=tuple(hops),
                )
            )
            arrivals.append(hops[-1].finish if hops else finish)

        start = max(arrivals)
        finish = start + self.system.execution_time(proc, sub.wcet)
        schedule.place_task(
            ScheduledTask(node_id=node_id, processor=proc, start=start, finish=finish)
        )
        proc_available[proc] = finish

    def _probe_start(
        self,
        node_id: NodeId,
        proc: ProcessorId,
        graph: TaskGraph,
        schedule: Schedule,
        links: LinkTimelines,
        proc_available: List[Time],
        floor: Time,
    ) -> Time:
        """Estimated earliest start on ``proc`` without reserving links.

        Transfers are probed independently, which can be optimistic when
        several of this subtask's messages would share a link; the commit
        path serializes them, so the schedule stays consistent either way.
        """
        start = max(floor, proc_available[proc])
        for pred in graph.predecessors(node_id):
            finish = schedule.finish_time(pred)
            pred_proc = schedule.processor_of(pred)
            size = graph.message(pred, node_id).size
            if pred_proc == proc or size <= 0:
                arrival = finish
            else:
                arrival = links.probe_transfer(pred_proc, proc, size, finish)
            if arrival > start:
                start = arrival
        return start
