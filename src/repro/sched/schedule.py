"""Schedule data structures: the output of task assignment + scheduling.

A :class:`Schedule` records where and when every subtask executes and how
every cross-processor message traversed the interconnect. It knows how to
check its own consistency against the task graph and platform (used by the
test suite and by :meth:`Schedule.validate` for downstream users) and
renders a textual Gantt chart for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError, UnknownNodeError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.types import TIME_EPS, EdgeId, NodeId, ProcessorId, Time

#: Numerical slack for float comparisons (the shared cross-layer tolerance).
EPS = TIME_EPS


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one subtask."""

    node_id: NodeId
    processor: ProcessorId
    start: Time
    finish: Time

    @property
    def duration(self) -> Time:
        return self.finish - self.start


@dataclass(frozen=True)
class HopReservation:
    """Occupancy of one link by one message."""

    link: str
    start: Time
    finish: Time


@dataclass(frozen=True)
class ScheduledMessage:
    """One cross-processor transfer, possibly over several links."""

    src: NodeId
    dst: NodeId
    src_processor: ProcessorId
    dst_processor: ProcessorId
    size: Time
    hops: Tuple[HopReservation, ...]

    @property
    def start(self) -> Time:
        return self.hops[0].start if self.hops else 0.0

    @property
    def arrival(self) -> Time:
        return self.hops[-1].finish if self.hops else 0.0


class Schedule:
    """A complete non-preemptive schedule of one task graph on one system."""

    def __init__(self, graph: TaskGraph, system: System) -> None:
        self.graph = graph
        self.system = system
        self.tasks: Dict[NodeId, ScheduledTask] = {}
        self.messages: Dict[EdgeId, ScheduledMessage] = {}

    # ------------------------------------------------------------------
    # Construction (used by schedulers)
    # ------------------------------------------------------------------
    def place_task(self, entry: ScheduledTask) -> None:
        if entry.node_id in self.tasks:
            raise SchedulingError(f"subtask {entry.node_id!r} scheduled twice")
        self.tasks[entry.node_id] = entry

    def place_message(self, message: ScheduledMessage) -> None:
        edge = (message.src, message.dst)
        if edge in self.messages:
            raise SchedulingError(f"message {edge!r} scheduled twice")
        self.messages[edge] = message

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def task(self, node_id: NodeId) -> ScheduledTask:
        try:
            return self.tasks[node_id]
        except KeyError:
            raise UnknownNodeError(f"subtask {node_id!r} not scheduled") from None

    def message(self, src: NodeId, dst: NodeId) -> Optional[ScheduledMessage]:
        """The transfer for an arc, or ``None`` for same-processor arcs."""
        return self.messages.get((src, dst))

    def finish_time(self, node_id: NodeId) -> Time:
        return self.task(node_id).finish

    def processor_of(self, node_id: NodeId) -> ProcessorId:
        return self.task(node_id).processor

    def tasks_on(self, proc: ProcessorId) -> List[ScheduledTask]:
        """Subtasks on one processor, ordered by start time."""
        return sorted(
            (t for t in self.tasks.values() if t.processor == proc),
            key=lambda t: (t.start, t.node_id),
        )

    def makespan(self) -> Time:
        """Completion time of the last subtask."""
        if not self.tasks:
            return 0.0
        return max(t.finish for t in self.tasks.values())

    def processor_utilization(self) -> Dict[ProcessorId, float]:
        """Busy fraction of each processor over the makespan."""
        horizon = self.makespan()
        out: Dict[ProcessorId, float] = {}
        for p in range(self.system.n_processors):
            busy = sum(t.duration for t in self.tasks_on(p))
            out[p] = busy / horizon if horizon > 0 else 0.0
        return out

    def total_communication_volume(self) -> Time:
        """Sum of sizes of messages that actually crossed processors."""
        return sum(m.size for m in self.messages.values())

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SchedulingError` on any structural inconsistency.

        Checks: every subtask scheduled exactly once; pins honoured; no two
        subtasks overlap on a processor; no two messages overlap on a
        contended link; precedence + message arrival respected.
        """
        for node_id in self.graph.node_ids():
            if node_id not in self.tasks:
                raise SchedulingError(f"subtask {node_id!r} missing from schedule")
        for entry in self.tasks.values():
            sub = self.graph.node(entry.node_id)
            if sub.is_pinned and sub.pinned_to != entry.processor:
                raise SchedulingError(
                    f"subtask {entry.node_id!r} pinned to {sub.pinned_to}, "
                    f"scheduled on {entry.processor}"
                )
            if entry.finish < entry.start - EPS:
                raise SchedulingError(
                    f"subtask {entry.node_id!r} finishes before it starts"
                )
        self._validate_processor_exclusivity()
        self._validate_link_exclusivity()
        self._validate_precedence()

    def _validate_processor_exclusivity(self) -> None:
        for p in range(self.system.n_processors):
            ordered = self.tasks_on(p)
            for a, b in zip(ordered, ordered[1:]):
                if b.start < a.finish - EPS:
                    raise SchedulingError(
                        f"subtasks {a.node_id!r} and {b.node_id!r} overlap "
                        f"on processor {p}"
                    )

    def _validate_link_exclusivity(self) -> None:
        if not self.system.interconnect.contended:
            return
        by_link: Dict[str, List[Tuple[Time, Time, EdgeId]]] = {}
        for edge, message in self.messages.items():
            for hop in message.hops:
                by_link.setdefault(hop.link, []).append(
                    (hop.start, hop.finish, edge)
                )
        for link, intervals in by_link.items():
            intervals.sort()
            for (s1, f1, e1), (s2, f2, e2) in zip(intervals, intervals[1:]):
                if s2 < f1 - EPS:
                    raise SchedulingError(
                        f"messages {e1!r} and {e2!r} overlap on link {link!r}"
                    )

    def _validate_precedence(self) -> None:
        for src, dst in self.graph.edges():
            produced = self.task(src).finish
            consumer = self.task(dst)
            transfer = self.message(src, dst)
            if transfer is None:
                if self.task(src).processor != consumer.processor:
                    size = self.graph.message(src, dst).size
                    if size > 0:
                        raise SchedulingError(
                            f"arc {src!r}->{dst!r} crosses processors but has "
                            "no scheduled transfer"
                        )
                arrival = produced
            else:
                if transfer.start < produced - EPS:
                    raise SchedulingError(
                        f"message {src!r}->{dst!r} departs at {transfer.start} "
                        f"before producer finishes at {produced}"
                    )
                arrival = transfer.arrival
            if consumer.start < arrival - EPS:
                raise SchedulingError(
                    f"subtask {dst!r} starts at {consumer.start} before its "
                    f"input from {src!r} arrives at {arrival}"
                )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def gantt(self, width: int = 78) -> str:
        """ASCII Gantt chart: one row per processor, time left to right."""
        horizon = self.makespan()
        if horizon <= 0:
            return "(empty schedule)"
        scale = (width - 6) / horizon
        lines = []
        for p in range(self.system.n_processors):
            row = [" "] * (width - 6)
            for t in self.tasks_on(p):
                lo = int(t.start * scale)
                hi = max(lo + 1, int(t.finish * scale))
                label = t.node_id[-3:]
                for i in range(lo, min(hi, len(row))):
                    row[i] = "#"
                for i, ch in enumerate(label):
                    if lo + i < len(row):
                        row[lo + i] = ch
            lines.append(f"P{p:02d} | " + "".join(row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schedule(tasks={len(self.tasks)}, messages={len(self.messages)}, "
            f"makespan={self.makespan():.1f})"
        )
