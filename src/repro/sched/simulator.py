"""Discrete-event run-time simulation of annotated task graphs.

The list scheduler (:mod:`repro.sched.list_scheduler`) builds the *static*
schedule of the paper's evaluation — worst-case execution times, one
placement decision per subtask, non-preemptive time-driven dispatch. The
simulator complements it with the *run-time* questions the paper defers to
future work (Section 8: "explore the quality of AST under various task
assignment and scheduling policies"):

* **Execution-time variation.** Real executions rarely consume the full
  WCET. :class:`JitterModel` scales each subtask's actual execution time
  (deterministically seeded), so one can measure how much of the
  distributed slack survives at run time.
* **Dynamic dispatch** (:func:`simulate_dynamic`). No precomputed
  placement: whenever a processor is free, the globally highest-priority
  ready subtask is dispatched to the processor that can start it first,
  paying its input transfers (bus-reserved) at dispatch time. This is a
  global non-preemptive EDF executive driven by the distributed deadlines.
* **Fixed-allocation replay** (:func:`simulate_fixed`), optionally
  **preemptive**. Placements come from a static schedule (or any map); on
  each processor, tasks run under local priority order, preempting the
  running task when a higher-priority one becomes ready (preemptive mode)
  or running to completion (non-preemptive mode). Messages leave when the
  producer completes, reserving interconnect links.

Both entry points return an :class:`ExecutionTrace` — per-subtask
execution segments (more than one under preemption), completion times and
transfers — with its own consistency validator and lateness accessors.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.errors import SchedulingError, ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.bus import LinkTimelines
from repro.sched.schedule import Schedule
from repro.types import NodeId, ProcessorId, Time

#: Numerical slack for float comparisons.
EPS = 1e-9


@dataclass(frozen=True)
class JitterModel:
    """Actual-execution-time model: ``actual = wcet × factor``.

    ``factor`` is drawn uniformly from ``[low, high]`` per subtask, from a
    deterministic per-(seed, subtask) stream, so traces are reproducible
    and comparable across strategies. The default is the worst case
    (``low = high = 1``).
    """

    low: float = 1.0
    high: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValidationError(
                f"jitter bounds must satisfy 0 < low <= high, got "
                f"[{self.low}, {self.high}]"
            )
        if self.high > 1.0:
            raise ValidationError(
                "jitter factors above 1 would exceed the worst case; "
                f"got high={self.high}"
            )

    def actual(self, node_id: NodeId, wcet: Time) -> Time:
        if self.low == self.high:
            return wcet * self.low
        rng = random.Random(f"{self.seed}:{node_id}")
        return wcet * rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExecutionSegment:
    """One contiguous run of a subtask on a processor."""

    node_id: NodeId
    processor: ProcessorId
    start: Time
    end: Time

    @property
    def duration(self) -> Time:
        return self.end - self.start


@dataclass(frozen=True)
class Transfer:
    """One completed message transfer."""

    src: NodeId
    dst: NodeId
    src_processor: ProcessorId
    dst_processor: ProcessorId
    size: Time
    departure: Time
    arrival: Time


@dataclass
class ExecutionTrace:
    """The outcome of one simulation run."""

    graph: TaskGraph
    system: System
    segments: List[ExecutionSegment] = field(default_factory=list)
    transfers: List[Transfer] = field(default_factory=list)
    completions: Dict[NodeId, Time] = field(default_factory=dict)
    placements: Dict[NodeId, ProcessorId] = field(default_factory=dict)
    preemptions: int = 0

    def completion_time(self, node_id: NodeId) -> Time:
        try:
            return self.completions[node_id]
        except KeyError:
            raise SchedulingError(
                f"subtask {node_id!r} never completed in this trace"
            ) from None

    def makespan(self) -> Time:
        if not self.completions:
            return 0.0
        return max(self.completions.values())

    def lateness(self, assignment: DeadlineAssignment) -> Dict[NodeId, Time]:
        """Per-subtask lateness against the distributed deadlines."""
        return {
            node_id: t - assignment.absolute_deadline(node_id)
            for node_id, t in self.completions.items()
        }

    def max_lateness(self, assignment: DeadlineAssignment) -> Time:
        lateness = self.lateness(assignment)
        if not lateness:
            raise ValidationError("max lateness of an empty trace")
        return max(lateness.values())

    def segments_of(self, node_id: NodeId) -> List[ExecutionSegment]:
        return [s for s in self.segments if s.node_id == node_id]

    def validate(self, expected_durations: Mapping[NodeId, Time]) -> None:
        """Raise on structural inconsistencies.

        ``expected_durations`` maps each subtask to its *actual* execution
        time in this run (the jittered value the caller used).
        """
        for node_id in self.graph.node_ids():
            if node_id not in self.completions:
                raise SchedulingError(f"subtask {node_id!r} never completed")
            total = sum(s.duration for s in self.segments_of(node_id))
            proc = self.placements[node_id]
            expected = expected_durations[node_id] / self.system.processor(
                proc
            ).speed
            if abs(total - expected) > 1e-6:
                raise SchedulingError(
                    f"subtask {node_id!r} executed {total}, expected {expected}"
                )
        by_proc: Dict[ProcessorId, List[ExecutionSegment]] = {}
        for segment in self.segments:
            by_proc.setdefault(segment.processor, []).append(segment)
        for proc, segments in by_proc.items():
            segments.sort(key=lambda s: s.start)
            for a, b in zip(segments, segments[1:]):
                if b.start < a.end - 1e-6:
                    raise SchedulingError(
                        f"segments of {a.node_id!r} and {b.node_id!r} "
                        f"overlap on processor {proc}"
                    )
        for src, dst in self.graph.edges():
            first_start = min(s.start for s in self.segments_of(dst))
            if first_start < self.completions[src] - 1e-6 and (
                self.placements[src] == self.placements[dst]
            ):
                raise SchedulingError(
                    f"subtask {dst!r} started before predecessor {src!r} "
                    "completed"
                )

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(segments={len(self.segments)}, "
            f"preemptions={self.preemptions}, makespan={self.makespan():.1f})"
        )


# ----------------------------------------------------------------------
# Dynamic dispatch (global non-preemptive EDF executive)
# ----------------------------------------------------------------------
def simulate_dynamic(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    system: System,
    jitter: Optional[JitterModel] = None,
) -> ExecutionTrace:
    """Run the workload under a global dynamic dispatcher.

    Whenever processors are idle and subtasks are ready (all predecessors
    completed), the dispatcher repeatedly takes the ready subtask with the
    earliest distributed absolute deadline and dispatches it to the
    compatible processor that can start it first. Input transfers are paid
    (and bus-reserved) at dispatch time — the data sits with the producer
    until a consumer location is known, which is the honest model when
    placement is decided at run time.
    """
    jitter = jitter if jitter is not None else JitterModel()
    trace = ExecutionTrace(graph=graph, system=system)
    links = LinkTimelines(system.interconnect)
    actual = {n: jitter.actual(n, graph.node(n).wcet) for n in graph.node_ids()}

    pending = {n: graph.in_degree(n) for n in graph.node_ids()}
    ready: Set[NodeId] = {n for n, k in pending.items() if k == 0}
    proc_free: List[Time] = [0.0] * system.n_processors
    #: (completion time, tiebreak, node) of in-flight subtasks.
    running: List[Tuple[Time, int, NodeId]] = []
    counter = itertools.count()
    now = 0.0

    def dispatch_one() -> bool:
        if not ready:
            return False
        node_id = min(
            ready,
            key=lambda n: (assignment.absolute_deadline(n), n),
        )
        node = graph.node(node_id)
        candidates = (
            [node.pinned_to] if node.is_pinned
            else list(range(system.n_processors))
        )
        best: Optional[Tuple[Time, ProcessorId]] = None
        for proc in candidates:
            earliest = max(proc_free[proc], now)
            start = earliest
            for pred in graph.predecessors(node_id):
                size = graph.message(pred, node_id).size
                src_proc = trace.placements[pred]
                if src_proc == proc or size <= 0:
                    arrival = trace.completions[pred]
                else:
                    arrival = links.probe_transfer(
                        src_proc, proc, size, trace.completions[pred]
                    )
                start = max(start, arrival)
            if best is None or (start, proc) < best:
                best = (start, proc)
        assert best is not None
        start, proc = best
        # Only dispatch if the processor is actually free now; a start in
        # the future blocks the processor (setup-time semantics).
        for pred in sorted(
            graph.predecessors(node_id),
            key=lambda p: (trace.completions[p], p),
        ):
            size = graph.message(pred, node_id).size
            src_proc = trace.placements[pred]
            if src_proc == proc or size <= 0:
                continue
            hops = links.commit_transfer(
                src_proc, proc, size, trace.completions[pred]
            )
            trace.transfers.append(
                Transfer(
                    src=pred,
                    dst=node_id,
                    src_processor=src_proc,
                    dst_processor=proc,
                    size=size,
                    departure=hops[0].start if hops else trace.completions[pred],
                    arrival=hops[-1].finish if hops else trace.completions[pred],
                )
            )
            start = max(start, hops[-1].finish if hops else start)
        start = max(start, proc_free[proc], now)
        duration = actual[node_id] / system.processor(proc).speed
        end = start + duration
        trace.segments.append(
            ExecutionSegment(node_id=node_id, processor=proc, start=start, end=end)
        )
        trace.placements[node_id] = proc
        trace.completions[node_id] = end
        proc_free[proc] = end
        ready.discard(node_id)
        heapq.heappush(running, (end, next(counter), node_id))
        return True

    completed = 0
    total = graph.n_subtasks
    while completed < total:
        progressed = True
        while progressed:
            progressed = dispatch_one()
        if not running:
            raise SchedulingError(
                "dynamic simulation deadlocked; the task graph is corrupt"
            )
        end, _, node_id = heapq.heappop(running)
        now = max(now, end)
        completed += 1
        for succ in graph.successors(node_id):
            pending[succ] -= 1
            if pending[succ] == 0:
                ready.add(succ)

    trace.validate(actual)
    return trace


# ----------------------------------------------------------------------
# Fixed-allocation replay, optionally preemptive
# ----------------------------------------------------------------------
def simulate_fixed(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    system: System,
    allocation: Mapping[NodeId, ProcessorId],
    preemptive: bool = False,
    jitter: Optional[JitterModel] = None,
) -> ExecutionTrace:
    """Replay a fixed placement under per-processor priority scheduling.

    ``allocation`` maps every subtask to its processor (take it from a
    static :class:`~repro.sched.schedule.Schedule` via
    :func:`allocation_of`). Messages depart when their producer completes
    and reserve interconnect links; a subtask becomes ready when all its
    inputs have arrived at its processor. Each processor runs its
    highest-priority ready subtask (earliest distributed deadline),
    preempting on arrival of a higher-priority one when ``preemptive``.
    """
    jitter = jitter if jitter is not None else JitterModel()
    for node_id in graph.node_ids():
        if node_id not in allocation:
            raise SchedulingError(
                f"allocation misses subtask {node_id!r}"
            )
        node = graph.node(node_id)
        if node.is_pinned and allocation[node_id] != node.pinned_to:
            raise SchedulingError(
                f"allocation of {node_id!r} contradicts its pin"
            )
    trace = ExecutionTrace(
        graph=graph, system=system, placements=dict(allocation)
    )
    links = LinkTimelines(system.interconnect)
    actual = {n: jitter.actual(n, graph.node(n).wcet) for n in graph.node_ids()}
    remaining = {
        n: actual[n] / system.processor(allocation[n]).speed
        for n in graph.node_ids()
    }
    inputs_missing = {n: graph.in_degree(n) for n in graph.node_ids()}
    ready_per_proc: Dict[ProcessorId, Set[NodeId]] = {
        p: set() for p in range(system.n_processors)
    }
    for n, k in inputs_missing.items():
        if k == 0:
            ready_per_proc[allocation[n]].add(n)
    #: event heap: (time, seq, kind, payload)
    events: List[Tuple[Time, int, str, object]] = []
    counter = itertools.count()
    current: Dict[ProcessorId, Optional[NodeId]] = {
        p: None for p in range(system.n_processors)
    }
    segment_start: Dict[ProcessorId, Time] = {}
    now = 0.0
    completed = 0

    def priority(node_id: NodeId) -> Tuple:
        return (assignment.absolute_deadline(node_id), node_id)

    def close_segment(proc: ProcessorId, at: Time) -> None:
        node_id = current[proc]
        if node_id is None:
            return
        start = segment_start[proc]
        if at > start + EPS:
            trace.segments.append(
                ExecutionSegment(
                    node_id=node_id, processor=proc, start=start, end=at
                )
            )
            remaining[node_id] -= at - start

    def schedule_proc(proc: ProcessorId, at: Time) -> None:
        """(Re)decide what proc runs from time ``at``."""
        candidates = set(ready_per_proc[proc])
        if current[proc] is not None:
            candidates.add(current[proc])
        if not candidates:
            current[proc] = None
            return
        if current[proc] is not None and not preemptive:
            chosen = current[proc]  # non-preemptive: run to completion
        else:
            chosen = min(candidates, key=priority)
        if chosen != current[proc]:
            if current[proc] is not None:
                ready_per_proc[proc].add(current[proc])
                trace.preemptions += 1
            current[proc] = chosen
            ready_per_proc[proc].discard(chosen)
        segment_start[proc] = at
        heapq.heappush(
            events,
            (at + remaining[chosen], next(counter), "complete", (proc, chosen)),
        )

    for proc in range(system.n_processors):
        schedule_proc(proc, 0.0)

    while completed < graph.n_subtasks:
        if not events:
            raise SchedulingError(
                "fixed-allocation simulation deadlocked; allocation or "
                "graph is corrupt"
            )
        time_, _, kind, payload = heapq.heappop(events)
        now = time_
        if kind == "complete":
            proc, node_id = payload  # type: ignore[misc]
            if current[proc] != node_id:
                continue  # stale event (task was preempted)
            if abs(segment_start[proc] + remaining[node_id] - now) > 1e-6:
                continue  # stale event (requeued with different remaining)
            close_segment(proc, now)
            assert abs(remaining[node_id]) < 1e-6
            current[proc] = None
            trace.completions[node_id] = now
            completed += 1
            for succ in graph.successors(node_id):
                size = graph.message(node_id, succ).size
                dst_proc = allocation[succ]
                if dst_proc == proc or size <= 0:
                    arrival = now
                else:
                    hops = links.commit_transfer(proc, dst_proc, size, now)
                    arrival = hops[-1].finish if hops else now
                    trace.transfers.append(
                        Transfer(
                            src=node_id,
                            dst=succ,
                            src_processor=proc,
                            dst_processor=dst_proc,
                            size=size,
                            departure=hops[0].start if hops else now,
                            arrival=arrival,
                        )
                    )
                heapq.heappush(
                    events, (arrival, next(counter), "input", succ)
                )
            schedule_proc(proc, now)
        elif kind == "input":
            succ = payload  # type: ignore[assignment]
            inputs_missing[succ] -= 1
            if inputs_missing[succ] == 0:
                proc = allocation[succ]
                ready_per_proc[proc].add(succ)
                if current[proc] is None or (
                    preemptive and priority(succ) < priority(current[proc])
                ):
                    close_segment(proc, now)
                    if current[proc] is not None:
                        # close_segment reduced its remaining time; park it.
                        ready_per_proc[proc].add(current[proc])
                        current[proc] = None
                        trace.preemptions += 1
                    schedule_proc(proc, now)

    trace.validate(actual)
    return trace


def allocation_of(schedule: Schedule) -> Dict[NodeId, ProcessorId]:
    """Extract the node → processor map of a static schedule."""
    return {
        node_id: entry.processor for node_id, entry in schedule.tasks.items()
    }
