"""Post-schedule analysis: lateness, laxity and schedule quality.

The paper's headline performance measure is the **maximum task lateness**:
the largest ``completion − absolute deadline`` over all subtasks of a
schedule (non-positive for valid schedules; more negative = better). It is
"an indicator on how far from infeasibility the schedule is and how much
additional background workload the schedule can handle" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.sched.schedule import Schedule
from repro.types import NodeId, Time


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary measures of one schedule against one deadline assignment."""

    max_lateness: Time
    mean_lateness: Time
    n_late: int
    n_subtasks: int
    makespan: Time
    mean_utilization: float
    total_communication_volume: Time
    max_message_lateness: Optional[Time]
    #: Max lateness of output subtasks against the *application's*
    #: end-to-end anchors — comparable across deadline-distribution
    #: strategies, unlike :attr:`max_lateness`, which is measured against
    #: each strategy's own distributed deadlines.
    max_end_to_end_lateness: Time = 0.0

    @property
    def feasible(self) -> bool:
        """True when every subtask met its distributed deadline."""
        return self.n_late == 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "max_lateness": self.max_lateness,
            "mean_lateness": self.mean_lateness,
            "n_late": self.n_late,
            "n_subtasks": self.n_subtasks,
            "makespan": self.makespan,
            "mean_utilization": self.mean_utilization,
            "total_communication_volume": self.total_communication_volume,
            "max_message_lateness": (
                self.max_message_lateness
                if self.max_message_lateness is not None
                else float("nan")
            ),
            "max_end_to_end_lateness": self.max_end_to_end_lateness,
        }


def lateness_by_subtask(
    schedule: Schedule, assignment: DeadlineAssignment
) -> Dict[NodeId, Time]:
    """Per-subtask lateness: completion − distributed absolute deadline."""
    return {
        node_id: schedule.finish_time(node_id) - assignment.absolute_deadline(node_id)
        for node_id in schedule.graph.node_ids()
    }


def max_lateness(schedule: Schedule, assignment: DeadlineAssignment) -> Time:
    """The paper's performance metric: maximum subtask lateness."""
    lateness = lateness_by_subtask(schedule, assignment)
    if not lateness:
        raise ValidationError("max lateness of an empty schedule")
    return max(lateness.values())


def message_lateness(
    schedule: Schedule, assignment: DeadlineAssignment
) -> Dict[tuple, Time]:
    """Lateness of scheduled transfers against their distributed windows.

    Only arcs that both received a window (non-negligible estimated cost)
    and actually crossed processors appear.
    """
    out: Dict[tuple, Time] = {}
    for edge, transfer in schedule.messages.items():
        window = assignment.message_windows.get(edge)
        if window is not None:
            out[edge] = transfer.arrival - window.absolute_deadline
    return out


def end_to_end_lateness(schedule: Schedule) -> Dict[NodeId, Time]:
    """Lateness of output subtasks against the *application* end-to-end
    deadlines (independent of the distribution)."""
    out: Dict[NodeId, Time] = {}
    for node_id in schedule.graph.output_subtasks():
        anchor = schedule.graph.node(node_id).end_to_end_deadline
        if anchor is not None:
            out[node_id] = schedule.finish_time(node_id) - anchor
    return out


def schedule_metrics(
    schedule: Schedule, assignment: DeadlineAssignment
) -> ScheduleMetrics:
    """Compute the :class:`ScheduleMetrics` summary."""
    lateness = lateness_by_subtask(schedule, assignment)
    if not lateness:
        raise ValidationError("metrics of an empty schedule")
    values: List[Time] = list(lateness.values())
    msg_lateness = message_lateness(schedule, assignment)
    utilization = schedule.processor_utilization()
    e2e = end_to_end_lateness(schedule)
    return ScheduleMetrics(
        max_lateness=max(values),
        mean_lateness=sum(values) / len(values),
        n_late=sum(1 for v in values if v > 1e-9),
        n_subtasks=len(values),
        makespan=schedule.makespan(),
        mean_utilization=sum(utilization.values()) / len(utilization),
        total_communication_volume=schedule.total_communication_volume(),
        max_message_lateness=(
            max(msg_lateness.values()) if msg_lateness else None
        ),
        max_end_to_end_lateness=max(e2e.values()) if e2e else 0.0,
    )
