"""Ready-list selection policies for the list scheduler.

The paper's evaluation uses the deadline-driven policy (earliest absolute
deadline first, Section 5.3). Section 8 asks how AST behaves "under various
task assignment and scheduling policies"; the additional policies here make
that sweep a one-line configuration change.

A policy maps a ready subtask to a sortable key; the scheduler picks the
minimum key and breaks remaining ties on the node id, so every policy is
deterministic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId


class SelectionPolicy(ABC):
    """Priority rule over ready subtasks."""

    #: Name used in experiment tables.
    name: str = "abstract"

    @abstractmethod
    def key(
        self,
        node_id: NodeId,
        graph: TaskGraph,
        assignment: DeadlineAssignment,
    ) -> Tuple:
        """Sort key; the ready subtask with the smallest key runs next."""


class EarliestDeadlineFirst(SelectionPolicy):
    """EDF over the *distributed* absolute deadlines (paper Section 5.3)."""

    name = "EDF"

    def key(self, node_id, graph, assignment):
        return (assignment.absolute_deadline(node_id),)


class LeastLaxityFirst(SelectionPolicy):
    """Smallest window laxity first (static laxity from the distribution)."""

    name = "LLF"

    def key(self, node_id, graph, assignment):
        return (assignment.laxity(node_id),)


class EarliestReleaseFirst(SelectionPolicy):
    """FIFO by distributed release time."""

    name = "ERF"

    def key(self, node_id, graph, assignment):
        return (assignment.release(node_id),)


class LongestProcessingTimeFirst(SelectionPolicy):
    """Classic LPT: longest execution time first (deadline-oblivious)."""

    name = "LPT"

    def key(self, node_id, graph, assignment):
        return (-graph.node(node_id).wcet,)


class RandomPolicy(SelectionPolicy):
    """Uniformly random priorities (a floor for comparisons).

    Deterministic given the seed: the key of a node is drawn once, on
    first use, from a node-keyed stream.
    """

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def key(self, node_id, graph, assignment):
        return (random.Random(f"{self._seed}:{node_id}").random(),)


#: Policies by table name.
POLICIES = {
    "EDF": EarliestDeadlineFirst,
    "LLF": LeastLaxityFirst,
    "ERF": EarliestReleaseFirst,
    "LPT": LongestProcessingTimeFirst,
    "RANDOM": RandomPolicy,
}


def make_policy(name: str, **kwargs) -> SelectionPolicy:
    """Instantiate a named selection policy."""
    try:
        cls = POLICIES[name.upper()]
    except KeyError:
        raise ValidationError(
            f"unknown policy {name!r}; expected one of {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)
