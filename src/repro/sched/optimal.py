"""Optimal task assignment by branch-and-bound (small graphs).

The paper's Section 2 discusses Abdelzaher & Shin's branch-and-bound
scheduler, which finds the assignment/schedule minimizing maximum task
lateness "in acceptable time as long as the system workload is kept below
a certain limit". This module provides that comparator: an exact
branch-and-bound over (ready subtask, processor) decisions that minimizes
the maximum lateness against a given deadline assignment.

It is exact under the same run-time model as the list scheduler —
non-preemptive, greedy start times, i.e. within the class of *non-delay*
schedules (no deliberately inserted idle time; the class every list
scheduler produces) — with a **contention-free** interconnect (every cross-processor message costs its full transfer
latency, but links never queue). Contention-free keeps the search state
undoable and the bound admissible; compare against heuristics on
:class:`~repro.machine.topology.IdealNetwork` for an apples-to-apples
optimality gap, or read the result on a bus platform as an optimistic
bound.

Search techniques: deadline-ordered branching (good incumbents early), an
admissible completion-time bound (contention-free longest path from the
scheduled frontier), processor-symmetry breaking (identical empty
processors are interchangeable), and an initial incumbent from the list
scheduler. Two budgets make worst cases degrade gracefully instead of
hanging: the node budget caps explored search nodes, and a wall-clock
deadline (an explicit ``time_limit`` and/or the ambient per-trial budget
from :mod:`repro.budget`, as set by the experiment engine) interrupts
the search cooperatively. Either way the incumbent — at worst the list
scheduler's schedule — is returned; ``proven_optimal`` reports whether
the search completed and ``timed_out`` whether the clock cut it short.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import budget as trial_budget
from repro.obs import runtime as obs
from repro.obs.metrics import COUNT_BUCKETS

from repro.core.annotations import DeadlineAssignment
from repro.core.pinning import validate_pins
from repro.errors import SchedulingError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import (
    HopReservation,
    Schedule,
    ScheduledMessage,
    ScheduledTask,
)
from repro.types import NodeId, ProcessorId, Time

#: Numerical slack for float comparisons.
EPS = 1e-9


@dataclass
class OptimalResult:
    """Outcome of one branch-and-bound search."""

    schedule: Schedule
    max_lateness: Time
    nodes_explored: int
    proven_optimal: bool
    #: True when a wall-clock deadline (``time_limit`` or the ambient
    #: trial budget) interrupted the search before it completed.
    timed_out: bool = False
    #: Subtrees cut by the bound or the incumbent before expansion.
    nodes_pruned: int = 0


class BranchAndBoundScheduler:
    """Exact minimum-max-lateness scheduler for small annotated graphs."""

    def __init__(
        self,
        system: System,
        node_limit: int = 500_000,
        max_subtasks: int = 16,
        time_limit: Optional[float] = None,
    ) -> None:
        if not isinstance(system.interconnect, IdealNetwork):
            # Rebuild the platform with a contention-free network of the
            # same per-item cost — the model the bound is admissible for.
            system = System(
                system.n_processors,
                interconnect=IdealNetwork(
                    system.n_processors,
                    cost_per_item=system.interconnect.cost_per_item,
                ),
                speeds=[p.speed for p in system.processors],
            )
        self.system = system
        self.node_limit = node_limit
        self.max_subtasks = max_subtasks
        if time_limit is not None and not time_limit >= 0:
            raise SchedulingError(
                f"time_limit must be >= 0 when set, got {time_limit}"
            )
        self.time_limit = time_limit

    def schedule(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> OptimalResult:
        """Search for the placement minimizing maximum task lateness."""
        if graph.n_subtasks > self.max_subtasks:
            raise SchedulingError(
                f"branch-and-bound is exponential; {graph.n_subtasks} "
                f"subtasks exceed the configured limit of {self.max_subtasks}"
            )
        validate_pins(graph, self.system.n_processors)
        self._graph = graph
        self._assignment = assignment
        # Search state lives on dense ids from the graph's compiled index;
        # only incumbents and the replayed schedule speak node-id strings.
        index = graph.index()
        self._index = index
        n = index.n_nodes
        ids = index.ids
        self._deadline: List[Time] = [
            assignment.absolute_deadline(node_id) for node_id in ids
        ]
        self._wcet: List[Time] = index.wcet_array()
        self._topo: List[int] = index.topological_order()
        self._explored = 0
        self._pruned = 0
        self._budget_exhausted = False
        self._timed_out = False
        # Effective wall-clock deadline: the tighter of the explicit
        # time_limit and the ambient per-trial budget, if either is set.
        clock: Optional[float] = trial_budget.current_trial_deadline()
        if self.time_limit is not None:
            own = time.monotonic() + self.time_limit
            clock = own if clock is None else min(clock, own)
        self._clock_deadline = clock

        with obs.span("bnb.search", n_subtasks=graph.n_subtasks) as sp:
            incumbent = ListScheduler(self.system).schedule(graph, assignment)
            self._best_lateness = self._lateness_of(incumbent)
            self._best_choices: Optional[List[Tuple[int, ProcessorId]]] = None

            pending = [index.in_degree_of(j) for j in range(n)]
            ready = sorted(
                (j for j in range(n) if pending[j] == 0),
                key=lambda j: ids[j],
            )
            self._dfs(
                ready=ready,
                pending=pending,
                finish=[0.0] * n,
                placed=bytearray(n),
                placement=[-1] * n,
                proc_avail=[0.0] * self.system.n_processors,
                current_lateness=float("-inf"),
                choices=[],
            )

            if self._best_choices is None:
                schedule = incumbent
            else:
                schedule = self._replay(self._best_choices)
            if sp is not None:
                sp.annotate(
                    nodes_explored=self._explored,
                    nodes_pruned=self._pruned,
                    proven_optimal=not self._budget_exhausted,
                    timed_out=self._timed_out,
                )
        obs.count("bnb.searches")
        obs.count("bnb.nodes", self._explored)
        obs.count("bnb.pruned", self._pruned)
        obs.observe("bnb.nodes_explored", self._explored, buckets=COUNT_BUCKETS)
        return OptimalResult(
            schedule=schedule,
            max_lateness=self._lateness_of(schedule),
            nodes_explored=self._explored,
            proven_optimal=not self._budget_exhausted,
            timed_out=self._timed_out,
            nodes_pruned=self._pruned,
        )

    # ------------------------------------------------------------------
    def _lateness_of(self, schedule: Schedule) -> Time:
        ids = self._index.ids
        return max(
            schedule.finish_time(ids[j]) - self._deadline[j]
            for j in range(self._index.n_nodes)
        )

    def _start_time(
        self,
        j: int,
        proc: ProcessorId,
        finish: List[Time],
        placement: List[ProcessorId],
        proc_avail: List[Time],
    ) -> Time:
        index = self._index
        messages = index.edge_messages
        hop_cost = self.system.interconnect.hop_cost
        start = proc_avail[proc]
        for k in range(index.pred_indptr[j], index.pred_indptr[j + 1]):
            p = index.pred_ids[k]
            arrival = finish[p]
            size = messages[index.pred_edges[k]].size
            if placement[p] != proc and size > 0:
                arrival += hop_cost(size)
            if arrival > start:
                start = arrival
        return start

    def _completion_bound(
        self,
        placed: bytearray,
        finish: List[Time],
    ) -> Time:
        """Admissible lateness bound for the unscheduled remainder.

        Contention-free, communication-free earliest finishes propagated
        from the already-fixed frontier — no placement can beat them.
        """
        index = self._index
        indptr, pred = index.pred_indptr, index.pred_ids
        deadline, wcet = self._deadline, self._wcet
        bound = float("-inf")
        est: List[Time] = [0.0] * index.n_nodes
        for j in self._topo:
            if placed[j]:
                est[j] = finish[j]
                continue
            earliest = 0.0
            for k in range(indptr[j], indptr[j + 1]):
                e = est[pred[k]]
                if e > earliest:
                    earliest = e
            est[j] = earliest = earliest + wcet[j]
            lateness = earliest - deadline[j]
            if lateness > bound:
                bound = lateness
        return bound

    def _dfs(
        self,
        ready: List[int],
        pending: List[int],
        finish: List[Time],
        placed: bytearray,
        placement: List[ProcessorId],
        proc_avail: List[Time],
        current_lateness: Time,
        choices: List[Tuple[int, ProcessorId]],
    ) -> None:
        if self._budget_exhausted:
            return
        self._explored += 1
        if self._explored > self.node_limit:
            self._budget_exhausted = True
            return
        if (
            self._clock_deadline is not None
            and time.monotonic() >= self._clock_deadline
        ):
            self._budget_exhausted = True
            self._timed_out = True
            return
        if not ready:
            if current_lateness < self._best_lateness - EPS:
                self._best_lateness = current_lateness
                self._best_choices = list(choices)
            return
        if current_lateness >= self._best_lateness - EPS:
            self._pruned += 1
            return
        if (
            max(current_lateness, self._completion_bound(placed, finish))
            >= self._best_lateness - EPS
        ):
            self._pruned += 1
            return

        index = self._index
        ids = index.ids
        deadline = self._deadline
        # Branch on ready subtasks in deadline order (incumbents early);
        # deadline ties break on node id, as before the indexed rewrite.
        for j in sorted(ready, key=lambda j: (deadline[j], ids[j])):
            node = index.subtasks[j]
            if node.is_pinned:
                candidates = [node.pinned_to]
            else:
                candidates = self._distinct_processors(proc_avail)
            for proc in candidates:
                start = self._start_time(j, proc, finish, placement, proc_avail)
                end = start + self.system.execution_time(proc, node.wcet)
                lateness = max(current_lateness, end - deadline[j])
                if lateness >= self._best_lateness - EPS:
                    self._pruned += 1
                    continue
                # Apply.
                finish[j] = end
                placed[j] = 1
                placement[j] = proc
                saved_avail = proc_avail[proc]
                proc_avail[proc] = end
                next_ready = [r for r in ready if r != j]
                for k in range(index.succ_indptr[j], index.succ_indptr[j + 1]):
                    s = index.succ_ids[k]
                    pending[s] -= 1
                    if pending[s] == 0:
                        next_ready.append(s)
                choices.append((j, proc))

                self._dfs(
                    next_ready, pending, finish, placed, placement,
                    proc_avail, lateness, choices,
                )

                # Undo.
                choices.pop()
                for k in range(index.succ_indptr[j], index.succ_indptr[j + 1]):
                    pending[index.succ_ids[k]] += 1
                proc_avail[proc] = saved_avail
                placement[j] = -1
                placed[j] = 0

    def _distinct_processors(self, proc_avail: List[Time]) -> List[ProcessorId]:
        """Symmetry breaking: identical-speed processors with identical
        availability are interchangeable — try only the first of each
        equivalence class."""
        seen: Set[Tuple[float, float]] = set()
        out: List[ProcessorId] = []
        for proc in range(self.system.n_processors):
            key = (proc_avail[proc], self.system.processor(proc).speed)
            if key not in seen:
                seen.add(key)
                out.append(proc)
        return out

    def _replay(
        self, choices: List[Tuple[int, ProcessorId]]
    ) -> Schedule:
        """Materialize the winning decision sequence as a Schedule."""
        index = self._index
        ids = index.ids
        messages = index.edge_messages
        schedule = Schedule(self._graph, self.system)
        finish: List[Time] = [0.0] * index.n_nodes
        placement: List[ProcessorId] = [-1] * index.n_nodes
        proc_avail = [0.0] * self.system.n_processors
        for j, proc in choices:
            start = self._start_time(j, proc, finish, placement, proc_avail)
            for k in range(index.pred_indptr[j], index.pred_indptr[j + 1]):
                p = index.pred_ids[k]
                size = messages[index.pred_edges[k]].size
                if placement[p] != proc and size > 0:
                    cost = self.system.interconnect.hop_cost(size)
                    link = self.system.interconnect.route(placement[p], proc)[0]
                    schedule.place_message(
                        ScheduledMessage(
                            src=ids[p],
                            dst=ids[j],
                            src_processor=placement[p],
                            dst_processor=proc,
                            size=size,
                            hops=(
                                HopReservation(
                                    link=link,
                                    start=finish[p],
                                    finish=finish[p] + cost,
                                ),
                            ),
                        )
                    )
            end = start + self.system.execution_time(
                proc, index.subtasks[j].wcet
            )
            schedule.place_task(
                ScheduledTask(
                    node_id=ids[j], processor=proc, start=start, finish=end
                )
            )
            finish[j] = end
            placement[j] = proc
            proc_avail[proc] = end
        schedule.validate()
        return schedule
