"""Optimal task assignment by branch-and-bound (small graphs).

The paper's Section 2 discusses Abdelzaher & Shin's branch-and-bound
scheduler, which finds the assignment/schedule minimizing maximum task
lateness "in acceptable time as long as the system workload is kept below
a certain limit". This module provides that comparator: an exact
branch-and-bound over (ready subtask, processor) decisions that minimizes
the maximum lateness against a given deadline assignment.

It is exact under the same run-time model as the list scheduler —
non-preemptive, greedy start times, i.e. within the class of *non-delay*
schedules (no deliberately inserted idle time; the class every list
scheduler produces) — with a **contention-free** interconnect (every cross-processor message costs its full transfer
latency, but links never queue). Contention-free keeps the search state
undoable and the bound admissible; compare against heuristics on
:class:`~repro.machine.topology.IdealNetwork` for an apples-to-apples
optimality gap, or read the result on a bus platform as an optimistic
bound.

Search techniques: deadline-ordered branching (good incumbents early), an
admissible completion-time bound (contention-free longest path from the
scheduled frontier), processor-symmetry breaking (identical empty
processors are interchangeable), and an initial incumbent from the list
scheduler. The node budget makes worst cases fail loudly instead of
hanging: ``proven_optimal`` reports whether the search completed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.core.pinning import validate_pins
from repro.errors import SchedulingError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import (
    HopReservation,
    Schedule,
    ScheduledMessage,
    ScheduledTask,
)
from repro.types import NodeId, ProcessorId, Time

#: Numerical slack for float comparisons.
EPS = 1e-9


@dataclass
class OptimalResult:
    """Outcome of one branch-and-bound search."""

    schedule: Schedule
    max_lateness: Time
    nodes_explored: int
    proven_optimal: bool


class BranchAndBoundScheduler:
    """Exact minimum-max-lateness scheduler for small annotated graphs."""

    def __init__(
        self,
        system: System,
        node_limit: int = 500_000,
        max_subtasks: int = 16,
    ) -> None:
        if not isinstance(system.interconnect, IdealNetwork):
            # Rebuild the platform with a contention-free network of the
            # same per-item cost — the model the bound is admissible for.
            system = System(
                system.n_processors,
                interconnect=IdealNetwork(
                    system.n_processors,
                    cost_per_item=system.interconnect.cost_per_item,
                ),
                speeds=[p.speed for p in system.processors],
            )
        self.system = system
        self.node_limit = node_limit
        self.max_subtasks = max_subtasks

    def schedule(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> OptimalResult:
        """Search for the placement minimizing maximum task lateness."""
        if graph.n_subtasks > self.max_subtasks:
            raise SchedulingError(
                f"branch-and-bound is exponential; {graph.n_subtasks} "
                f"subtasks exceed the configured limit of {self.max_subtasks}"
            )
        validate_pins(graph, self.system.n_processors)
        self._graph = graph
        self._assignment = assignment
        self._deadline = {
            n: assignment.absolute_deadline(n) for n in graph.node_ids()
        }
        self._wcet = {n: graph.node(n).wcet for n in graph.node_ids()}
        self._explored = 0
        self._budget_exhausted = False

        incumbent = ListScheduler(self.system).schedule(graph, assignment)
        self._best_lateness = self._lateness_of(incumbent)
        self._best_choices: Optional[List[Tuple[NodeId, ProcessorId]]] = None

        pending = {n: graph.in_degree(n) for n in graph.node_ids()}
        ready = sorted(n for n, k in pending.items() if k == 0)
        self._dfs(
            ready=ready,
            pending=pending,
            finish={},
            placement={},
            proc_avail=[0.0] * self.system.n_processors,
            current_lateness=float("-inf"),
            choices=[],
        )

        if self._best_choices is None:
            schedule = incumbent
        else:
            schedule = self._replay(self._best_choices)
        return OptimalResult(
            schedule=schedule,
            max_lateness=self._lateness_of(schedule),
            nodes_explored=self._explored,
            proven_optimal=not self._budget_exhausted,
        )

    # ------------------------------------------------------------------
    def _lateness_of(self, schedule: Schedule) -> Time:
        return max(
            schedule.finish_time(n) - self._deadline[n]
            for n in self._graph.node_ids()
        )

    def _start_time(
        self,
        node_id: NodeId,
        proc: ProcessorId,
        finish: Dict[NodeId, Time],
        placement: Dict[NodeId, ProcessorId],
        proc_avail: List[Time],
    ) -> Time:
        start = proc_avail[proc]
        for pred in self._graph.predecessors(node_id):
            arrival = finish[pred]
            size = self._graph.message(pred, node_id).size
            if placement[pred] != proc and size > 0:
                arrival += self.system.interconnect.hop_cost(size)
            start = max(start, arrival)
        return start

    def _completion_bound(
        self,
        pending: Dict[NodeId, int],
        finish: Dict[NodeId, Time],
    ) -> Time:
        """Admissible lateness bound for the unscheduled remainder.

        Contention-free, communication-free earliest finishes propagated
        from the already-fixed frontier — no placement can beat them.
        """
        bound = float("-inf")
        est: Dict[NodeId, Time] = {}
        for node_id in self._graph.topological_order():
            if node_id in finish:
                est[node_id] = finish[node_id]
                continue
            earliest = 0.0
            for pred in self._graph.predecessors(node_id):
                earliest = max(earliest, est[pred])
            est[node_id] = earliest + self._wcet[node_id]
            bound = max(bound, est[node_id] - self._deadline[node_id])
        return bound

    def _dfs(
        self,
        ready: List[NodeId],
        pending: Dict[NodeId, int],
        finish: Dict[NodeId, Time],
        placement: Dict[NodeId, ProcessorId],
        proc_avail: List[Time],
        current_lateness: Time,
        choices: List[Tuple[NodeId, ProcessorId]],
    ) -> None:
        if self._budget_exhausted:
            return
        self._explored += 1
        if self._explored > self.node_limit:
            self._budget_exhausted = True
            return
        if not ready:
            if current_lateness < self._best_lateness - EPS:
                self._best_lateness = current_lateness
                self._best_choices = list(choices)
            return
        if current_lateness >= self._best_lateness - EPS:
            return
        if (
            max(current_lateness, self._completion_bound(pending, finish))
            >= self._best_lateness - EPS
        ):
            return

        # Branch on ready subtasks in deadline order (incumbents early).
        for node_id in sorted(
            ready, key=lambda n: (self._deadline[n], n)
        ):
            node = self._graph.node(node_id)
            if node.is_pinned:
                candidates = [node.pinned_to]
            else:
                candidates = self._distinct_processors(proc_avail)
            for proc in candidates:
                start = self._start_time(
                    node_id, proc, finish, placement, proc_avail
                )
                end = start + self.system.execution_time(proc, node.wcet)
                lateness = max(
                    current_lateness, end - self._deadline[node_id]
                )
                if lateness >= self._best_lateness - EPS:
                    continue
                # Apply.
                finish[node_id] = end
                placement[node_id] = proc
                saved_avail = proc_avail[proc]
                proc_avail[proc] = end
                next_ready = [n for n in ready if n != node_id]
                unlocked = []
                for succ in self._graph.successors(node_id):
                    pending[succ] -= 1
                    if pending[succ] == 0:
                        unlocked.append(succ)
                next_ready.extend(unlocked)
                choices.append((node_id, proc))

                self._dfs(
                    next_ready, pending, finish, placement,
                    proc_avail, lateness, choices,
                )

                # Undo.
                choices.pop()
                for succ in self._graph.successors(node_id):
                    pending[succ] += 1
                proc_avail[proc] = saved_avail
                del placement[node_id]
                del finish[node_id]

    def _distinct_processors(self, proc_avail: List[Time]) -> List[ProcessorId]:
        """Symmetry breaking: identical-speed processors with identical
        availability are interchangeable — try only the first of each
        equivalence class."""
        seen: Set[Tuple[float, float]] = set()
        out: List[ProcessorId] = []
        for proc in range(self.system.n_processors):
            key = (proc_avail[proc], self.system.processor(proc).speed)
            if key not in seen:
                seen.add(key)
                out.append(proc)
        return out

    def _replay(
        self, choices: List[Tuple[NodeId, ProcessorId]]
    ) -> Schedule:
        """Materialize the winning decision sequence as a Schedule."""
        schedule = Schedule(self._graph, self.system)
        finish: Dict[NodeId, Time] = {}
        placement: Dict[NodeId, ProcessorId] = {}
        proc_avail = [0.0] * self.system.n_processors
        for node_id, proc in choices:
            start = self._start_time(
                node_id, proc, finish, placement, proc_avail
            )
            for pred in self._graph.predecessors(node_id):
                size = self._graph.message(pred, node_id).size
                if placement[pred] != proc and size > 0:
                    cost = self.system.interconnect.hop_cost(size)
                    link = self.system.interconnect.route(
                        placement[pred], proc
                    )[0]
                    schedule.place_message(
                        ScheduledMessage(
                            src=pred,
                            dst=node_id,
                            src_processor=placement[pred],
                            dst_processor=proc,
                            size=size,
                            hops=(
                                HopReservation(
                                    link=link,
                                    start=finish[pred],
                                    finish=finish[pred] + cost,
                                ),
                            ),
                        )
                    )
            end = start + self.system.execution_time(
                proc, self._graph.node(node_id).wcet
            )
            schedule.place_task(
                ScheduledTask(
                    node_id=node_id, processor=proc, start=start, finish=end
                )
            )
            finish[node_id] = end
            placement[node_id] = proc
            proc_avail[proc] = end
        schedule.validate()
        return schedule
