"""Off-line schedulability analysis of deadline assignments.

The paper's systems are "mission/safety-critical where the workload is
known beforehand" and "schedulability analysis must be performed off-line"
(Section 1). This module provides the analysis layer: given a deadline
assignment (windows), decide — before or after task assignment — whether
the windows can possibly be honoured, and produce diagnostics when not.

Pre-assignment (platform-level) tests, necessary for *any* placement:

* **window sanity** — a window smaller than its execution time can never
  be met (degenerate windows);
* **interval demand** — for every interval ``[a, b)`` bounded by window
  endpoints, the execution demand of subtasks whose windows lie fully
  inside must not exceed ``N_proc × (b − a)``. This is the classical
  processor-demand criterion lifted to ``m`` processors: it is exact for
  a single preemptive processor and a necessary condition for ``m``.

Post-assignment (per-processor) test:

* **per-processor demand** — the same criterion per processor with
  ``m = 1``, using the placement of a concrete schedule. For preemptive
  EDF on one processor the criterion is necessary *and sufficient*, so a
  passing report certifies the placement (under preemptive dispatch).

The analysis also reports the demand-derived **lower bound on the number
of processors** any placement needs — a capacity-planning number for the
platform-sizing question the paper's sweeps revolve around.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.annotations import DeadlineAssignment, Window
from repro.errors import ValidationError
from repro.sched.schedule import Schedule
from repro.types import TIME_EPS, NodeId, ProcessorId, Time

#: Numerical slack for float comparisons (the shared cross-layer tolerance).
EPS = TIME_EPS


@dataclass(frozen=True)
class DemandViolation:
    """One interval whose execution demand exceeds its capacity."""

    start: Time
    end: Time
    demand: Time
    capacity: Time
    subtasks: Tuple[NodeId, ...]
    processor: Optional[ProcessorId] = None

    @property
    def overload(self) -> Time:
        return self.demand - self.capacity

    def __str__(self) -> str:
        where = (
            f"processor {self.processor}" if self.processor is not None
            else "platform"
        )
        return (
            f"[{self.start:g}, {self.end:g}) on {where}: demand "
            f"{self.demand:g} > capacity {self.capacity:g} "
            f"({len(self.subtasks)} subtasks)"
        )


@dataclass
class SchedulabilityReport:
    """Outcome of one schedulability analysis."""

    n_processors: int
    degenerate_windows: List[NodeId] = field(default_factory=list)
    violations: List[DemandViolation] = field(default_factory=list)
    #: Demand-derived lower bound on processors any placement needs.
    min_processors: int = 1
    #: Total utilization over the busy span (demand / span).
    utilization: float = 0.0

    @property
    def schedulable(self) -> bool:
        """Whether the necessary conditions all passed.

        For the per-processor (post-assignment, preemptive EDF) analysis a
        ``True`` here is also sufficient; for the platform-level analysis
        it means "not provably infeasible".
        """
        return not self.degenerate_windows and not self.violations

    def raise_if_infeasible(self) -> None:
        if not self.schedulable:
            issues = [f"degenerate window: {n}" for n in self.degenerate_windows]
            issues += [str(v) for v in self.violations]
            raise ValidationError(
                "deadline assignment is infeasible: " + "; ".join(issues[:5])
            )


def _interval_demand(
    windows: Mapping[NodeId, Window], start: Time, end: Time
) -> Tuple[Time, Tuple[NodeId, ...]]:
    """Execution demand of windows fully contained in ``[start, end]``."""
    contained = tuple(
        sorted(
            node_id
            for node_id, w in windows.items()
            if w.release >= start - EPS and w.absolute_deadline <= end + EPS
        )
    )
    demand = sum(windows[n].cost for n in contained)
    return demand, contained


def _critical_intervals(
    windows: Mapping[NodeId, Window]
) -> List[Tuple[Time, Time]]:
    """Candidate intervals: (release, deadline) endpoint pairs.

    The demand function only changes at window endpoints, so checking
    every (release_i, deadline_j) pair with ``release_i < deadline_j`` is
    exhaustive. O(n²) intervals.
    """
    releases = sorted({w.release for w in windows.values()})
    deadlines = sorted({w.absolute_deadline for w in windows.values()})
    return [
        (a, b) for a in releases for b in deadlines if b > a + EPS
    ]


def analyze_platform(
    assignment: DeadlineAssignment,
    n_processors: int,
    include_messages: bool = False,
) -> SchedulabilityReport:
    """Platform-level (pre-assignment) schedulability analysis.

    Checks the m-processor interval-demand criterion over the subtask
    windows (optionally folding in communication-subtask windows, which is
    pessimistic: messages use the interconnect, not processors — useful as
    a stress view only).
    """
    if n_processors < 1:
        raise ValidationError(f"n_processors must be >= 1, got {n_processors}")
    windows: Dict[NodeId, Window] = dict(assignment.windows)
    if include_messages:
        for edge, window in assignment.message_windows.items():
            windows[f"chi({edge[0]}->{edge[1]})"] = window
    report = SchedulabilityReport(n_processors=n_processors)
    report.degenerate_windows = [
        n for n, w in sorted(windows.items()) if w.is_degenerate
    ]

    min_needed = 1
    for start, end in _critical_intervals(windows):
        demand, contained = _interval_demand(windows, start, end)
        if not contained:
            continue
        length = end - start
        needed = math.ceil(demand / length - EPS)
        min_needed = max(min_needed, needed)
        capacity = n_processors * length
        if demand > capacity + EPS:
            report.violations.append(
                DemandViolation(
                    start=start,
                    end=end,
                    demand=demand,
                    capacity=capacity,
                    subtasks=contained,
                )
            )
    report.min_processors = min_needed

    span_start = min(w.release for w in windows.values())
    span_end = max(w.absolute_deadline for w in windows.values())
    total = sum(w.cost for w in windows.values())
    span = span_end - span_start
    report.utilization = total / (n_processors * span) if span > 0 else math.inf
    return report


def analyze_placement(
    assignment: DeadlineAssignment,
    schedule: Schedule,
) -> SchedulabilityReport:
    """Per-processor (post-assignment) schedulability analysis.

    Applies the single-processor demand criterion to each processor of a
    concrete placement. A passing report certifies the placement under
    preemptive EDF dispatch of the windows; failures pinpoint the
    overloaded processor and interval.
    """
    n_processors = schedule.system.n_processors
    report = SchedulabilityReport(n_processors=n_processors)
    report.degenerate_windows = [
        n for n, w in sorted(assignment.windows.items()) if w.is_degenerate
    ]
    total_demand = 0.0
    for proc in range(n_processors):
        windows = {
            entry.node_id: assignment.window(entry.node_id)
            for entry in schedule.tasks_on(proc)
        }
        if not windows:
            continue
        total_demand += sum(w.cost for w in windows.values())
        for start, end in _critical_intervals(windows):
            demand, contained = _interval_demand(windows, start, end)
            if not contained:
                continue
            if demand > (end - start) + EPS:
                report.violations.append(
                    DemandViolation(
                        start=start,
                        end=end,
                        demand=demand,
                        capacity=end - start,
                        subtasks=contained,
                        processor=proc,
                    )
                )
    all_windows = assignment.windows
    span = max(w.absolute_deadline for w in all_windows.values()) - min(
        w.release for w in all_windows.values()
    )
    report.utilization = (
        total_demand / (n_processors * span) if span > 0 else math.inf
    )
    report.min_processors = min(n_processors, report.min_processors)
    return report


def min_processors_needed(assignment: DeadlineAssignment) -> int:
    """Demand-derived lower bound on the platform size for ``assignment``.

    Any placement on fewer processors provably misses some window (under
    any dispatching); the converse does not hold (it is a lower bound).
    """
    report = analyze_platform(assignment, n_processors=1)
    return report.min_processors
