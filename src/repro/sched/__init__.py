"""Task assignment and scheduling substrate."""

from repro.sched.analysis import (
    ScheduleMetrics,
    end_to_end_lateness,
    lateness_by_subtask,
    max_lateness,
    message_lateness,
    schedule_metrics,
)
from repro.sched.bus import LinkTimeline, LinkTimelines
from repro.sched.list_scheduler import ListScheduler
from repro.sched.policies import (
    POLICIES,
    EarliestDeadlineFirst,
    EarliestReleaseFirst,
    LeastLaxityFirst,
    LongestProcessingTimeFirst,
    RandomPolicy,
    SelectionPolicy,
    make_policy,
)
from repro.sched.diff import ScheduleDiff, TaskDelta, diff_schedules
from repro.sched.export import schedule_to_json, schedule_to_svg, trace_to_svg
from repro.sched.optimal import BranchAndBoundScheduler, OptimalResult
from repro.sched.schedulability import (
    DemandViolation,
    SchedulabilityReport,
    analyze_placement,
    analyze_platform,
    min_processors_needed,
)
from repro.sched.simulator import (
    ExecutionSegment,
    ExecutionTrace,
    JitterModel,
    Transfer,
    allocation_of,
    simulate_dynamic,
    simulate_fixed,
)
from repro.sched.schedule import (
    HopReservation,
    Schedule,
    ScheduledMessage,
    ScheduledTask,
)

__all__ = [
    "ScheduleMetrics",
    "lateness_by_subtask",
    "max_lateness",
    "message_lateness",
    "end_to_end_lateness",
    "schedule_metrics",
    "LinkTimeline",
    "LinkTimelines",
    "ListScheduler",
    "SelectionPolicy",
    "EarliestDeadlineFirst",
    "LeastLaxityFirst",
    "EarliestReleaseFirst",
    "LongestProcessingTimeFirst",
    "RandomPolicy",
    "POLICIES",
    "make_policy",
    "Schedule",
    "ScheduledTask",
    "ScheduledMessage",
    "HopReservation",
    "ExecutionSegment",
    "ExecutionTrace",
    "JitterModel",
    "Transfer",
    "allocation_of",
    "simulate_dynamic",
    "simulate_fixed",
    "BranchAndBoundScheduler",
    "OptimalResult",
    "DemandViolation",
    "SchedulabilityReport",
    "analyze_platform",
    "analyze_placement",
    "min_processors_needed",
    "ScheduleDiff",
    "TaskDelta",
    "diff_schedules",
    "schedule_to_svg",
    "schedule_to_json",
    "trace_to_svg",
]
