"""Schedule comparison: what changed between two schedules of one graph.

When an ablation (different metric, estimator, topology, policy) shifts
the lateness numbers, the next question is *why*. :func:`diff_schedules`
answers it structurally: which subtasks moved processors, whose start and
finish times shifted, how communication volume changed, and which subtask
is the new lateness bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.sched.schedule import Schedule
from repro.types import NodeId, ProcessorId, Time


@dataclass(frozen=True)
class TaskDelta:
    """Per-subtask differences between two schedules."""

    node_id: NodeId
    processor_before: ProcessorId
    processor_after: ProcessorId
    start_delta: Time
    finish_delta: Time

    @property
    def migrated(self) -> bool:
        return self.processor_before != self.processor_after


@dataclass
class ScheduleDiff:
    """Structured difference between two schedules of the same graph."""

    deltas: List[TaskDelta] = field(default_factory=list)
    makespan_before: Time = 0.0
    makespan_after: Time = 0.0
    communication_before: Time = 0.0
    communication_after: Time = 0.0
    bottleneck_before: Optional[NodeId] = None
    bottleneck_after: Optional[NodeId] = None
    max_lateness_before: Optional[Time] = None
    max_lateness_after: Optional[Time] = None

    @property
    def migrations(self) -> List[TaskDelta]:
        """Subtasks placed on a different processor."""
        return [d for d in self.deltas if d.migrated]

    @property
    def makespan_delta(self) -> Time:
        return self.makespan_after - self.makespan_before

    @property
    def communication_delta(self) -> Time:
        return self.communication_after - self.communication_before

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"{len(self.migrations)}/{len(self.deltas)} subtasks migrated; "
            f"makespan {self.makespan_before:.1f} -> "
            f"{self.makespan_after:.1f} ({self.makespan_delta:+.1f}); "
            f"cross-processor volume {self.communication_before:.1f} -> "
            f"{self.communication_after:.1f} "
            f"({self.communication_delta:+.1f})"
        ]
        if self.max_lateness_before is not None:
            lines.append(
                f"max lateness {self.max_lateness_before:.1f} "
                f"({self.bottleneck_before}) -> "
                f"{self.max_lateness_after:.1f} ({self.bottleneck_after})"
            )
        return "; ".join(lines)


def diff_schedules(
    before: Schedule,
    after: Schedule,
    assignment_before: Optional[DeadlineAssignment] = None,
    assignment_after: Optional[DeadlineAssignment] = None,
) -> ScheduleDiff:
    """Compare two schedules of the same task graph.

    With the deadline assignments given, the diff also reports the
    lateness bottleneck (the argmax subtask) on each side — assignments
    may differ (that is usually the point of the comparison).
    """
    ids_before = set(before.tasks)
    ids_after = set(after.tasks)
    if ids_before != ids_after:
        raise ValidationError(
            "schedules cover different subtask sets: "
            f"{sorted(ids_before ^ ids_after)[:5]}"
        )
    diff = ScheduleDiff(
        makespan_before=before.makespan(),
        makespan_after=after.makespan(),
        communication_before=before.total_communication_volume(),
        communication_after=after.total_communication_volume(),
    )
    for node_id in sorted(ids_before):
        b = before.task(node_id)
        a = after.task(node_id)
        diff.deltas.append(
            TaskDelta(
                node_id=node_id,
                processor_before=b.processor,
                processor_after=a.processor,
                start_delta=a.start - b.start,
                finish_delta=a.finish - b.finish,
            )
        )
    if assignment_before is not None:
        diff.bottleneck_before, diff.max_lateness_before = _bottleneck(
            before, assignment_before
        )
    if assignment_after is not None:
        diff.bottleneck_after, diff.max_lateness_after = _bottleneck(
            after, assignment_after
        )
    return diff


def _bottleneck(
    schedule: Schedule, assignment: DeadlineAssignment
) -> Tuple[NodeId, Time]:
    worst: Optional[Tuple[Time, NodeId]] = None
    for node_id in schedule.tasks:
        lateness = schedule.finish_time(node_id) - assignment.absolute_deadline(
            node_id
        )
        if worst is None or (lateness, node_id) > worst:
            worst = (lateness, node_id)
    assert worst is not None
    return worst[1], worst[0]
