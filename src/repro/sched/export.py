"""Schedule and trace export: SVG Gantt charts and JSON.

The ASCII Gantt (``Schedule.gantt()``) is good for terminals; this module
renders publication-quality SVG without any dependency — processors as
rows, subtasks as labelled boxes, message transfers as bus-row boxes, and
(optionally) the distributed windows as underlays so window violations are
visible at a glance. Execution traces (from the simulator) render the
same way, with preemption segments drawn individually.

JSON export captures the schedule's raw placement for external tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union
from xml.sax.saxutils import escape

from repro.core.annotations import DeadlineAssignment
from repro.errors import ValidationError
from repro.sched.schedule import Schedule
from repro.sched.simulator import ExecutionTrace
from repro.types import Time

#: Layout constants (pixels).
ROW_HEIGHT = 28
ROW_GAP = 8
MARGIN_LEFT = 64
MARGIN_TOP = 24
MARGIN_BOTTOM = 36
BOX_FILL = "#4C78A8"
BOX_FILL_ALT = "#72A0C1"
WINDOW_FILL = "#E8E8E8"
LATE_FILL = "#C44E52"
MESSAGE_FILL = "#DD8452"
TEXT = "#222222"


def _color(index: int) -> str:
    return BOX_FILL if index % 2 == 0 else BOX_FILL_ALT


def schedule_to_svg(
    schedule: Schedule,
    assignment: Optional[DeadlineAssignment] = None,
    width: int = 900,
) -> str:
    """Render a static schedule as an SVG document.

    With ``assignment`` given, each subtask's distributed window is drawn
    as a grey underlay and deadline-missing subtasks are drawn in red.
    """
    horizon = schedule.makespan()
    if assignment is not None:
        horizon = max(
            horizon,
            max(w.absolute_deadline for w in assignment.windows.values()),
        )
    if horizon <= 0:
        raise ValidationError("cannot render an empty schedule")
    scale = (width - MARGIN_LEFT - 16) / horizon

    rows = schedule.system.n_processors
    has_messages = bool(schedule.messages)
    total_rows = rows + (1 if has_messages else 0)
    height = MARGIN_TOP + total_rows * (ROW_HEIGHT + ROW_GAP) + MARGIN_BOTTOM

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    def row_y(row: int) -> float:
        return MARGIN_TOP + row * (ROW_HEIGHT + ROW_GAP)

    def x_of(t: Time) -> float:
        return MARGIN_LEFT + t * scale

    # Row labels and baselines.
    for proc in range(rows):
        y = row_y(proc)
        parts.append(
            f'<text x="8" y="{y + ROW_HEIGHT / 2 + 4}" fill="{TEXT}">'
            f"P{proc:02d}</text>"
        )
        parts.append(
            f'<line x1="{MARGIN_LEFT}" y1="{y + ROW_HEIGHT}" '
            f'x2="{width - 8}" y2="{y + ROW_HEIGHT}" stroke="#CCCCCC"/>'
        )
    if has_messages:
        y = row_y(rows)
        parts.append(
            f'<text x="8" y="{y + ROW_HEIGHT / 2 + 4}" fill="{TEXT}">'
            "net</text>"
        )

    # Window underlays first (so boxes draw over them).
    if assignment is not None:
        for node_id, entry in schedule.tasks.items():
            window = assignment.windows.get(node_id)
            if window is None:
                continue
            y = row_y(entry.processor)
            parts.append(
                f'<rect x="{x_of(window.release):.1f}" y="{y + 4:.1f}" '
                f'width="{max(1.0, (window.relative_deadline) * scale):.1f}" '
                f'height="{ROW_HEIGHT - 8}" fill="{WINDOW_FILL}"/>'
            )

    # Task boxes.
    for index, (node_id, entry) in enumerate(sorted(schedule.tasks.items())):
        y = row_y(entry.processor)
        fill = _color(index)
        if assignment is not None:
            deadline = assignment.windows.get(node_id)
            if deadline is not None and entry.finish > (
                deadline.absolute_deadline + 1e-9
            ):
                fill = LATE_FILL
        parts.append(
            f'<rect x="{x_of(entry.start):.1f}" y="{y + 2:.1f}" '
            f'width="{max(1.0, entry.duration * scale):.1f}" '
            f'height="{ROW_HEIGHT - 4}" fill="{fill}" rx="2"/>'
        )
        parts.append(
            f'<text x="{x_of(entry.start) + 2:.1f}" '
            f'y="{y + ROW_HEIGHT / 2 + 4:.1f}" fill="white">'
            f"{escape(node_id[:12])}</text>"
        )

    # Message boxes on the network row.
    if has_messages:
        y = row_y(rows)
        for (src, dst), message in sorted(schedule.messages.items()):
            for hop in message.hops:
                parts.append(
                    f'<rect x="{x_of(hop.start):.1f}" y="{y + 6:.1f}" '
                    f'width="{max(1.0, (hop.finish - hop.start) * scale):.1f}" '
                    f'height="{ROW_HEIGHT - 12}" fill="{MESSAGE_FILL}" rx="2"/>'
                )
            parts.append(
                f'<text x="{x_of(message.hops[0].start) + 2:.1f}" '
                f'y="{y + ROW_HEIGHT / 2 + 4:.1f}" fill="white">'
                f"{escape(src[:6])}&#8594;{escape(dst[:6])}</text>"
            )

    # Time axis.
    axis_y = row_y(total_rows) + 4
    parts.append(
        f'<line x1="{MARGIN_LEFT}" y1="{axis_y}" x2="{width - 8}" '
        f'y2="{axis_y}" stroke="{TEXT}"/>'
    )
    ticks = 8
    for k in range(ticks + 1):
        t = horizon * k / ticks
        parts.append(
            f'<text x="{x_of(t):.1f}" y="{axis_y + 16}" fill="{TEXT}" '
            f'text-anchor="middle">{t:.0f}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def trace_to_svg(trace: ExecutionTrace, width: int = 900) -> str:
    """Render a simulator trace as SVG (per-segment, shows preemptions)."""
    horizon = trace.makespan()
    if horizon <= 0:
        raise ValidationError("cannot render an empty trace")
    scale = (width - MARGIN_LEFT - 16) / horizon
    rows = trace.system.n_processors
    height = MARGIN_TOP + rows * (ROW_HEIGHT + ROW_GAP) + MARGIN_BOTTOM
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    node_index = {n: i for i, n in enumerate(sorted(trace.completions))}
    for proc in range(rows):
        y = MARGIN_TOP + proc * (ROW_HEIGHT + ROW_GAP)
        parts.append(
            f'<text x="8" y="{y + ROW_HEIGHT / 2 + 4}" fill="{TEXT}">'
            f"P{proc:02d}</text>"
        )
    for segment in trace.segments:
        y = MARGIN_TOP + segment.processor * (ROW_HEIGHT + ROW_GAP)
        x = MARGIN_LEFT + segment.start * scale
        parts.append(
            f'<rect x="{x:.1f}" y="{y + 2:.1f}" '
            f'width="{max(1.0, segment.duration * scale):.1f}" '
            f'height="{ROW_HEIGHT - 4}" '
            f'fill="{_color(node_index[segment.node_id])}" rx="2"/>'
        )
        parts.append(
            f'<text x="{x + 2:.1f}" y="{y + ROW_HEIGHT / 2 + 4:.1f}" '
            f'fill="white">{escape(segment.node_id[:12])}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def schedule_to_json(schedule: Schedule, indent: int = 2) -> str:
    """The schedule's raw placement as JSON (for external tooling)."""
    return json.dumps(
        {
            "format": "repro-schedule",
            "version": 1,
            "n_processors": schedule.system.n_processors,
            "makespan": schedule.makespan(),
            "tasks": [
                {
                    "id": t.node_id,
                    "processor": t.processor,
                    "start": t.start,
                    "finish": t.finish,
                }
                for t in sorted(
                    schedule.tasks.values(), key=lambda t: (t.start, t.node_id)
                )
            ],
            "messages": [
                {
                    "src": m.src,
                    "dst": m.dst,
                    "from": m.src_processor,
                    "to": m.dst_processor,
                    "size": m.size,
                    "hops": [
                        {"link": h.link, "start": h.start, "finish": h.finish}
                        for h in m.hops
                    ],
                }
                for m in schedule.messages.values()
            ],
        },
        indent=indent,
    )
