"""Link reservation: message scheduling on the interconnect.

The paper's bus is time-multiplexed with a cost of one time unit per data
item, and communication proceeds concurrently with computation. We model
each link (the single bus, or per-pair/per-hop links of other topologies)
as an exclusive timeline of reservations. A transfer over a multi-hop route
reserves each link in turn (store-and-forward).

The :class:`LinkTimelines` object supports *probing* (what would the
arrival time be?) separately from *committing* (actually reserve), which
the list scheduler uses to evaluate candidate processors without side
effects. Probing and committing use first-fit gap search, i.e. earliest-
available-slot — messages are served in the order consumers are scheduled,
which for the deadline-driven list scheduler means deadline order, the
deadline-based message scheduling the paper's run-time model calls for.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Sequence, Tuple

from repro.errors import SchedulingError
from repro.machine.topology import Interconnect
from repro.sched.schedule import HopReservation
from repro.types import Time

#: Numerical slack for float comparisons.
EPS = 1e-9


class LinkTimeline:
    """Reservations on one exclusive link, kept sorted by start time."""

    __slots__ = ("_busy",)

    def __init__(self) -> None:
        self._busy: List[Tuple[Time, Time]] = []

    def earliest_slot(self, ready: Time, duration: Time) -> Time:
        """Earliest start >= ready of a free interval of ``duration``."""
        if duration <= 0:
            return ready
        t = ready
        for start, finish in self._busy:
            if t + duration <= start + EPS:
                return t
            if finish > t:
                t = finish
        return t

    def reserve(self, start: Time, duration: Time) -> None:
        """Commit a reservation; it must not overlap existing ones."""
        if duration <= 0:
            return
        finish = start + duration
        for s, f in self._busy:
            if start < f - EPS and s < finish - EPS:
                raise SchedulingError(
                    f"link reservation [{start}, {finish}) overlaps [{s}, {f})"
                )
        insort(self._busy, (start, finish))

    def reservations(self) -> List[Tuple[Time, Time]]:
        return list(self._busy)

    def busy_time(self) -> Time:
        return sum(f - s for s, f in self._busy)


class LinkTimelines:
    """All link timelines of one interconnect, plus routing glue."""

    def __init__(self, interconnect: Interconnect) -> None:
        self.interconnect = interconnect
        self._links: Dict[str, LinkTimeline] = {}

    def _timeline(self, link: str) -> LinkTimeline:
        timeline = self._links.get(link)
        if timeline is None:
            timeline = LinkTimeline()
            self._links[link] = timeline
        return timeline

    def probe_transfer(
        self, src_proc: int, dst_proc: int, size: Time, ready: Time
    ) -> Time:
        """Arrival time of a transfer departing no earlier than ``ready``,
        without reserving anything."""
        route = self.interconnect.route(src_proc, dst_proc)
        if not route or size <= 0:
            return ready
        hop = self.interconnect.hop_cost(size)
        if not self.interconnect.contended:
            return ready + hop * len(route)
        t = ready
        for link in route:
            start = self._timeline(link).earliest_slot(t, hop)
            t = start + hop
        return t

    def commit_transfer(
        self, src_proc: int, dst_proc: int, size: Time, ready: Time
    ) -> List[HopReservation]:
        """Reserve a transfer hop by hop; returns the hop reservations."""
        route = self.interconnect.route(src_proc, dst_proc)
        if not route or size <= 0:
            return []
        hop = self.interconnect.hop_cost(size)
        reservations: List[HopReservation] = []
        t = ready
        for link in route:
            if self.interconnect.contended:
                start = self._timeline(link).earliest_slot(t, hop)
                self._timeline(link).reserve(start, hop)
            else:
                start = t
            reservations.append(
                HopReservation(link=link, start=start, finish=start + hop)
            )
            t = start + hop
        return reservations

    def busy_time(self) -> Dict[str, Time]:
        """Total reserved time per link (diagnostics)."""
        return {link: tl.busy_time() for link, tl in self._links.items()}
