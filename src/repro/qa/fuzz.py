"""Deterministic scenario fuzzer with greedy failure shrinking.

:func:`run_fuzz` sweeps seeded random scenarios over the paper's
parameter space — graph shape and execution-time deviation (Section
5.2), laxity ratios on both sides of feasibility, CCR including the
communication-free degenerate case, all four metrics, both estimation
strategies, platforms from a single processor up — and runs each one
through :func:`repro.qa.invariants.check_pipeline`.

A failing scenario is greedily shrunk (drop a subtask, drop an arc,
round the weights) while it keeps failing the *same* named check, then
serialized via :mod:`repro.graph.serialization` into a standalone
reproducer file that :func:`scenario_from_dict` turns back into a
``(graph, system, metric, estimator)`` quadruple. Everything is keyed
off one integer seed: ``run_fuzz`` twice with the same
:class:`FuzzConfig` and you get byte-identical results.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.commcost import make_estimator
from repro.errors import ReproError
from repro.graph.generator import SCENARIOS, RandomGraphConfig, generate_task_graph
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import make_interconnect
from repro.qa.invariants import QAReport, check_pipeline

#: Identifier of the reproducer file schema.
FAILURE_FORMAT = "repro-qa-failure"
FAILURE_VERSION = 1

#: Metrics the fuzzer cycles through (all four of the paper's).
METRICS = ("NORM", "PURE", "THRES", "ADAPT")

#: Subtask-count brackets, biased toward graphs small enough to shrink
#: and to hand to the exact schedulers.
_SIZE_BRACKETS = ((3, 6), (5, 10), (8, 16), (12, 24))

#: Laxity ratios straddling feasibility: < 1 forces the documented
#: over-constrained (collapsed-window) regime.
_LAXITY_RATIOS = (0.6, 1.0, 1.5, 2.5)

#: CCR values; 0.0 produces graphs whose arcs carry no data at all.
_CCRS = (0.0, 0.5, 1.0, 2.0)

#: Mean execution times; the smallest models the "almost zero cost"
#: subtask edge case (wcet must stay > 0 by the model's contract).
_METS = (0.001, 1.0, 20.0)

_PROCESSOR_COUNTS = (1, 2, 3, 4, 8)
_INTERCONNECTS = ("bus", "ideal")
_ESTIMATORS = ("CCNE", "CCAA")


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters of one fuzzing campaign."""

    seed: int = 0
    trials: int = 100
    #: Wall-clock budget in seconds; ``None`` means run every trial.
    time_budget: Optional[float] = None
    #: Directory for shrunk reproducer files; ``None`` disables writing.
    output_dir: Optional[str] = None
    path_limit: int = 2_000
    bnb_max_subtasks: int = 9
    #: Exhaustive-permutation differential is enabled only up to this
    #: many subtasks *and* at most two processors (factorial blow-up).
    exhaustive_max_subtasks: int = 5
    max_shrink_steps: int = 300
    #: Also differential-check every scalar distribution against the
    #: vectorized batch kernel (``repro fuzz --batch``).
    use_batch: bool = False


@dataclass
class FuzzFailure:
    """One failing scenario, original and shrunk."""

    trial: int
    scenario: Dict[str, Any]
    report: QAReport
    shrunk_graph: TaskGraph
    shrunk_report: QAReport
    reproducer_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Standalone JSON-serializable reproducer."""
        return {
            "format": FAILURE_FORMAT,
            "version": FAILURE_VERSION,
            "scenario": self.scenario,
            "failing_checks": [c.name for c in self.shrunk_report.failures],
            "details": [c.details for c in self.shrunk_report.failures],
            "graph": graph_to_dict(self.shrunk_graph),
        }


@dataclass
class FuzzResult:
    """Outcome of one :func:`run_fuzz` campaign."""

    config: FuzzConfig
    trials_run: int = 0
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"[{status}] fuzz seed={self.config.seed}: "
            f"{self.trials_run}/{self.config.trials} trials in "
            f"{self.elapsed:.1f}s, {len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            checks = ", ".join(c.name for c in f.shrunk_report.failures)
            where = f" -> {f.reproducer_path}" if f.reproducer_path else ""
            lines.append(
                f"  trial {f.trial}: {checks} "
                f"(shrunk to {f.shrunk_graph.n_subtasks} subtasks){where}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Scenario sampling
# ----------------------------------------------------------------------
def _draw_scenario(seed: int, trial: int) -> Dict[str, Any]:
    """Deterministically sample one scenario dict for ``trial``."""
    rng = random.Random(seed * 1_000_003 + trial)
    n_lo, n_hi = rng.choice(_SIZE_BRACKETS)
    depth_hi = max(2, min(4, n_lo))
    n_processors = rng.choice(_PROCESSOR_COUNTS)
    return {
        "trial": trial,
        "graph_config": {
            "n_subtasks_range": [n_lo, n_hi],
            "mean_execution_time": rng.choice(_METS),
            "execution_time_deviation": rng.choice(sorted(SCENARIOS.values())),
            "depth_range": [2, depth_hi],
            "degree_range": [1, rng.choice((1, 2, 3))],
            "overall_laxity_ratio": rng.choice(_LAXITY_RATIOS),
            "olr_basis": rng.choice(("graph-workload", "path-workload")),
            "communication_to_computation_ratio": rng.choice(_CCRS),
            "message_size_deviation": rng.choice((0.0, 0.5)),
            "integer_times": rng.random() < 0.3,
        },
        "generator_seed": rng.randrange(2**32),
        "metric": rng.choice(METRICS),
        "estimator": rng.choice(_ESTIMATORS),
        "n_processors": n_processors,
        "interconnect": rng.choice(_INTERCONNECTS),
        "cost_per_item": rng.choice((0.0, 0.5, 1.0)),
    }


def _build_system(scenario: Dict[str, Any]) -> System:
    return System(
        scenario["n_processors"],
        interconnect=make_interconnect(
            scenario["interconnect"],
            scenario["n_processors"],
            cost_per_item=scenario["cost_per_item"],
        ),
    )


def _build_graph(scenario: Dict[str, Any]) -> TaskGraph:
    cfg = dict(scenario["graph_config"])
    cfg["n_subtasks_range"] = tuple(cfg["n_subtasks_range"])
    cfg["depth_range"] = tuple(cfg["depth_range"])
    cfg["degree_range"] = tuple(cfg["degree_range"])
    return generate_task_graph(
        RandomGraphConfig(**cfg),
        rng=random.Random(scenario["generator_seed"]),
        name=f"fuzz-{scenario['trial']}",
    )


def scenario_from_dict(
    data: Dict[str, Any]
) -> Tuple[TaskGraph, System, str, str]:
    """Rebuild ``(graph, system, metric, estimator)`` from a reproducer.

    Accepts both a full reproducer file (with an embedded shrunk graph)
    and a bare scenario dict (the graph is then regenerated from the
    recorded generator seed).
    """
    scenario = data.get("scenario", data)
    if "graph" in data:
        graph = graph_from_dict(data["graph"])
    else:
        graph = _build_graph(scenario)
    return (
        graph,
        _build_system(scenario),
        scenario["metric"],
        scenario["estimator"],
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _rebuild(
    graph: TaskGraph,
    drop_node: Optional[str] = None,
    drop_edge: Optional[Tuple[str, str]] = None,
    round_times: bool = False,
) -> Optional[TaskGraph]:
    """Copy ``graph`` with one simplification applied, re-anchored.

    Dropping a node or arc can create new inputs (anchored at release 0)
    and new outputs (anchored at the latest existing end-to-end
    deadline). Returns ``None`` when the result is empty or invalid.
    The drops go through :meth:`TaskGraph.remove_subtask` /
    :meth:`TaskGraph.remove_edge`, so every shrink step also exercises
    the structural-mutation cache invalidation the analyses depend on.
    """
    out = graph.copy()
    if drop_node is not None:
        out.remove_subtask(drop_node)
    if drop_edge is not None and out.has_edge(*drop_edge):
        out.remove_edge(*drop_edge)
    if round_times:
        for node in out.nodes():
            node.wcet = max(1.0, float(round(node.wcet)))
        for message in out.messages():
            message.size = max(0.0, float(round(message.size)))
    if out.n_subtasks == 0:
        return None
    fallback_deadline = max(
        (
            n.end_to_end_deadline
            for n in graph.nodes()
            if n.end_to_end_deadline is not None
        ),
        default=None,
    )
    for node_id in out.input_subtasks():
        if out.node(node_id).release is None:
            out.node(node_id).release = 0.0
    for node_id in out.output_subtasks():
        if out.node(node_id).end_to_end_deadline is None:
            out.node(node_id).end_to_end_deadline = fallback_deadline
    try:
        out.validate()
    except ReproError:
        return None
    return out


def shrink_graph(
    graph: TaskGraph,
    still_fails: Callable[[TaskGraph], bool],
    max_steps: int = 300,
) -> TaskGraph:
    """Greedy minimization: keep any simplification that still fails.

    Candidate order is deterministic — drop each subtask, then each arc,
    then round every weight to an integer — and the scan restarts after
    every accepted step, so the result is a local minimum: no single
    further simplification reproduces the failure.
    """
    current = graph
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for node_id in sorted(current.node_ids()):
            steps += 1
            candidate = _rebuild(current, drop_node=node_id)
            if candidate is not None and still_fails(candidate):
                current = candidate
                improved = True
                break
            if steps >= max_steps:
                return current
        if improved:
            continue
        for edge in sorted(current.edges()):
            steps += 1
            candidate = _rebuild(current, drop_edge=edge)
            if candidate is not None and still_fails(candidate):
                current = candidate
                improved = True
                break
            if steps >= max_steps:
                return current
        if improved:
            continue
        candidate = _rebuild(current, round_times=True)
        steps += 1
        if (
            candidate is not None
            and graph_to_dict(candidate) != graph_to_dict(current)
            and still_fails(candidate)
        ):
            current = candidate
            improved = True
    return current


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def _check_scenario(
    graph: TaskGraph, scenario: Dict[str, Any], config: FuzzConfig
) -> QAReport:
    system = _build_system(scenario)
    exhaustive = (
        config.exhaustive_max_subtasks
        if scenario["n_processors"] <= 2
        else 0
    )
    return check_pipeline(
        graph,
        system,
        scenario["metric"],
        estimator=scenario["estimator"],
        path_limit=config.path_limit,
        bnb_max_subtasks=config.bnb_max_subtasks,
        exhaustive_max_subtasks=exhaustive,
        use_batch=config.use_batch,
    )


def replay_reproducer(
    data: Dict[str, Any], config: Optional[FuzzConfig] = None
) -> QAReport:
    """Re-check one reproducer under the campaign's own check gating.

    The live campaign never calls :func:`check_pipeline` directly: it
    goes through :func:`_check_scenario`, which applies the
    :class:`FuzzConfig` limits (path-enumeration budget, B&B size cap)
    and enables the exhaustive-permutation differential only on
    small-platform scenarios. A replay must exercise *exactly* the same
    checks — re-checking with ``check_pipeline``'s defaults (as
    ``repro fuzz --replay`` once did) silently dropped the exhaustive
    differential and widened the B&B gate, so a reproducer whose failure
    sat behind that gating — degenerate scenarios like zero-edge or
    single-subtask graphs are exactly the ones small enough to hit it —
    replayed green.

    Accepts a full reproducer file (the embedded shrunk graph is
    checked) or a bare scenario dict (the graph is regenerated from the
    recorded generator seed). ``config`` defaults to ``FuzzConfig()``;
    pass the campaign's config to reproduce non-default limits.
    """
    if config is None:
        config = FuzzConfig()
    scenario = data.get("scenario", data)
    if "graph" in data:
        graph = graph_from_dict(data["graph"])
    else:
        graph = _build_graph(scenario)
    return _check_scenario(graph, scenario, config)


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[int, Optional[FuzzFailure]], None]] = None,
) -> FuzzResult:
    """Run one deterministic fuzzing campaign.

    ``progress`` (if given) is called after every trial with the trial
    index and the failure it produced, if any.
    """
    start = time.monotonic()
    result = FuzzResult(config=config)
    for trial in range(config.trials):
        if (
            config.time_budget is not None
            and time.monotonic() - start >= config.time_budget
        ):
            break
        scenario = _draw_scenario(config.seed, trial)
        graph = _build_graph(scenario)
        report = _check_scenario(graph, scenario, config)
        result.trials_run += 1
        failure: Optional[FuzzFailure] = None
        if not report.ok:
            failure = _shrink_failure(graph, scenario, report, config)
            if config.output_dir is not None:
                failure.reproducer_path = _write_reproducer(failure, config)
            result.failures.append(failure)
        if progress is not None:
            progress(trial, failure)
    result.elapsed = time.monotonic() - start
    return result


def _shrink_failure(
    graph: TaskGraph,
    scenario: Dict[str, Any],
    report: QAReport,
    config: FuzzConfig,
) -> FuzzFailure:
    # Anchor the shrink to the first failing check so simplification
    # cannot wander off onto an unrelated failure mode.
    target = report.failures[0].name

    def still_fails(candidate: TaskGraph) -> bool:
        probe = _check_scenario(candidate, scenario, config)
        return any(c.name == target for c in probe.failures)

    shrunk = shrink_graph(graph, still_fails, max_steps=config.max_shrink_steps)
    return FuzzFailure(
        trial=scenario["trial"],
        scenario=scenario,
        report=report,
        shrunk_graph=shrunk,
        shrunk_report=_check_scenario(shrunk, scenario, config),
    )


def _write_reproducer(failure: FuzzFailure, config: FuzzConfig) -> str:
    os.makedirs(config.output_dir, exist_ok=True)
    path = os.path.join(
        config.output_dir,
        f"failure-seed{config.seed}-trial{failure.trial}.json",
    )
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(failure.to_dict(), fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path
