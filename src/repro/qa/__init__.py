"""Differential verification: reference oracles, invariants, fuzzing.

The optimized pipeline (indexed graph core, cached expanded overlay,
integer-id slicer, branch-and-bound search) is checked against small,
deliberately naive re-implementations whose correctness is evident by
inspection:

* :mod:`repro.qa.oracles` — dict-based longest-path / parallelism
  analysis, a path-enumeration assignment oracle, an
  exhaustive-permutation optimal scheduler for tiny graphs, and an
  event-replay schedule checker;
* :mod:`repro.qa.invariants` — :func:`check_pipeline`, which runs
  generate → distribute → schedule and asserts cross-layer invariants,
  returning a structured :class:`QAReport`;
* :mod:`repro.qa.fuzz` — a deterministic fuzzer over the paper's
  parameter space that shrinks any failing scenario to a minimal
  serialized reproducer (surfaced through ``repro fuzz``).

Every later performance PR runs against this layer: an optimization that
drifts from the oracles is a bug, not a speedup.
"""

from repro.qa.fuzz import (
    FuzzConfig,
    FuzzFailure,
    FuzzResult,
    replay_reproducer,
    run_fuzz,
    scenario_from_dict,
    shrink_graph,
)
from repro.qa.invariants import CheckResult, QAReport, check_pipeline
from repro.qa.oracles import (
    ExhaustiveResult,
    ExhaustiveScheduler,
    ReplayReport,
    oracle_average_parallelism,
    oracle_graph_depth,
    oracle_longest_path_length,
    oracle_validate_assignment,
    replay_schedule,
)

__all__ = [
    "CheckResult",
    "ExhaustiveResult",
    "ExhaustiveScheduler",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzResult",
    "QAReport",
    "ReplayReport",
    "check_pipeline",
    "oracle_average_parallelism",
    "oracle_graph_depth",
    "oracle_longest_path_length",
    "oracle_validate_assignment",
    "replay_reproducer",
    "replay_schedule",
    "run_fuzz",
    "scenario_from_dict",
    "shrink_graph",
]
