"""Reference oracles: naive re-implementations of the hot paths.

Each oracle trades every optimization in the production code (dense ids,
CSR adjacency, cached overlays, branch-and-bound pruning) for the most
obvious dict-and-recursion formulation of the same definition. They are
slow and proud of it: their job is to be *evidently* correct so the fast
implementations can be checked against them.

* :func:`oracle_longest_path_length`, :func:`oracle_graph_depth`,
  :func:`oracle_average_parallelism` — graph analysis without
  :class:`~repro.graph.indexed.GraphIndex`;
* :func:`oracle_validate_assignment` — the paper's literal path-sum
  constraint by exhaustive enumeration, independent of
  :mod:`repro.core.validation`;
* :class:`ExhaustiveScheduler` — the true minimum of the maximum task
  lateness over *every* non-delay placement of a tiny graph, by complete
  enumeration of (ready subtask, processor) decision sequences under the
  same contention-free model as :mod:`repro.sched.optimal`;
* :func:`replay_schedule` — an event-replay checker that re-simulates a
  :class:`~repro.sched.schedule.Schedule` and reports every violated
  run-time rule instead of trusting the scheduler's own bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.errors import SchedulingError
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.sched.schedule import Schedule
from repro.types import TIME_EPS, NodeId, ProcessorId, Time


# ----------------------------------------------------------------------
# Graph analysis oracles (vs repro.graph.paths / repro.graph.analysis)
# ----------------------------------------------------------------------
def oracle_longest_path_length(
    graph: TaskGraph, include_messages: bool = False
) -> Time:
    """Heaviest-path execution length by memoized recursion over dicts."""
    memo: Dict[NodeId, Time] = {}

    def heaviest_from(node_id: NodeId) -> Time:
        if node_id in memo:
            return memo[node_id]
        best_tail = 0.0
        for succ in graph.successors(node_id):
            tail = heaviest_from(succ)
            if include_messages:
                tail += graph.message(node_id, succ).size
            best_tail = max(best_tail, tail)
        memo[node_id] = graph.node(node_id).wcet + best_tail
        return memo[node_id]

    # Iterative-deepening via explicit order avoids recursion limits on
    # deep graphs: resolve nodes in reverse topological order.
    for node_id in reversed(graph.topological_order()):
        heaviest_from(node_id)
    return max(memo.values())


def oracle_graph_depth(graph: TaskGraph) -> int:
    """Level count: nodes on the hop-longest path, one dict at a time."""
    depth: Dict[NodeId, int] = {}
    for node_id in graph.topological_order():
        preds = graph.predecessors(node_id)
        depth[node_id] = 1 + max((depth[p] for p in preds), default=0)
    return max(depth.values())


def oracle_average_parallelism(graph: TaskGraph) -> float:
    """The paper's ξ from first principles: Σc / longest path."""
    total = sum(graph.node(n).wcet for n in graph.node_ids())
    return total / oracle_longest_path_length(graph)


# ----------------------------------------------------------------------
# Assignment oracle (vs repro.core.validation)
# ----------------------------------------------------------------------
def oracle_validate_assignment(
    assignment: DeadlineAssignment, path_limit: int = 20_000
) -> List[str]:
    """Check a deadline assignment by brute force; return violations.

    Re-derives every rule of the problem statement directly:

    * every subtask holds a window and no window runs backwards;
    * along every arc, the producer's deadline precedes the consumer's
      release (through the communication window when one exists);
    * input/output anchors are respected;
    * the paper's literal constraint: on every enumerated end-to-end
      path, the relative deadlines (tasks and assigned message windows)
      sum to at most the end-to-end budget.

    Own recursive path enumeration — shares no code with
    :func:`repro.core.validation.validate_assignment`, which is the point.
    """
    graph = assignment.graph
    violations: List[str] = []

    for node_id in graph.node_ids():
        if node_id not in assignment.windows:
            violations.append(f"missing window for {node_id!r}")
    if violations:
        return violations

    for node_id in graph.node_ids():
        window = assignment.windows[node_id]
        if window.absolute_deadline < window.release - TIME_EPS:
            violations.append(f"window of {node_id!r} runs backwards")

    for src, dst in graph.edges():
        upstream = assignment.windows[src].absolute_deadline
        comm = assignment.message_windows.get((src, dst))
        if comm is not None:
            if comm.release < upstream - TIME_EPS:
                violations.append(
                    f"comm window {src!r}->{dst!r} releases before "
                    f"producer deadline"
                )
            upstream = comm.absolute_deadline
        if assignment.windows[dst].release < upstream - TIME_EPS:
            violations.append(
                f"arc {src!r}->{dst!r}: consumer releases before "
                f"upstream deadline"
            )

    for node_id in graph.input_subtasks():
        anchor = graph.node(node_id).release
        if anchor is not None and (
            assignment.windows[node_id].release < anchor - TIME_EPS
        ):
            violations.append(f"input {node_id!r} releases before its anchor")
    for node_id in graph.output_subtasks():
        anchor = graph.node(node_id).end_to_end_deadline
        if anchor is not None and (
            assignment.windows[node_id].absolute_deadline > anchor + TIME_EPS
        ):
            violations.append(f"output {node_id!r} overruns its anchor")

    remaining = [path_limit]
    for src in graph.input_subtasks():
        release = graph.node(src).release
        if release is None:
            continue
        for dst in graph.output_subtasks():
            deadline = graph.node(dst).end_to_end_deadline
            if deadline is None:
                continue
            budget = deadline - release
            for path in _all_paths(graph, src, dst, remaining):
                total = sum(
                    assignment.windows[n].relative_deadline for n in path
                )
                for a, b in zip(path, path[1:]):
                    w = assignment.message_windows.get((a, b))
                    if w is not None:
                        total += w.relative_deadline
                if total > budget + TIME_EPS:
                    violations.append(
                        f"path {'->'.join(path)}: windows sum to {total}, "
                        f"budget {budget}"
                    )
    return violations


def _all_paths(
    graph: TaskGraph, src: NodeId, dst: NodeId, remaining: List[int]
) -> List[List[NodeId]]:
    """Every simple path from src to dst, naive recursion, shared budget."""
    out: List[List[NodeId]] = []

    def walk(node: NodeId, prefix: List[NodeId]) -> None:
        if remaining[0] <= 0:
            return
        if node == dst:
            remaining[0] -= 1
            out.append(prefix + [node])
            return
        for succ in graph.successors(node):
            walk(succ, prefix + [node])

    walk(src, [])
    return out


# ----------------------------------------------------------------------
# Exhaustive optimal scheduler (vs repro.sched.optimal)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of a complete non-delay enumeration."""

    max_lateness: Time
    n_complete_schedules: int
    n_decisions: int


class ExhaustiveScheduler:
    """Minimum max-lateness by enumerating *every* non-delay schedule.

    Exactly the branch-and-bound scheduler's model — non-preemptive,
    greedy start times, contention-free interconnect, pins honoured —
    with no bound, no incumbent, no symmetry breaking and no ordering
    heuristic: every interleaving of (ready subtask, processor) decisions
    is expanded. Exponential twice over; refuse anything bigger than
    ``max_subtasks`` (default 8) and stop at ``decision_limit`` expansions
    rather than hang.
    """

    def __init__(
        self,
        system: System,
        max_subtasks: int = 8,
        decision_limit: int = 5_000_000,
    ) -> None:
        if not isinstance(system.interconnect, IdealNetwork):
            system = System(
                system.n_processors,
                interconnect=IdealNetwork(
                    system.n_processors,
                    cost_per_item=system.interconnect.cost_per_item,
                ),
                speeds=[p.speed for p in system.processors],
            )
        self.system = system
        self.max_subtasks = max_subtasks
        self.decision_limit = decision_limit

    def min_max_lateness(
        self, graph: TaskGraph, assignment: DeadlineAssignment
    ) -> ExhaustiveResult:
        """The true optimum of the maximum task lateness."""
        if graph.n_subtasks > self.max_subtasks:
            raise SchedulingError(
                f"exhaustive enumeration limited to {self.max_subtasks} "
                f"subtasks, got {graph.n_subtasks}"
            )
        node_ids = graph.node_ids()
        deadline = {n: assignment.absolute_deadline(n) for n in node_ids}
        hop_cost = self.system.interconnect.hop_cost
        state = {
            "best": float("inf"),
            "complete": 0,
            "decisions": 0,
        }
        finish: Dict[NodeId, Time] = {}
        placement: Dict[NodeId, ProcessorId] = {}
        proc_avail: Dict[ProcessorId, Time] = {
            p: 0.0 for p in range(self.system.n_processors)
        }
        pending = {n: graph.in_degree(n) for n in node_ids}

        def explore(ready: List[NodeId], worst: Time) -> None:
            if state["decisions"] >= self.decision_limit:
                raise SchedulingError(
                    f"exhaustive enumeration exceeded "
                    f"{self.decision_limit} decisions"
                )
            if not ready:
                state["complete"] += 1
                state["best"] = min(state["best"], worst)
                return
            for node_id in list(ready):
                node = graph.node(node_id)
                procs = (
                    [node.pinned_to]
                    if node.is_pinned
                    else list(range(self.system.n_processors))
                )
                for proc in procs:
                    state["decisions"] += 1
                    start = proc_avail[proc]
                    for pred in graph.predecessors(node_id):
                        arrival = finish[pred]
                        size = graph.message(pred, node_id).size
                        if placement[pred] != proc and size > 0:
                            arrival += hop_cost(size)
                        start = max(start, arrival)
                    end = start + self.system.execution_time(proc, node.wcet)

                    finish[node_id] = end
                    placement[node_id] = proc
                    saved_avail = proc_avail[proc]
                    proc_avail[proc] = end
                    next_ready = [r for r in ready if r != node_id]
                    for succ in graph.successors(node_id):
                        pending[succ] -= 1
                        if pending[succ] == 0:
                            next_ready.append(succ)

                    explore(next_ready, max(worst, end - deadline[node_id]))

                    for succ in graph.successors(node_id):
                        pending[succ] += 1
                    proc_avail[proc] = saved_avail
                    del placement[node_id]
                    del finish[node_id]

        explore([n for n in node_ids if pending[n] == 0], float("-inf"))
        return ExhaustiveResult(
            max_lateness=state["best"],
            n_complete_schedules=state["complete"],
            n_decisions=state["decisions"],
        )


# ----------------------------------------------------------------------
# Event-replay schedule checker (vs Schedule.validate + sched.analysis)
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """What an event replay of a schedule observed."""

    violations: List[str] = field(default_factory=list)
    #: Max task lateness recomputed from the replayed finish times, when
    #: an assignment was supplied.
    max_lateness: Optional[Time] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def replay_schedule(
    schedule: Schedule,
    assignment: Optional[DeadlineAssignment] = None,
) -> ReplayReport:
    """Re-simulate a static schedule event by event and report violations.

    A single time-ordered sweep over every start/finish event checks

    * **processor exclusivity** — never two subtasks running on one
      processor, and pins honoured;
    * **precedence** — no subtask starts before each input is produced
      and (for cross-processor arcs with data) transferred;
    * **communication windows** — every hop reservation matches the
      interconnect's route and per-hop cost, hops are sequential, and no
      two messages occupy a contended link at once;
    * **lateness accounting** — with an ``assignment``, finish times are
      turned back into the max-lateness figure for differential checks.

    Unlike :meth:`Schedule.validate`, which raises on first
    inconsistency, the replay collects everything it sees.
    """
    report = ReplayReport()
    graph = schedule.graph
    system = schedule.system

    for node_id in graph.node_ids():
        if node_id not in schedule.tasks:
            report.violations.append(f"subtask {node_id!r} never scheduled")
    if report.violations:
        return report

    for entry in schedule.tasks.values():
        node = graph.node(entry.node_id)
        if entry.finish < entry.start - TIME_EPS:
            report.violations.append(
                f"subtask {entry.node_id!r} finishes before it starts"
            )
        if not 0 <= entry.processor < system.n_processors:
            report.violations.append(
                f"subtask {entry.node_id!r} on unknown processor "
                f"{entry.processor}"
            )
        elif node.is_pinned and entry.processor != node.pinned_to:
            report.violations.append(
                f"subtask {entry.node_id!r} violates its pin to "
                f"{node.pinned_to}"
            )

    # (time, phase, kind, resource, who): phase orders finishes before
    # starts at equal times, so back-to-back occupancy is legal.
    events: List[Tuple[Time, int, str, object, str]] = []
    for entry in schedule.tasks.values():
        events.append(
            (entry.start, 1, "proc", entry.processor, entry.node_id)
        )
        events.append(
            (entry.finish, 0, "proc", entry.processor, entry.node_id)
        )
    contended = system.interconnect.contended
    for (src, dst), message in schedule.messages.items():
        label = f"{src}->{dst}"
        for hop in message.hops:
            # Zero-width reservations (free interconnect) occupy nothing.
            if contended and hop.finish > hop.start:
                events.append((hop.start, 1, "link", hop.link, label))
                events.append((hop.finish, 0, "link", hop.link, label))

    occupant: Dict[Tuple[str, object], Optional[str]] = {}
    for time_, phase, kind, resource, who in sorted(
        events, key=lambda e: (e[0], e[1], str(e[3]), e[4])
    ):
        key = (kind, resource)
        holder = occupant.get(key)
        if phase == 0:  # release
            if holder == who:
                occupant[key] = None
        else:  # acquire
            if holder is not None and holder != who:
                what = "processor" if kind == "proc" else "link"
                report.violations.append(
                    f"{who!r} and {holder!r} overlap on {what} {resource!r}"
                    f" at t={time_:g}"
                )
            occupant[key] = who

    for src, dst in graph.edges():
        producer = schedule.tasks[src]
        consumer = schedule.tasks[dst]
        transfer = schedule.messages.get((src, dst))
        size = graph.message(src, dst).size
        if transfer is None:
            if producer.processor != consumer.processor and size > 0:
                report.violations.append(
                    f"arc {src!r}->{dst!r} crosses processors with data "
                    "but no transfer"
                )
            arrival = producer.finish
        else:
            expected_route = system.interconnect.route(
                transfer.src_processor, transfer.dst_processor
            )
            hop_links = [hop.link for hop in transfer.hops]
            if hop_links != list(expected_route):
                report.violations.append(
                    f"message {src!r}->{dst!r} took links {hop_links}, "
                    f"route says {list(expected_route)}"
                )
            expected_cost = system.interconnect.hop_cost(transfer.size)
            previous_finish = producer.finish
            for hop in transfer.hops:
                if hop.start < previous_finish - TIME_EPS:
                    report.violations.append(
                        f"message {src!r}->{dst!r} hop on {hop.link!r} "
                        "departs before its data is available"
                    )
                if abs((hop.finish - hop.start) - expected_cost) > TIME_EPS:
                    report.violations.append(
                        f"message {src!r}->{dst!r} hop on {hop.link!r} "
                        f"lasts {hop.finish - hop.start:g}, "
                        f"cost model says {expected_cost:g}"
                    )
                previous_finish = hop.finish
            arrival = transfer.arrival
        if consumer.start < arrival - TIME_EPS:
            report.violations.append(
                f"subtask {dst!r} starts before its input from {src!r} "
                "arrives"
            )

    if assignment is not None:
        report.max_lateness = max(
            schedule.tasks[n].finish - assignment.absolute_deadline(n)
            for n in graph.node_ids()
        )
    return report
