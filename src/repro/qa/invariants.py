"""Cross-layer invariants of the generate → distribute → schedule pipeline.

:func:`check_pipeline` runs one scenario end to end and checks every
inter-layer contract the reproduction relies on, using the naive oracles
of :mod:`repro.qa.oracles` as the other side of each differential:

* the indexed graph analysis agrees with the dict-based oracles;
* the expanded-graph overlay is structurally consistent with the base
  graph under the chosen estimator;
* the deadline distribution satisfies the window form *and* the paper's
  literal path-sum constraint (by independent enumeration), honouring
  the documented over-constrained regime (collapsed windows);
* the list schedule survives the event-replay checker, and its lateness
  accounting matches :mod:`repro.sched.analysis` exactly;
* the list scheduler never beats branch-and-bound, and — on graphs small
  enough — branch-and-bound matches the exhaustive-permutation optimum;
* running the same pipeline with telemetry active is bit-identical to
  running it untraced.

The result is a structured :class:`QAReport`; nothing raises, so the
fuzzer can shrink on any failed check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.annotations import DeadlineAssignment
from repro.core.commcost import make_estimator
from repro.core.expanded import ExpandedGraph
from repro.core.metrics import make_metric
from repro.core.slicer import DeadlineDistributor
from repro.core.validation import validate_assignment
from repro.errors import ReproError
from repro.graph import analysis as graph_analysis
from repro.graph import paths as graph_paths
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import IdealNetwork
from repro.qa import oracles
from repro.sched.analysis import max_lateness as sched_max_lateness
from repro.sched.list_scheduler import ListScheduler
from repro.sched.optimal import BranchAndBoundScheduler
from repro.sched.schedule import Schedule
from repro.types import TIME_EPS


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named invariant check."""

    name: str
    ok: bool
    details: str = ""


@dataclass
class QAReport:
    """Structured outcome of one :func:`check_pipeline` run."""

    graph_name: str
    metric: str
    estimator: str
    n_processors: int
    n_subtasks: int
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        head = (
            f"[{status}] {self.graph_name}: {self.metric}/{self.estimator} "
            f"on {self.n_processors} processor(s), "
            f"{self.n_subtasks} subtasks — "
            f"{len(self.checks) - len(self.failures)}/{len(self.checks)} "
            "checks passed"
        )
        lines = [head]
        for c in self.failures:
            lines.append(f"  FAIL {c.name}: {c.details}")
        return "\n".join(lines)

    def _add(self, name: str, ok: bool, details: str = "") -> None:
        self.checks.append(
            CheckResult(name=name, ok=ok, details=details if not ok else "")
        )


def check_pipeline(
    graph: TaskGraph,
    system: System,
    metric: str,
    estimator: str = "CCNE",
    path_limit: int = 5_000,
    bnb_max_subtasks: int = 12,
    exhaustive_max_subtasks: int = 0,
    use_batch: bool = False,
) -> QAReport:
    """Run one scenario through every layer and report invariant results.

    ``exhaustive_max_subtasks`` gates the factorial-time exhaustive
    scheduler differential (0 disables it); ``bnb_max_subtasks`` gates
    the branch-and-bound comparison. Both only ever *add* checks — the
    cheap invariants always run. ``use_batch`` additionally runs the
    distribution through the vectorized batch kernel
    (:mod:`repro.core.batch`) and asserts it is bit-identical to the
    scalar result (or took the documented scalar fallback).
    """
    report = QAReport(
        graph_name=graph.name,
        metric=metric.upper(),
        estimator=estimator.upper(),
        n_processors=system.n_processors,
        n_subtasks=graph.n_subtasks,
    )
    try:
        _check_analysis(graph, report)
        est = make_estimator(estimator)
        _check_expanded_overlay(graph, est, report)
        distributor = DeadlineDistributor(make_metric(metric), est)
        assignment = distributor.distribute(
            graph,
            n_processors=system.n_processors,
            total_capacity=sum(p.speed for p in system.processors),
        )
        _check_distribution(graph, assignment, path_limit, report)
        if use_batch:
            _check_batch_identity(
                graph, system, metric, estimator, assignment, report
            )
        schedule = ListScheduler(system).schedule(graph, assignment)
        _check_schedule(schedule, assignment, report)
        _check_optimality(
            graph, system, assignment, report,
            bnb_max_subtasks, exhaustive_max_subtasks,
        )
        _check_traced_identity(
            graph, system, metric, estimator, assignment, schedule, report
        )
    except ReproError as exc:
        report._add("pipeline.completes", False, f"{type(exc).__name__}: {exc}")
    return report


# ----------------------------------------------------------------------
def _check_analysis(graph: TaskGraph, report: QAReport) -> None:
    fast = graph_paths.longest_path_length(graph)
    slow = oracles.oracle_longest_path_length(graph)
    report._add(
        "analysis.longest_path",
        math.isclose(fast, slow, rel_tol=1e-9, abs_tol=TIME_EPS),
        f"indexed={fast!r} oracle={slow!r}",
    )
    fast_m = graph_paths.longest_path_length(graph, include_messages=True)
    slow_m = oracles.oracle_longest_path_length(graph, include_messages=True)
    report._add(
        "analysis.longest_path_with_messages",
        math.isclose(fast_m, slow_m, rel_tol=1e-9, abs_tol=TIME_EPS),
        f"indexed={fast_m!r} oracle={slow_m!r}",
    )
    report._add(
        "analysis.depth",
        graph_paths.graph_depth(graph) == oracles.oracle_graph_depth(graph),
        f"indexed={graph_paths.graph_depth(graph)} "
        f"oracle={oracles.oracle_graph_depth(graph)}",
    )
    fast_xi = graph_analysis.graph_stats(graph).average_parallelism
    slow_xi = oracles.oracle_average_parallelism(graph)
    report._add(
        "analysis.parallelism",
        math.isclose(fast_xi, slow_xi, rel_tol=1e-9, abs_tol=TIME_EPS),
        f"indexed={fast_xi!r} oracle={slow_xi!r}",
    )


def _check_expanded_overlay(
    graph: TaskGraph, estimator, report: QAReport
) -> None:
    expanded = ExpandedGraph.for_graph(graph, estimator)
    problems: List[str] = []

    task_eids = {n.eid for n in expanded.task_nodes()}
    if task_eids != set(graph.node_ids()):
        problems.append("task nodes do not mirror the graph's subtasks")
    for node in expanded.task_nodes():
        if node.cost != graph.node(node.task_id).wcet:
            problems.append(f"task {node.eid!r} cost drifted from wcet")

    expected_comm = {}
    for message in graph.messages():
        estimate = estimator.estimate(graph, message)
        if estimate > 0:
            expected_comm[(message.src, message.dst)] = estimate
    actual_comm = {n.edge: n.cost for n in expanded.comm_nodes()}
    if set(actual_comm) != set(expected_comm):
        problems.append(
            "comm nodes do not match the positive-estimate arcs: "
            f"{sorted(set(actual_comm) ^ set(expected_comm))[:4]}"
        )
    else:
        for edge, estimate in expected_comm.items():
            if actual_comm[edge] != estimate:
                problems.append(f"comm cost of {edge!r} drifted")

    for src, dst in graph.edges():
        if (src, dst) in expected_comm:
            chi = f"chi({src}->{dst})"
            ok = (
                chi in expanded
                and dst in expanded.successors(chi)
                and src in expanded.predecessors(chi)
                and chi in expanded.successors(src)
            )
            if not ok:
                problems.append(f"arc {src!r}->{dst!r} not spliced through {chi}")
        elif dst not in expanded.successors(src):
            problems.append(f"zero-cost arc {src!r}->{dst!r} lost")

    topo = expanded.topological_order()
    if sorted(topo) != sorted(expanded.eids):
        problems.append("expanded topological order is not a permutation")
    position = {eid: i for i, eid in enumerate(topo)}
    for eid in expanded.eids:
        for succ in expanded.successors(eid):
            if position[succ] <= position[eid]:
                problems.append("expanded topological order violates an arc")
                break

    report._add("expanded.overlay", not problems, "; ".join(problems[:5]))


def _check_distribution(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    path_limit: int,
    report: QAReport,
) -> None:
    validation = validate_assignment(
        assignment, check_paths=True, path_limit=path_limit
    )
    oracle_violations = oracles.oracle_validate_assignment(
        assignment, path_limit=path_limit
    )
    degenerate = assignment.degenerate_windows()

    report._add(
        "distribution.covers_graph",
        not validation.missing_windows,
        "; ".join(validation.missing_windows[:3]),
    )
    if not degenerate:
        # Feasible regime: both the production validator and the
        # path-enumeration oracle must be fully clean.
        report._add(
            "distribution.window_form",
            validation.ok,
            "; ".join(
                (validation.precedence_violations
                 + validation.anchor_violations
                 + validation.path_violations)[:3]
            ),
        )
        report._add(
            "distribution.path_oracle",
            not oracle_violations,
            "; ".join(oracle_violations[:3]),
        )
    else:
        # Documented over-constrained regime: violations are permitted
        # only immediately downstream of a collapsed (zero-width) window
        # (slicer docs) — anything else is a real bug.
        report._add(
            "distribution.degenerate_contract",
            _collapsed_upstream_only(graph, assignment),
            f"{len(degenerate)} degenerate window(s) but a violation "
            "sits downstream of a non-collapsed window",
        )


def _collapsed_upstream_only(
    graph: TaskGraph, assignment: DeadlineAssignment
) -> bool:
    """Every precedence break sits downstream of a zero-width window."""
    for src, dst in graph.edges():
        upstream = assignment.window(src)
        comm = assignment.message_window(src, dst)
        if comm is not None:
            if (
                comm.release < upstream.absolute_deadline - TIME_EPS
                and upstream.relative_deadline > TIME_EPS
            ):
                return False
            upstream = comm
        if (
            assignment.window(dst).release
            < upstream.absolute_deadline - TIME_EPS
            and upstream.relative_deadline > TIME_EPS
        ):
            return False
    return True


def _distribution_image(assignment: DeadlineAssignment):
    """Exact image of one distribution (order-insensitive window maps,
    order-sensitive slice log) for bit-identity comparison."""
    return (
        {n: (w.release, w.absolute_deadline, w.cost)
         for n, w in assignment.windows.items()},
        {e: (w.release, w.absolute_deadline, w.cost)
         for e, w in assignment.message_windows.items()},
        [(rec.nodes, rec.ratio, rec.release, rec.deadline)
         for rec in assignment.slices],
        assignment.metric_name,
        assignment.comm_strategy_name,
        assignment.n_processors,
    )


def _check_batch_identity(
    graph: TaskGraph,
    system: System,
    metric: str,
    estimator: str,
    assignment: DeadlineAssignment,
    report: QAReport,
) -> None:
    """Differential: the batch kernel's result must equal the scalar one.

    Unsupported configurations (NORM) take the kernel's scalar fallback
    inside :func:`repro.core.batch.distribute_many`, so the check then
    degenerates to scalar-vs-scalar determinism — still worth asserting.
    """
    from repro.core.batch import DistributeRequest, distribute_many

    distributor = DeadlineDistributor(
        make_metric(metric), make_estimator(estimator)
    )
    try:
        batched = distribute_many([
            DistributeRequest(
                graph=graph,
                distributor=distributor,
                n_processors=system.n_processors,
                total_capacity=sum(p.speed for p in system.processors),
            )
        ])[0]
    except ReproError as exc:
        report._add(
            "distribution.batch_identical",
            False,
            f"batch kernel raised {type(exc).__name__} where the scalar "
            f"path succeeded: {exc}",
        )
        return
    report._add(
        "distribution.batch_identical",
        _distribution_image(batched) == _distribution_image(assignment),
        "batch kernel diverged from the scalar distribution",
    )


def _check_schedule(
    schedule: Schedule, assignment: DeadlineAssignment, report: QAReport
) -> None:
    replay = oracles.replay_schedule(schedule, assignment)
    report._add(
        "schedule.replay",
        replay.ok,
        "; ".join(replay.violations[:5]),
    )
    accounted = sched_max_lateness(schedule, assignment)
    report._add(
        "schedule.lateness_accounting",
        replay.max_lateness == accounted,
        f"replay={replay.max_lateness!r} analysis={accounted!r}",
    )


def _check_optimality(
    graph: TaskGraph,
    system: System,
    assignment: DeadlineAssignment,
    report: QAReport,
    bnb_max_subtasks: int,
    exhaustive_max_subtasks: int,
) -> None:
    if graph.n_subtasks > bnb_max_subtasks:
        return
    # Contention-free platform on both sides: that is the class of
    # problems branch-and-bound is exact for (see repro.sched.optimal).
    ideal = System(
        system.n_processors,
        interconnect=IdealNetwork(
            system.n_processors,
            cost_per_item=system.interconnect.cost_per_item,
        ),
        speeds=[p.speed for p in system.processors],
    )
    list_schedule = ListScheduler(ideal).schedule(graph, assignment)
    list_lateness = sched_max_lateness(list_schedule, assignment)
    bnb = BranchAndBoundScheduler(ideal).schedule(graph, assignment)
    report._add(
        "optimal.never_worse_than_list",
        bnb.max_lateness <= list_lateness + TIME_EPS,
        f"bnb={bnb.max_lateness!r} list={list_lateness!r}",
    )
    replay = oracles.replay_schedule(bnb.schedule, assignment)
    report._add(
        "optimal.schedule_replay",
        replay.ok,
        "; ".join(replay.violations[:5]),
    )
    if (
        bnb.proven_optimal
        and graph.n_subtasks <= exhaustive_max_subtasks
    ):
        exhaustive = oracles.ExhaustiveScheduler(ideal).min_max_lateness(
            graph, assignment
        )
        report._add(
            "optimal.matches_exhaustive",
            math.isclose(
                bnb.max_lateness,
                exhaustive.max_lateness,
                rel_tol=1e-9,
                abs_tol=TIME_EPS,
            ),
            f"bnb={bnb.max_lateness!r} "
            f"exhaustive={exhaustive.max_lateness!r} "
            f"({exhaustive.n_complete_schedules} schedules)",
        )


def _snapshot(assignment: DeadlineAssignment, schedule: Schedule):
    """Exact image of one pipeline run for bit-identity comparison."""
    return (
        [(n, w.release, w.absolute_deadline, w.cost)
         for n, w in assignment.windows.items()],
        [(e, w.release, w.absolute_deadline, w.cost)
         for e, w in assignment.message_windows.items()],
        [(rec.nodes, rec.ratio, rec.release, rec.deadline)
         for rec in assignment.slices],
        [(t.node_id, t.processor, t.start, t.finish)
         for t in schedule.tasks.values()],
        [(e, m.hops) for e, m in schedule.messages.items()],
    )


def _check_traced_identity(
    graph: TaskGraph,
    system: System,
    metric: str,
    estimator: str,
    assignment: DeadlineAssignment,
    schedule: Schedule,
    report: QAReport,
) -> None:
    from repro.obs import Telemetry, activate

    # A fresh copy forces the expanded overlay to rebuild, so this also
    # differentially checks cache-vs-rebuild determinism.
    copy = graph.copy()
    with activate(Telemetry()):
        distributor = DeadlineDistributor(
            make_metric(metric), make_estimator(estimator)
        )
        traced_assignment = distributor.distribute(
            copy,
            n_processors=system.n_processors,
            total_capacity=sum(p.speed for p in system.processors),
        )
        traced_schedule = ListScheduler(system).schedule(
            copy, traced_assignment
        )
    report._add(
        "pipeline.traced_identity",
        _snapshot(assignment, schedule)
        == _snapshot(traced_assignment, traced_schedule),
        "traced pipeline diverged from the untraced run",
    )
