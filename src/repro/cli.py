"""Command-line interface of the reproduction.

Examples
--------
List the available experiments::

    repro list

Run a figure at paper scale (128 graphs) or any smaller scale::

    repro run figure5
    repro run figure2 --graphs 32 --sizes 2,4,8,16 --csv out/figure2.csv

Trials fan out over all CPU cores by default; pin the worker count (1 =
serial) with::

    repro run figure5 --jobs 8

Shard a run across independent worker subprocesses, journaled to a
checkpoint directory you can inspect, validate, and compact::

    repro run figure5 --backend subprocess --shards 4 --checkpoint ck/f5
    repro checkpoint ck/f5 --experiment figure5
    repro checkpoint ck/f5 --compact

Record a run's telemetry (spans, metrics, resource samples), then
inspect it or convert it for Perfetto / ``chrome://tracing``::

    repro run figure5 --trace traces/
    repro report traces/figure5.events.jsonl
    repro trace traces/figure5.events.jsonl -o figure5.trace.json

Watch a traced run live (from another terminal), export an OpenMetrics
snapshot for external scrapers, and track performance across runs::

    repro top --follow traces/
    repro run figure5 --trace traces/ --metrics-out metrics.prom
    repro runs list
    repro runs diff last~1 last --gate 10

Inspect one generated workload and one schedule::

    repro demo --processors 4 --metric ADAPT

Progress, profiles, and fault diagnostics go to **stderr**; stdout
carries only the run's reports, so piping stdout stays clean.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time
from typing import Callable, List, Optional, Sequence

from repro.core import ast, bst, validate_assignment
from repro.core.slicer import DeadlineDistributor
from repro.feast import (
    EXPERIMENTS,
    build_experiment,
    lateness_report,
    run_experiment,
    to_csv,
)
from repro.graph import RandomGraphConfig, generate_task_graph, graph_stats
from repro.graph.serialization import to_dot
from repro.machine import System, make_interconnect
from repro.sched import ListScheduler, schedule_metrics


def _parse_sizes(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--sizes expects comma-separated integers, got {text!r}"
        ) from None


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer, got {text!r}"
        ) from None
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = all cores), got {jobs}"
        )
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Deadline Assignment in Distributed Hard "
            "Real-Time Systems with Relaxed Locality Constraints' "
            "(Jonsson & Shin, ICDCS 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run = sub.add_parser("run", help="run a registered experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--graphs", type=int, default=None,
        help="task graphs per parameter combination (default: builder's)",
    )
    run.add_argument(
        "--sizes", type=_parse_sizes, default=None,
        help="comma-separated system sizes, e.g. 2,4,8,16",
    )
    run.add_argument("--seed", type=int, default=None, help="workload seed")
    run.add_argument(
        "--jobs", type=_parse_jobs, default=None,
        help="worker processes for trial execution "
        "(default: all CPU cores; 1 = serial)",
    )
    run.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per trial; slow trials degrade "
        "gracefully and hung workers are killed and retried",
    )
    run.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="times a failed trial chunk is retried before quarantine "
        "(default: the experiment's, normally 2)",
    )
    run.add_argument(
        "--batch", action="store_true",
        help="evaluate the distribute phase through the vectorized "
        "batch kernel (bit-identical records; unsupported methods "
        "fall back to the scalar path)",
    )
    run.add_argument(
        "--stall-timeout", type=float, default=None, metavar="SECONDS",
        help="(--backend subprocess) declare a shard stalled after this "
        "many seconds without journal progress and escalate "
        "SIGTERM → grace → SIGKILL before relaunching it (default: "
        "stall detection off — long chunks journal nothing while they "
        "compute)",
    )
    run.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend: serial, pool, or subprocess (shards "
        "the sweep over independent worker subprocesses merged through "
        "the checkpoint journal); default: serial for --jobs 1, else "
        "pool",
    )
    run.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="worker subprocesses for --backend subprocess (default: 2)",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed work to PATH (a file, or a directory "
        "with --backend subprocess); pass --resume to continue an "
        "interrupted sweep from it",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="allow --checkpoint to reuse an existing journal "
        "(without it, an existing checkpoint file is an error)",
    )
    run.add_argument("--csv", default=None, help="write raw trials as CSV")
    run.add_argument(
        "--save", default=None,
        help="save raw results as JSON (reload with `repro compare`)",
    )
    run.add_argument(
        "--plot", action="store_true",
        help="render ASCII plots of each scenario panel",
    )
    run.add_argument(
        "--markdown", default=None,
        help="write a markdown report of all panels",
    )
    run.add_argument(
        "--baseline", default=None,
        help="method label for the report's improvement/significance section",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="print per-phase timers, wall-clock elapsed, and parallel "
        "efficiency after each experiment (to stderr)",
    )
    run.add_argument(
        "--trace", default=None, metavar="DIR",
        help="record telemetry (spans, metrics, resource samples) and "
        "write DIR/<experiment>.events.jsonl; inspect with "
        "`repro report` / `repro trace`; also streams live status "
        "snapshots to DIR/<experiment>.status.jsonl (watch with "
        "`repro top DIR`) and registers the run in the run registry",
    )
    run.add_argument(
        "--status-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between live status snapshots on traced runs "
        "(default: 1.0)",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="keep FILE updated (atomically) with an OpenMetrics/"
        "Prometheus textfile snapshot of the run; scrape-able by the "
        "node-exporter textfile collector",
    )
    run.add_argument(
        "--registry", default=None, metavar="DIR",
        help="run registry directory (default: .repro/registry/); "
        "traced runs register themselves there — inspect with "
        "`repro runs list/show/diff`",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    run.add_argument(
        "--no-color", action="store_true",
        help="disable ANSI styling of the progress line (also disabled "
        "when stderr is not a TTY or NO_COLOR is set)",
    )

    comp = sub.add_parser(
        "compare", help="diff two saved experiment runs (JSON from --save)"
    )
    comp.add_argument("before", help="baseline result JSON")
    comp.add_argument("after", help="candidate result JSON")
    comp.add_argument(
        "--threshold", type=float, default=1.0,
        help="ignore per-point changes below this many time units",
    )

    rep = sub.add_parser(
        "report",
        help="render a human-readable report of a telemetry event log",
    )
    rep.add_argument(
        "events", help="events.jsonl written by `repro run --trace`"
    )

    tr = sub.add_parser(
        "trace",
        help="convert a telemetry event log to Chrome trace JSON "
        "(loads in Perfetto / chrome://tracing)",
    )
    tr.add_argument(
        "events", help="events.jsonl written by `repro run --trace`"
    )
    tr.add_argument(
        "-o", "--output", default=None,
        help="output path (default: the input with .events.jsonl "
        "replaced by .trace.json)",
    )

    top = sub.add_parser(
        "top",
        help="status board of a live (or finished) traced run: "
        "progress, throughput sparkline, per-shard liveness, "
        "supervision incidents",
    )
    top.add_argument(
        "path",
        help="a status.jsonl stream, or the --trace directory of the "
        "run (newest stream wins)",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="redraw until the run finishes (default: one snapshot)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (the default)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="redraw interval with --follow (default: 1.0)",
    )

    runs = sub.add_parser(
        "runs",
        help="the persistent run registry: list, inspect, and diff "
        "registered runs (regression gate for CI)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="list registered runs, newest first"
    )
    runs_show = runs_sub.add_parser(
        "show", help="show one registered run in full"
    )
    runs_show.add_argument(
        "run", help="run id, unique prefix, or last / last~N"
    )
    runs_diff = runs_sub.add_parser(
        "diff",
        help="compare two registered runs' phase timings and "
        "throughput; exits 1 when the candidate regresses past --gate",
    )
    runs_diff.add_argument(
        "baseline", help="baseline run (id, unique prefix, last~N)"
    )
    runs_diff.add_argument(
        "candidate", help="candidate run (id, unique prefix, last)"
    )
    runs_diff.add_argument(
        "--gate", type=float, default=10.0, metavar="PCT",
        help="regression gate: fail when a phase slows down (or "
        "throughput drops) by more than PCT percent (default: 10)",
    )
    for p in (runs_list, runs_show, runs_diff):
        p.add_argument(
            "--registry", default=None, metavar="DIR",
            help="registry directory (default: .repro/registry/)",
        )

    ckpt = sub.add_parser(
        "checkpoint",
        help="inspect, validate, or compact checkpoint journals "
        "(a single .ckpt file or a shard-journal directory)",
    )
    ckpt.add_argument(
        "path", help="journal file, or directory of shard journals"
    )
    ckpt.add_argument(
        "--experiment", default=None, choices=sorted(EXPERIMENTS),
        help="validate chunk coverage and fingerprint against this "
        "experiment's configuration",
    )
    ckpt.add_argument(
        "--graphs", type=int, default=None,
        help="the --graphs the run used (fingerprints must match)",
    )
    ckpt.add_argument(
        "--sizes", type=_parse_sizes, default=None,
        help="the --sizes the run used (fingerprints must match)",
    )
    ckpt.add_argument(
        "--seed", type=int, default=None,
        help="the --seed the run used (fingerprints must match)",
    )
    ckpt.add_argument(
        "--compact", action="store_true",
        help="merge a directory of shard journals into a single "
        "shard-0-of-1.ckpt (resumable by any backend or shard count)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign: a sweep under injected "
        "hangs/crashes/journal corruption must stay byte-identical to "
        "a clean serial run, with the recovery machinery provably "
        "exercised",
    )
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos.add_argument(
        "--backend", default="subprocess",
        help="execution backend under test: serial, pool, or "
        "subprocess (default; the only one with stall/failover "
        "supervision)",
    )
    chaos.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="worker subprocesses for --backend subprocess "
        "(default: 3; >= 2 required so faults span multiple shards)",
    )
    chaos.add_argument(
        "--faults", type=int, default=3, metavar="N",
        help="extra seeded in-process faults on top of the guaranteed "
        "hang/truncate/exit coverage (default: 3)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="DIR",
        help="persist campaign artifacts into DIR: fault-plan.json, "
        "report.json, chaos.events.jsonl, and the checkpoint journals",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the pipeline against the qa oracles "
        "and shrink any failure to a minimal reproducer",
    )
    fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz.add_argument(
        "--trials", type=int, default=100,
        help="scenarios to run (default: 100)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new trials after this much wall clock",
    )
    fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="write shrunk reproducer JSON files into DIR",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-check one reproducer file instead of fuzzing (same "
        "check gating as the live campaign)",
    )
    fuzz.add_argument(
        "--batch", action="store_true",
        help="also differential-check every distribution against the "
        "vectorized batch kernel",
    )
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    serve = sub.add_parser(
        "serve",
        help="run the deadline-assignment job service (HTTP, durable queue)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8348,
        help="listen port; 0 binds an ephemeral port, announced on stderr",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job executions (default: 2)",
    )
    serve.add_argument(
        "--backend", default="serial",
        help="execution backend per job: serial, pool, subprocess "
        "(default: serial)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="shard count for the subprocess backend",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded job queue depth; full queue → 503 (default: 64)",
    )
    serve.add_argument(
        "--data-dir", default="repro-serve-data",
        help="durable state: job store, checkpoint journals, results",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=2 * 1024 * 1024,
        help="largest accepted request body (default: 2 MiB)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="per-request read deadline in seconds (default: 30)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="PER_SECOND",
        help="token-bucket submission rate limit per client (default: off)",
    )
    serve.add_argument(
        "--auth", default="none", help="auth backend: none or token"
    )
    serve.add_argument(
        "--auth-token", default=None,
        help="bearer token for --auth token (or REPRO_SERVE_TOKEN)",
    )

    demo = sub.add_parser(
        "demo", help="distribute and schedule one random graph, verbosely"
    )
    demo.add_argument("--processors", type=int, default=4)
    demo.add_argument(
        "--metric", default="ADAPT", choices=["NORM", "PURE", "THRES", "ADAPT"]
    )
    demo.add_argument("--comm", default="CCNE", choices=["CCNE", "CCAA"])
    demo.add_argument("--topology", default="bus")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--dot", default=None, help="write the graph as DOT")
    demo.add_argument(
        "--svg", default=None,
        help="write the schedule as an SVG Gantt chart (with windows)",
    )

    return parser


def cmd_list() -> int:
    print("Registered experiments:")
    for name, builder in sorted(EXPERIMENTS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<18} {doc}")
    return 0


def _phase_profile(name: str, instrumentation, jobs: int = 1) -> str:
    """Render the per-phase timing summary of one experiment run.

    Reports the summed CPU-side phase time *and* the wall-clock elapsed
    separately — in parallel mode the former can exceed the latter, and
    their ratio per worker is the parallel efficiency.
    """
    timings = instrumentation.timings
    total = timings.total or 1.0
    lines = [f"phase profile ({name}):"]
    for phase, seconds in timings.as_dict().items():
        lines.append(
            f"  {phase:<12} {seconds:8.3f}s  ({100.0 * seconds / total:5.1f}%)"
        )
    lines.append(
        f"  {'total':<12} {timings.total:8.3f}s  (summed across workers)"
    )
    lines.append(
        f"  {'wall':<12} {instrumentation.wall_elapsed:8.3f}s"
    )
    efficiency = instrumentation.parallel_efficiency(jobs)
    if efficiency is not None and jobs > 1:
        lines.append(
            f"  {'efficiency':<12} {efficiency:7.0%}   ({jobs} workers)"
        )
    return "\n".join(lines)


def _progress_printer(no_color: bool) -> Callable[[int, int], None]:
    """A ``(done, total)`` callback rendering progress on stderr.

    On a TTY: a single self-overwriting line, dimmed unless colors are
    off (``--no-color`` or the ``NO_COLOR`` convention). Piped: plain
    ``done/total`` lines at ~10% steps, so logs stay readable and
    stdout stays machine-parseable either way.
    """
    stream = sys.stderr
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    color = is_tty and not no_color and not os.environ.get("NO_COLOR")
    dim, reset = ("\x1b[2m", "\x1b[0m") if color else ("", "")

    if is_tty:
        def progress(done: int, total: int) -> None:
            stream.write(f"\r{dim}  {done}/{total} trials{reset}")
            if done >= total:
                stream.write("\n")
            stream.flush()
    else:
        def progress(done: int, total: int) -> None:
            if done % max(1, total // 10) == 0:
                print(f"  {done}/{total}", file=stream)
    return progress


def _suffixed_path(path: str, name: str) -> str:
    """Derive a per-config variant of ``path`` (multi-config runs)."""
    stem, dot, ext = path.rpartition(".")
    return f"{stem}-{name}.{ext}" if dot else f"{path}-{name}"


def _fault_summary(result) -> Optional[str]:
    """One-paragraph account of what the run survived, if anything."""
    lines = []
    if result.fallback_reason:
        lines.append(f"  degraded: {result.fallback_reason}")
    fatal = [f for f in result.failures if f.kind != "slow-trial"]
    slow = len(result.failures) - len(fatal)
    if fatal:
        lines.append(
            f"  survived {len(fatal)} fault event(s): " + "; ".join(
                f"{f.kind} at ({f.scenario}, graph {f.index})"
                for f in fatal[:5]
            ) + (" ..." if len(fatal) > 5 else "")
        )
    if slow:
        lines.append(f"  {slow} trial(s) overran their budget (results kept)")
    if result.quarantined:
        chunks = ", ".join(
            f"({s}, graph {i})" for s, i in result.quarantined
        )
        lines.append(
            f"  QUARANTINED {len(result.quarantined)} chunk(s): {chunks} — "
            "their trials are missing from the records"
        )
    supervision = getattr(result, "supervision", None)
    if supervision is not None and supervision.any():
        stats = supervision.as_dict()
        labels = (
            ("stalls_detected", "stall(s) detected"),
            ("kills_escalated", "SIGKILL escalation(s)"),
            ("relaunches", "worker relaunch(es)"),
            ("shards_failed_over", "shard(s) failed over"),
            ("chunks_reassigned", "chunk(s) reassigned"),
            ("chunks_replayed", "chunk(s) replayed from journals"),
        )
        lines.append("  supervision: " + ", ".join(
            f"{stats[key]} {label}"
            for key, label in labels if stats[key]
        ))
    if not lines:
        return None
    return "fault report:\n" + "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    kwargs = {}
    if args.graphs is not None:
        kwargs["n_graphs"] = args.graphs
    if args.sizes is not None:
        kwargs["system_sizes"] = tuple(args.sizes)
    if args.seed is not None:
        kwargs["seed"] = args.seed
    configs = build_experiment(args.experiment, **kwargs)
    overrides = {}
    if args.trial_timeout is not None:
        overrides["trial_timeout"] = args.trial_timeout
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    if args.batch:
        overrides["batch"] = True
    if overrides:
        configs = [dataclasses.replace(c, **overrides) for c in configs]

    from repro.feast.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    if args.backend is not None:
        from repro.feast.backends import backend_names

        if args.backend not in backend_names():
            print(
                f"error: unknown backend {args.backend!r}; expected one "
                f"of {', '.join(backend_names())}",
                file=sys.stderr,
            )
            return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.status_interval <= 0:
        print("error: --status-interval must be > 0", file=sys.stderr)
        return 2
    checkpoints = {}
    if args.checkpoint:
        for config in configs:
            path = args.checkpoint
            if len(configs) > 1:
                path = _suffixed_path(path, config.name)
            if os.path.exists(path) and not args.resume:
                print(
                    f"error: checkpoint {path!r} already exists; pass "
                    "--resume to continue it or delete it to start over",
                    file=sys.stderr,
                )
                return 2
            checkpoints[config.name] = path
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
    csv_chunks: List[str] = []
    results = []
    for config in configs:
        if not args.quiet:
            print(
                f"running {config.name}: {config.n_trials} trials "
                f"({jobs} job{'s' if jobs != 1 else ''}) ...",
                file=sys.stderr,
            )

        progress = None if args.quiet else _progress_printer(args.no_color)

        instrumentation = None
        if args.profile or args.trace or args.metrics_out or args.registry:
            from repro.feast.instrumentation import Instrumentation

            telemetry = None
            if args.trace or args.metrics_out:
                from repro.obs import Telemetry

                telemetry = Telemetry()
            instrumentation = Instrumentation(telemetry=telemetry)
        retry = None
        if args.stall_timeout is not None:
            from repro.feast.backends.work import RetryPolicy

            retry = RetryPolicy(
                max_attempts=config.max_retries + 1,
                stall_timeout=args.stall_timeout,
            )

        # Live telemetry: a status stream in the trace dir (when
        # tracing), a periodic sampler feeding it and/or the
        # OpenMetrics file. Observation only — the engine never sees
        # any of it, so records stay bit-identical (DESIGN.md §11).
        from repro.obs.export import make_run_id
        from repro.obs.live import StatusSampler, StatusStream, activate_status

        run_id = make_run_id()
        started_epoch = time.time()
        stream = None
        if args.trace:
            from repro.feast.sweep import status_path

            stream = StatusStream(
                status_path(args.trace, config), config.name, run_id
            )
        metrics_out = args.metrics_out
        if metrics_out and len(configs) > 1:
            metrics_out = _suffixed_path(metrics_out, config.name)
        sampler = None
        if stream is not None or metrics_out:
            sampler = StatusSampler(
                stream, instrumentation,
                interval=args.status_interval,
                metrics_out=metrics_out,
                backend=args.backend or ("serial" if jobs == 1 else "pool"),
                jobs=jobs, shards=args.shards,
            )
        try:
            with activate_status(stream):
                if sampler is not None:
                    sampler.start()
                result = run_experiment(
                    config, progress=progress, jobs=jobs,
                    instrumentation=instrumentation,
                    checkpoint=checkpoints.get(config.name),
                    backend=args.backend, shards=args.shards,
                    retry=retry,
                )
        finally:
            if sampler is not None:
                sampler.stop()
            if stream is not None:
                stream.close(
                    trials=instrumentation.trials_completed,
                    wall_elapsed=instrumentation.wall_elapsed,
                )

        if args.trace or args.registry:
            from repro.feast.sweep import registry_record, trace_path
            from repro.obs.registry import DEFAULT_REGISTRY_DIR, RunRegistry

            registry = RunRegistry(args.registry or DEFAULT_REGISTRY_DIR)
            registry.append(registry_record(
                run_id, result, instrumentation,
                backend=args.backend, shards=args.shards,
                started=started_epoch,
                trace=(
                    trace_path(args.trace, config) if args.trace else ""
                ),
            ))
            print(
                f"registered run {run_id} in {registry.directory}",
                file=sys.stderr,
            )
        print(lateness_report(result))
        print()
        summary = _fault_summary(result)
        if summary is not None:
            print(summary, file=sys.stderr)
        if instrumentation is not None and args.profile:
            print(
                _phase_profile(config.name, instrumentation, jobs=jobs),
                file=sys.stderr,
            )
        if args.trace:
            from repro.feast.sweep import trace_path, write_run_events

            events_path = trace_path(args.trace, config)
            write_run_events(events_path, result, instrumentation)
            print(f"wrote {events_path}", file=sys.stderr)
        if args.plot:
            from repro.feast import lateness_plot

            for scenario in config.scenarios:
                print(lateness_plot(result, scenario))
                print()
        if args.save:
            from repro.feast import save_result

            path = args.save
            if len(configs) > 1:
                path = _suffixed_path(path, config.name)
            save_result(result, path)
            print(f"saved {path}")
        csv_chunks.append(to_csv(result))
        results.append(result)

    if args.markdown:
        from repro.feast.reporting import render_report

        with open(args.markdown, "w") as fp:
            fp.write(render_report(
                results,
                title=f"Experiment report: {args.experiment}",
                baseline=args.baseline,
            ))
        print(f"wrote {args.markdown}")

    if args.csv:
        header, *_ = csv_chunks[0].splitlines()
        lines = [header]
        for chunk in csv_chunks:
            lines.extend(chunk.splitlines()[1:])
        with open(args.csv, "w") as fp:
            fp.write("\n".join(lines) + "\n")
        print(f"wrote {args.csv}")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Inspect/validate/compact a checkpoint journal or shard directory.

    Exit codes: 0 = valid, 1 = validation failure (mixed fingerprints,
    missing coverage, fingerprint not matching ``--experiment``),
    2 = unreadable input or usage error.
    """
    from repro.errors import CheckpointError
    from repro.feast.persistence import (
        compact_journals,
        config_fingerprint,
        inspect_journal,
        journal_paths,
    )

    is_dir = os.path.isdir(args.path)
    try:
        paths = journal_paths(args.path) if is_dir else [args.path]
        if not paths:
            print(
                f"error: no *.ckpt journals under {args.path!r}",
                file=sys.stderr,
            )
            return 2
        infos = [inspect_journal(p) for p in paths]
    except (CheckpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    ok = True
    covered = set()
    first_seen = {}
    cross_duplicates = set()
    for info in infos:
        print(f"{info.path}:")
        print(f"  experiment   {info.experiment}")
        print(f"  fingerprint  {info.fingerprint}")
        print(f"  chunks       {info.n_chunks}")
        if info.torn_tail:
            print("  torn trailing line (repaired on next resume)")
        if info.duplicates:
            shown = ", ".join(
                f"({s}, {i})" for s, i in info.duplicates[:5]
            )
            more = " ..." if len(info.duplicates) > 5 else ""
            print(
                f"  {len(info.duplicates)} duplicate chunk line(s) "
                f"within this journal (last wins): {shown}{more}"
            )
        for key in info.chunks:
            covered.add(key)
            if key in first_seen and first_seen[key] != info.path:
                cross_duplicates.add(key)
            first_seen.setdefault(key, info.path)

    fingerprints = sorted({info.fingerprint for info in infos})
    if len(fingerprints) > 1:
        ok = False
        print(
            "FINGERPRINT MISMATCH: journals were written by "
            f"{len(fingerprints)} different configurations "
            f"({', '.join(fingerprints)})"
        )
    if cross_duplicates:
        print(
            f"note: {len(cross_duplicates)} chunk(s) appear in more "
            "than one journal (expected after a shard-count change; "
            "identical copies collapse on merge)"
        )

    if args.experiment is not None:
        kwargs = {}
        if args.graphs is not None:
            kwargs["n_graphs"] = args.graphs
        if args.sizes is not None:
            kwargs["system_sizes"] = tuple(args.sizes)
        if args.seed is not None:
            kwargs["seed"] = args.seed
        configs = build_experiment(args.experiment, **kwargs)
        matched = [
            c for c in configs if config_fingerprint(c) in fingerprints
        ]
        if not matched:
            ok = False
            print(
                f"NO CONFIG MATCH: no configuration of "
                f"{args.experiment!r} has a matching fingerprint (were "
                "--graphs/--sizes/--seed the same as the run's?)"
            )
        for config in matched:
            expected = list(config.chunk_keys())
            missing = [k for k in expected if k not in covered]
            if missing:
                ok = False
                shown = ", ".join(
                    f"({s}, {i})" for s, i in missing[:5]
                )
                more = " ..." if len(missing) > 5 else ""
                print(
                    f"{config.name}: INCOMPLETE — "
                    f"{len(expected) - len(missing)}/{len(expected)} "
                    f"chunks journaled; missing {shown}{more}"
                )
            else:
                print(
                    f"{config.name}: complete "
                    f"({len(expected)}/{len(expected)} chunks)"
                )

    if args.compact:
        if not is_dir:
            print(
                "error: --compact needs a directory of shard journals",
                file=sys.stderr,
            )
            return 2
        if not ok:
            print(
                "error: refusing to compact journals that failed "
                "validation",
                file=sys.stderr,
            )
            return 1
        try:
            merged = compact_journals(args.path)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"compacted {len(paths)} journal(s) into {merged}")
    return 0 if ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.qa import FuzzConfig, replay_reproducer, run_fuzz

    if args.replay is not None:
        with open(args.replay, "r", encoding="utf-8") as fp:
            data = json.load(fp)
        report = replay_reproducer(
            data, config=FuzzConfig(use_batch=args.batch)
        )
        print(report.summary())
        return 0 if report.ok else 1

    config = FuzzConfig(
        seed=args.seed,
        trials=args.trials,
        time_budget=args.time_budget,
        output_dir=args.out,
        use_batch=args.batch,
    )

    progress = None
    if not args.quiet:
        def progress(trial, failure):
            if failure is not None:
                print(f"  trial {trial}: FAIL", file=sys.stderr)
            elif trial % 25 == 0:
                print(f"  trial {trial}/{config.trials} ok", file=sys.stderr)

    result = run_fuzz(config, progress=progress)
    print(result.summary())
    for failure in result.failures:
        print(failure.shrunk_report.summary())
    return 0 if result.ok else 1


def cmd_demo(args: argparse.Namespace) -> int:
    graph = generate_task_graph(
        RandomGraphConfig(), rng=random.Random(args.seed)
    )
    stats = graph_stats(graph)
    print(f"workload: {graph!r}")
    print(
        f"  depth={stats.depth} parallelism={stats.average_parallelism:.2f} "
        f"workload={stats.total_workload:.0f} CCR="
        f"{stats.communication_to_computation_ratio:.2f}"
    )

    if args.metric in ("THRES", "ADAPT"):
        distributor: DeadlineDistributor = ast(args.metric)
    else:
        distributor = bst(args.metric, args.comm)
    assignment = distributor.distribute(graph, n_processors=args.processors)
    report = validate_assignment(assignment)
    print(
        f"distribution: {assignment!r}\n"
        f"  min laxity={assignment.min_laxity():.1f} valid={report.ok}"
    )

    system = System(
        args.processors,
        interconnect=make_interconnect(args.topology, args.processors),
    )
    schedule = ListScheduler(system).schedule(graph, assignment)
    schedule.validate()
    metrics = schedule_metrics(schedule, assignment)
    print(
        f"schedule: makespan={metrics.makespan:.1f} "
        f"max lateness={metrics.max_lateness:.1f} "
        f"late subtasks={metrics.n_late}/{metrics.n_subtasks}"
    )
    print(schedule.gantt())

    if args.dot:
        with open(args.dot, "w") as fp:
            fp.write(to_dot(graph))
        print(f"wrote {args.dot}")
    if args.svg:
        from repro.sched import schedule_to_svg

        with open(args.svg, "w") as fp:
            fp.write(schedule_to_svg(schedule, assignment))
        print(f"wrote {args.svg}")
    return 0


def _resolve_events_path(path: str) -> str:
    """Accept an event log *or* a trace directory (newest log wins).

    Raises :class:`~repro.errors.SerializationError` with a one-line
    explanation for a missing path or an empty directory — the chaos
    truncate-journal kind can leave a trace dir with no usable log, and
    that must be a clean error, not a traceback.
    """
    import glob

    from repro.errors import SerializationError

    if os.path.isdir(path):
        candidates = sorted(
            glob.glob(os.path.join(path, "*.events.jsonl")),
            key=os.path.getmtime,
        )
        if not candidates:
            raise SerializationError(
                f"no *.events.jsonl log in {path!r} — was the run "
                "started with --trace?"
            )
        return candidates[-1]
    if not os.path.exists(path):
        raise SerializationError(f"no such event log: {path!r}")
    return path


def cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import SerializationError
    from repro.obs import read_events, render_run_report

    try:
        events_path = _resolve_events_path(args.events)
        events = read_events(events_path, allow_partial=True)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_run_report(events))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import SerializationError
    from repro.obs import read_events, write_chrome_trace

    try:
        events_path = _resolve_events_path(args.events)
        output = args.output
        if output is None:
            base = events_path
            if base.endswith(".events.jsonl"):
                base = base[: -len(".events.jsonl")]
            output = base + ".trace.json"
        events = read_events(events_path, allow_partial=True)
        write_chrome_trace(output, events)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {output}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.errors import SerializationError
    from repro.obs.board import find_status_file, follow, render_board
    from repro.obs.live import read_status

    if args.follow and args.once:
        print("error: choose --follow or --once, not both", file=sys.stderr)
        return 2
    try:
        path = find_status_file(args.path)
        if args.follow:
            follow(path, print, interval=args.interval)
        else:
            print(render_board(read_status(path)))
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.errors import SerializationError
    from repro.obs.registry import (
        DEFAULT_REGISTRY_DIR,
        RunRegistry,
        diff_runs,
        render_run_diff,
        render_run_list,
        render_run_show,
    )

    registry = RunRegistry(args.registry or DEFAULT_REGISTRY_DIR)
    try:
        if args.runs_command == "list":
            print(render_run_list(registry.load()))
            return 0
        if args.runs_command == "show":
            print(render_run_show(registry.get(args.run)))
            return 0
        if args.runs_command == "diff":
            baseline = registry.get(args.baseline)
            candidate = registry.get(args.candidate)
            diff = diff_runs(baseline, candidate)
            print(render_run_diff(diff, args.gate))
            return 1 if diff.regressions(args.gate) else 0
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled runs command {args.runs_command!r}")


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ExperimentError
    from repro.feast.backends import backend_names
    from repro.feast.chaos import render_chaos_report, run_chaos

    if args.backend not in backend_names():
        print(
            f"error: unknown backend {args.backend!r}; expected one "
            f"of {', '.join(backend_names())}",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_chaos(
            seed=args.seed,
            backend=args.backend,
            shards=args.shards,
            extra_faults=args.faults,
            out=args.out,
        )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_chaos_report(report))
    if args.out:
        print(f"wrote campaign artifacts to {args.out}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.feast import compare, load_result

    before = load_result(args.before)
    after = load_result(args.after)
    deltas = compare(before, after, threshold=args.threshold)
    if not deltas:
        print(
            f"no per-point changes above {args.threshold:g} time units "
            f"({len(before)} vs {len(after)} trials)"
        )
        return 0
    print(f"{'scenario':<8} {'method':<14} {'procs':>5} "
          f"{'before':>10} {'after':>10} {'delta':>9}")
    for d in deltas:
        print(
            f"{d.scenario:<8} {d.method:<14} {d.n_processors:>5} "
            f"{d.before:>10.1f} {d.after:>10.1f} {d.delta:>+9.1f}"
        )
    worst = deltas[0]
    print(
        f"\nworst regression: {worst.method} at {worst.n_processors} procs "
        f"({worst.scenario}): {worst.delta:+.1f} ({worst.relative:+.1%})"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.app import ServiceConfig, run_service

    token = args.auth_token or os.environ.get("REPRO_SERVE_TOKEN")
    if args.auth == "token" and not token:
        print(
            "error: --auth token needs --auth-token or REPRO_SERVE_TOKEN",
            file=sys.stderr,
        )
        return 2
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        shards=args.shards,
        queue_size=args.queue_size,
        data_dir=args.data_dir,
        max_body=args.max_body_bytes,
        request_timeout=args.request_timeout,
        auth=args.auth,
        auth_token=token,
        rate_limit=args.rate_limit,
    )
    return run_service(config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # The reader closed the pipe early (`repro top --once DIR |
        # head`). Exit quietly like any Unix filter; point stdout at
        # devnull first so the interpreter's shutdown flush cannot
        # raise the same error a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "checkpoint":
        return cmd_checkpoint(args)
    if args.command == "fuzz":
        return cmd_fuzz(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "demo":
        return cmd_demo(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "runs":
        return cmd_runs(args)
    if args.command == "serve":
        return cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
