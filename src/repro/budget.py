"""Cooperative per-trial wall-clock budgets.

The experiment engine (:mod:`repro.feast.parallel`) enforces trial
timeouts in two layers. The outer layer is supervision: the parent kills
a worker whose chunk overruns its budget. This module is the inner,
cooperative layer: before each trial the worker publishes a deadline
here, and long-running components deep in the pipeline — most notably
the branch-and-bound scheduler (:mod:`repro.sched.optimal`), whose
search is exponential in the worst case — poll it and degrade gracefully
(return their incumbent) instead of overrunning.

The deadline is an absolute :func:`time.monotonic` timestamp stored in
thread-local state, so concurrently executing trials in one process
never share a budget, and nested deadlines restore their parent on exit.
A ``None`` deadline means "no budget" and every query is a cheap no-op,
so components can poll unconditionally.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import TrialTimeoutError

_state = threading.local()


def set_trial_deadline(deadline: Optional[float]) -> None:
    """Publish an absolute monotonic deadline (``None`` clears it)."""
    _state.deadline = deadline


def current_trial_deadline() -> Optional[float]:
    """The active trial's absolute monotonic deadline, if any."""
    return getattr(_state, "deadline", None)


def remaining() -> Optional[float]:
    """Seconds until the active deadline (negative when past it)."""
    deadline = current_trial_deadline()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def expired() -> bool:
    """Whether the active trial has exhausted its budget."""
    left = remaining()
    return left is not None and left <= 0.0


def check(context: str = "trial") -> None:
    """Raise :class:`TrialTimeoutError` if the active budget is spent."""
    if expired():
        raise TrialTimeoutError(
            f"{context} exceeded its wall-clock budget"
        )


@contextmanager
def trial_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Run a block under a budget of ``seconds`` from now.

    ``None`` leaves any enclosing deadline untouched. Nested deadlines
    never extend an enclosing one: the effective deadline is the minimum
    of the new and the current.
    """
    if seconds is None:
        yield
        return
    previous = current_trial_deadline()
    deadline = time.monotonic() + seconds
    if previous is not None and previous < deadline:
        deadline = previous
    set_trial_deadline(deadline)
    try:
        yield
    finally:
        set_trial_deadline(previous)
