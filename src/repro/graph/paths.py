"""Path utilities over task graphs.

These are the building blocks of the paper's metrics:

* :func:`longest_path_length` — the execution-time length of the heaviest
  path ("length, in execution time, of the longest path in the graph"),
  used by the ADAPT metric's parallelism estimate;
* :func:`longest_path` — one concrete heaviest path;
* :func:`average_parallelism` — the paper's ξ: total workload divided by
  the longest-path length;
* :func:`enumerate_paths` — exhaustive path enumeration between two nodes
  (used by validation and tests, not by the algorithms themselves);
* :func:`graph_depth` — number of levels (nodes on the longest path by hop
  count), matching the generator's "depth of the task graph" parameter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import UnknownNodeError, ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, Time


def longest_path_length(graph: TaskGraph, include_messages: bool = False) -> Time:
    """Execution-time length of the heaviest path in the graph.

    With ``include_messages=True`` each traversed arc also contributes its
    message size (an upper bound on the communication-inclusive critical
    path, matching the CCAA world-view).
    """
    if not len(graph):
        raise ValidationError("longest path of an empty graph")
    return max(_suffix_array(graph, include_messages))


def longest_path(graph: TaskGraph, include_messages: bool = False) -> List[NodeId]:
    """One concrete heaviest path, as a list of node ids.

    Ties are broken deterministically toward lexicographically smaller ids.
    """
    if not len(graph):
        raise ValidationError("longest path of an empty graph")
    index = graph.index()
    suffix = _suffix_array(graph, include_messages)
    ids = index.ids
    # Start at the input node whose suffix weight is maximal.
    start = min(
        (i for i in range(index.n_nodes) if index.in_degree_of(i) == 0),
        key=lambda i: (-suffix[i], ids[i]),
    )
    path = [ids[start]]
    node = start
    indptr, succ, succ_edges = index.succ_indptr, index.succ_ids, index.succ_edges
    messages = index.edge_messages
    while indptr[node] != indptr[node + 1]:
        candidates = []
        for k in range(indptr[node], indptr[node + 1]):
            s = succ[k]
            arc = messages[succ_edges[k]].size if include_messages else 0.0
            candidates.append((-(arc + suffix[s]), ids[s], s))
        # Follow the successor continuing the heaviest suffix.
        _, __, node = min(candidates)
        path.append(ids[node])
    return path


def _suffix_array(graph: TaskGraph, include_messages: bool) -> List[Time]:
    """Per dense node id, the heaviest node-weight (+ optional arc-weight)
    sum of any path starting at that node (inclusive of the node itself)."""
    index = graph.index()
    suffix: List[Time] = [0.0] * index.n_nodes
    indptr, succ, succ_edges = index.succ_indptr, index.succ_ids, index.succ_edges
    messages = index.edge_messages
    subtasks = index.subtasks
    for i in reversed(index.topological_order()):
        best_tail = 0.0
        for k in range(indptr[i], indptr[i + 1]):
            tail = suffix[succ[k]]
            if include_messages:
                tail += messages[succ_edges[k]].size
            if tail > best_tail:
                best_tail = tail
        suffix[i] = subtasks[i].wcet + best_tail
    return suffix


def _longest_suffix(graph: TaskGraph, include_messages: bool) -> Dict[NodeId, Time]:
    """Dict view of :func:`_suffix_array`, keyed by node id (kept for
    callers and tests that address nodes by name)."""
    suffix = _suffix_array(graph, include_messages)
    return {n: suffix[i] for i, n in enumerate(graph.index().ids)}


def average_parallelism(graph: TaskGraph) -> float:
    """The paper's ξ: total workload / longest-path execution length.

    ξ = 1 for a pure chain; ξ = n for n independent equal subtasks.
    """
    return graph.total_workload() / longest_path_length(graph)


def graph_depth(graph: TaskGraph) -> int:
    """Number of levels: node count of the longest path by hop count."""
    if not len(graph):
        raise ValidationError("depth of an empty graph")
    return max(graph.index().depths())


def level_of(graph: TaskGraph) -> Dict[NodeId, int]:
    """Level index (1-based) of each node: 1 + longest hop distance from
    any input subtask."""
    index = graph.index()
    depths = index.depths()
    return {n: depths[i] for i, n in enumerate(index.ids)}


def enumerate_paths(
    graph: TaskGraph,
    src: NodeId,
    dst: NodeId,
    limit: Optional[int] = None,
) -> Iterator[List[NodeId]]:
    """Yield every simple path from ``src`` to ``dst``.

    Exhaustive (exponential in the worst case); intended for validation on
    small graphs and for tests. ``limit`` caps the number of yielded paths.
    """
    if src not in graph:
        raise UnknownNodeError(f"subtask {src!r} not in graph")
    if dst not in graph:
        raise UnknownNodeError(f"subtask {dst!r} not in graph")
    count = 0
    stack: List[Tuple[NodeId, List[NodeId]]] = [(src, [src])]
    # Restrict the walk to nodes that can still reach dst.
    can_reach = graph.ancestors(dst) | {dst}
    while stack:
        node, path = stack.pop()
        if node == dst:
            yield path
            count += 1
            if limit is not None and count >= limit:
                return
            continue
        for s in sorted(graph.successors(node), reverse=True):
            if s in can_reach:
                stack.append((s, path + [s]))


def path_execution_time(graph: TaskGraph, path: List[NodeId]) -> Time:
    """Sum of subtask execution times along a path."""
    return sum(graph.node(n).wcet for n in path)


def path_message_volume(graph: TaskGraph, path: List[NodeId]) -> Time:
    """Sum of message sizes along consecutive arcs of a path."""
    return sum(
        graph.message(a, b).size for a, b in zip(path, path[1:])
    )


def is_path(graph: TaskGraph, path: List[NodeId]) -> bool:
    """Whether ``path`` is a non-empty sequence of consecutive arcs."""
    if not path:
        return False
    if any(n not in graph for n in path):
        return False
    return all(graph.has_edge(a, b) for a, b in zip(path, path[1:]))
