"""Task-graph substrate: model, generators, analysis, serialization."""

from repro.graph.node import CommSubtask, Message, Subtask
from repro.graph.indexed import GraphIndex
from repro.graph.taskgraph import TaskGraph
from repro.graph.generator import (
    HDET,
    LDET,
    MDET,
    PAPER_CONFIG,
    SCENARIOS,
    RandomGraphConfig,
    generate_task_graph,
    generate_task_graphs,
)
from repro.graph.structured import (
    STRUCTURES,
    generate_diamond,
    generate_fork_join,
    generate_in_tree,
    generate_out_tree,
    generate_pipeline,
)
from repro.graph.periodic import CrossTaskArc, PeriodicTask, hyperperiod, unroll
from repro.graph.analysis import GraphStats, graph_stats, max_width, width_histogram
from repro.graph.workloads import (
    WORKLOADS,
    automotive_control,
    make_workload,
    radar_pipeline,
    video_encoder,
)
from repro.graph.transform import (
    compose,
    critical_path_subgraph,
    extract_subgraph,
    merge_chains,
    relabel,
    scale_workload,
)

__all__ = [
    "CommSubtask",
    "Message",
    "Subtask",
    "GraphIndex",
    "TaskGraph",
    "RandomGraphConfig",
    "PAPER_CONFIG",
    "SCENARIOS",
    "LDET",
    "MDET",
    "HDET",
    "generate_task_graph",
    "generate_task_graphs",
    "STRUCTURES",
    "generate_diamond",
    "generate_fork_join",
    "generate_in_tree",
    "generate_out_tree",
    "generate_pipeline",
    "CrossTaskArc",
    "PeriodicTask",
    "hyperperiod",
    "unroll",
    "GraphStats",
    "graph_stats",
    "max_width",
    "width_histogram",
    "compose",
    "merge_chains",
    "extract_subgraph",
    "critical_path_subgraph",
    "scale_workload",
    "relabel",
    "WORKLOADS",
    "automotive_control",
    "radar_pipeline",
    "video_encoder",
    "make_workload",
]
