"""Compiled, integer-indexed representation of a task graph.

Every analysis in this codebase — graph statistics, longest-path and
parallelism queries, deadline distribution, list scheduling, the exact
branch-and-bound — ultimately walks the same DAG. The string-keyed
:class:`~repro.graph.taskgraph.TaskGraph` is the right *builder* surface,
but its dict-of-lists adjacency pays a hash lookup and a defensive list
copy per query, which dominates the inner loops at scale.

:class:`GraphIndex` is the shared compiled form: dense integer node ids in
insertion order, CSR-style successor/predecessor arrays (with a parallel
edge-index array for O(1) message access per arc), and lazily cached
topological order and depths. It is built once per :class:`TaskGraph` via
:meth:`TaskGraph.index() <repro.graph.taskgraph.TaskGraph.index>` and
invalidated by structural mutation (``add_subtask`` / ``add_edge`` /
``remove_subtask`` / ``remove_edge``).

Cache ownership (see DESIGN.md §"Indexed graph core"):

* **structure** (ids, adjacency, topological order, depths) is cached here
  and is immune to attribute mutation — changing a ``wcet`` or pin cannot
  change the DAG shape;
* **values** (costs, pins, anchors, message sizes) live on the
  :class:`~repro.graph.node.Subtask` / :class:`~repro.graph.node.Message`
  objects, which the index references directly — reads through
  :attr:`subtasks` / :attr:`edge_messages` are always live. The snapshot
  helpers (:meth:`wcet_array` & friends) re-read on every call, and
  :meth:`value_fingerprint` lets value-dependent overlays (the expanded
  graph) detect attribute mutation cheaply.

Topological-order contract (unified across layers): Kahn's algorithm,
deterministic, **insertion order among simultaneously ready nodes**. The
:class:`TaskGraph` delegates here, and the expanded-graph overlay follows
the same rule over its own node numbering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import CycleError
from repro.types import NodeId, ProcessorId, Time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.node import Message, Subtask
    from repro.graph.taskgraph import TaskGraph


class GraphIndex:
    """Dense-id, CSR-adjacency snapshot of one :class:`TaskGraph`.

    Node ``i`` is the ``i``-th subtask in insertion order; edge ``e`` is
    the ``e``-th arc in insertion order. Do not construct directly —
    obtain via :meth:`TaskGraph.index`, which caches one instance per
    structural revision of the graph.
    """

    __slots__ = (
        "ids", "id_of", "subtasks",
        "edge_src", "edge_dst", "edge_messages", "edge_id_of",
        "succ_indptr", "succ_ids", "succ_edges",
        "pred_indptr", "pred_ids", "pred_edges",
        "_topo", "_depths", "_expanded_cache",
    )

    def __init__(self, graph: "TaskGraph") -> None:
        #: Node id of each dense index, in insertion order.
        self.ids: List[NodeId] = graph.node_ids()
        self.id_of: Dict[NodeId, int] = {n: i for i, n in enumerate(self.ids)}
        #: Live Subtask references (attribute reads are never stale).
        self.subtasks: List["Subtask"] = graph.nodes()

        id_of = self.id_of
        edges = graph.edges()
        self.edge_src: List[int] = [id_of[s] for s, _ in edges]
        self.edge_dst: List[int] = [id_of[d] for _, d in edges]
        #: Live Message references, in edge insertion order.
        self.edge_messages: List["Message"] = graph.messages()
        self.edge_id_of: Dict[Tuple[int, int], int] = {
            (s, d): e
            for e, (s, d) in enumerate(zip(self.edge_src, self.edge_dst))
        }

        n = len(self.ids)
        # CSR build preserving per-node adjacency order (edge insertion
        # order within each node's list, matching TaskGraph._succ/_pred).
        succ_lists: List[List[int]] = [[] for _ in range(n)]
        pred_lists: List[List[int]] = [[] for _ in range(n)]
        for e in range(len(edges)):
            succ_lists[self.edge_src[e]].append(e)
            pred_lists[self.edge_dst[e]].append(e)
        self.succ_indptr, self.succ_ids, self.succ_edges = self._csr(
            succ_lists, self.edge_dst
        )
        self.pred_indptr, self.pred_ids, self.pred_edges = self._csr(
            pred_lists, self.edge_src
        )

        self._topo: Optional[List[int]] = None
        self._depths: Optional[List[int]] = None
        #: Expanded-graph overlay cache, owned by repro.core.expanded:
        #: (estimator cache key) -> (value fingerprint, ExpandedGraph).
        self._expanded_cache: Dict[object, Tuple[int, object]] = {}

    @staticmethod
    def _csr(
        per_node_edges: List[List[int]], other_end: List[int]
    ) -> Tuple[List[int], List[int], List[int]]:
        indptr = [0]
        node_ids: List[int] = []
        edge_ids: List[int] = []
        for edges in per_node_edges:
            for e in edges:
                node_ids.append(other_end[e])
                edge_ids.append(e)
            indptr.append(len(node_ids))
        return indptr, node_ids, edge_ids

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.ids)

    @property
    def n_edges(self) -> int:
        return len(self.edge_src)

    def successors_of(self, i: int) -> List[int]:
        """Dense successor ids of node ``i`` (a fresh list)."""
        return self.succ_ids[self.succ_indptr[i]:self.succ_indptr[i + 1]]

    def predecessors_of(self, i: int) -> List[int]:
        """Dense predecessor ids of node ``i`` (a fresh list)."""
        return self.pred_ids[self.pred_indptr[i]:self.pred_indptr[i + 1]]

    def in_degree_of(self, i: int) -> int:
        return self.pred_indptr[i + 1] - self.pred_indptr[i]

    def out_degree_of(self, i: int) -> int:
        return self.succ_indptr[i + 1] - self.succ_indptr[i]

    def message_between(self, src: int, dst: int) -> "Message":
        """The Message on arc ``src -> dst`` (dense ids), O(1)."""
        return self.edge_messages[self.edge_id_of[(src, dst)]]

    # ------------------------------------------------------------------
    # Cached order and depths
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Dense ids in Kahn topological order (insertion tie-break).

        Cached after the first call; raises :class:`CycleError` (with one
        concrete cycle, in node-id terms) when the graph is cyclic. The
        returned list is shared — treat it as read-only.
        """
        if self._topo is None:
            self._topo = self._compute_topo()
        return self._topo

    def _compute_topo(self) -> List[int]:
        n = self.n_nodes
        indptr, succ = self.succ_indptr, self.succ_ids
        in_deg = [self.in_degree_of(i) for i in range(n)]
        order = [i for i in range(n) if in_deg[i] == 0]
        head = 0
        while head < len(order):
            i = order[head]
            head += 1
            for k in range(indptr[i], indptr[i + 1]):
                s = succ[k]
                in_deg[s] -= 1
                if in_deg[s] == 0:
                    order.append(s)
        if len(order) != n:
            self._raise_cycle(in_deg)
        return order

    def _raise_cycle(self, in_deg: List[int]) -> None:
        """Find one concrete cycle among nodes with residual in-degree,
        reported in node-id terms (deterministic: smallest id first)."""
        remaining = {i for i in range(self.n_nodes) if in_deg[i] > 0}
        start = min(remaining, key=lambda i: self.ids[i])
        path: List[int] = []
        seen: Dict[int, int] = {}
        i = start
        while i not in seen:
            seen[i] = len(path)
            path.append(i)
            i = next(s for s in self.successors_of(i) if s in remaining)
        cycle = path[seen[i]:] + [i]
        raise CycleError([self.ids[j] for j in cycle])

    def depths(self) -> List[int]:
        """1-based level of each node: 1 + longest hop distance from any
        input subtask. Cached; the returned list is shared (read-only)."""
        if self._depths is None:
            depth = [1] * self.n_nodes
            indptr, pred = self.pred_indptr, self.pred_ids
            for i in self.topological_order():
                best = 0
                for k in range(indptr[i], indptr[i + 1]):
                    d = depth[pred[k]]
                    if d > best:
                        best = d
                depth[i] = 1 + best
            self._depths = depth
        return self._depths

    # ------------------------------------------------------------------
    # Value snapshots (re-read live attributes on every call)
    # ------------------------------------------------------------------
    def wcet_array(self) -> List[Time]:
        return [s.wcet for s in self.subtasks]

    def release_array(self) -> List[Optional[Time]]:
        return [s.release for s in self.subtasks]

    def deadline_array(self) -> List[Optional[Time]]:
        return [s.end_to_end_deadline for s in self.subtasks]

    def pinned_array(self) -> List[Optional[ProcessorId]]:
        return [s.pinned_to for s in self.subtasks]

    def message_size_array(self) -> List[Time]:
        return [m.size for m in self.edge_messages]

    def value_fingerprint(self) -> int:
        """Hash of every mutable attribute an overlay may have baked in.

        Structure is immutable for the lifetime of an index (mutation
        builds a new one), but costs, anchors, pins and message sizes are
        live attributes; overlays that snapshot them (the expanded graph)
        key their cache on this fingerprint so attribute mutation between
        calls is detected instead of silently served stale.
        """
        return hash((
            tuple(
                (s.wcet, s.release, s.end_to_end_deadline, s.pinned_to)
                for s in self.subtasks
            ),
            tuple(m.size for m in self.edge_messages),
        ))

    def __len__(self) -> int:
        return self.n_nodes

    def __repr__(self) -> str:
        return f"GraphIndex(nodes={self.n_nodes}, edges={self.n_edges})"
