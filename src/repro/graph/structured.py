"""Generators for commonly-encountered task-graph structures.

Section 8 of the paper names in-tree, out-tree and fork-join graphs as
structures of interest beyond the random graphs of the main evaluation.
These generators share the random generator's execution-time, message-size
and deadline-anchoring conventions so they can be dropped into the same
experiments (see ``repro.feast.experiments.ext_structured``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.errors import GeneratorError
from repro.graph.generator import (
    RandomGraphConfig,
    _anchor_deadlines,
    _assign_message_sizes,
    _draw_execution_time,
)
from repro.graph.taskgraph import TaskGraph


def _finalize(
    graph: TaskGraph, config: RandomGraphConfig, rng: random.Random
) -> TaskGraph:
    _assign_message_sizes(graph, config, rng)
    _anchor_deadlines(graph, config)
    graph.validate()
    return graph


def generate_out_tree(
    depth: int,
    branching: int = 2,
    config: RandomGraphConfig = RandomGraphConfig(),
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A rooted tree with arcs pointing away from the root.

    One input subtask (the root) fans out into ``branching`` children per
    node for ``depth`` levels; every leaf is an output subtask.
    """
    if depth < 1:
        raise GeneratorError("out-tree depth must be >= 1")
    if branching < 1:
        raise GeneratorError("out-tree branching must be >= 1")
    rng = rng if rng is not None else random.Random()
    graph = TaskGraph(name=f"out-tree-d{depth}-b{branching}")
    graph.add_subtask("t000", wcet=_draw_execution_time(config, rng))
    frontier = ["t000"]
    counter = 1
    for _ in range(depth - 1):
        nxt: List[str] = []
        for parent in frontier:
            for _ in range(branching):
                node = f"t{counter:03d}"
                counter += 1
                graph.add_subtask(node, wcet=_draw_execution_time(config, rng))
                graph.add_edge(parent, node)
                nxt.append(node)
        frontier = nxt
    return _finalize(graph, config, rng)


def generate_in_tree(
    depth: int,
    branching: int = 2,
    config: RandomGraphConfig = RandomGraphConfig(),
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A rooted tree with arcs pointing toward the root.

    The mirror of :func:`generate_out_tree`: many input subtasks reduce
    level by level into one output subtask.
    """
    if depth < 1:
        raise GeneratorError("in-tree depth must be >= 1")
    if branching < 1:
        raise GeneratorError("in-tree branching must be >= 1")
    rng = rng if rng is not None else random.Random()
    graph = TaskGraph(name=f"in-tree-d{depth}-b{branching}")
    # Build the leaf level first, then merge toward the root.
    counter = 0

    def fresh() -> str:
        nonlocal counter
        node = f"t{counter:03d}"
        counter += 1
        graph.add_subtask(node, wcet=_draw_execution_time(config, rng))
        return node

    frontier = [fresh() for _ in range(branching ** (depth - 1))]
    while len(frontier) > 1:
        nxt: List[str] = []
        for i in range(0, len(frontier), branching):
            group = frontier[i : i + branching]
            parent = fresh()
            for child in group:
                graph.add_edge(child, parent)
            nxt.append(parent)
        frontier = nxt
    return _finalize(graph, config, rng)


def generate_fork_join(
    stages: int,
    width: int,
    config: RandomGraphConfig = RandomGraphConfig(),
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """Alternating fork/join stages: fork → ``width`` parallel subtasks →
    join, repeated ``stages`` times in series.
    """
    if stages < 1:
        raise GeneratorError("fork-join stages must be >= 1")
    if width < 1:
        raise GeneratorError("fork-join width must be >= 1")
    rng = rng if rng is not None else random.Random()
    graph = TaskGraph(name=f"fork-join-s{stages}-w{width}")
    counter = 0

    def fresh() -> str:
        nonlocal counter
        node = f"t{counter:03d}"
        counter += 1
        graph.add_subtask(node, wcet=_draw_execution_time(config, rng))
        return node

    prev_join = fresh()
    for _ in range(stages):
        fork = prev_join
        branches = [fresh() for _ in range(width)]
        join = fresh()
        for b in branches:
            graph.add_edge(fork, b)
            graph.add_edge(b, join)
        prev_join = join
    return _finalize(graph, config, rng)


def generate_pipeline(
    length: int,
    config: RandomGraphConfig = RandomGraphConfig(),
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A pure chain of ``length`` subtasks (parallelism ξ = 1)."""
    if length < 1:
        raise GeneratorError("pipeline length must be >= 1")
    rng = rng if rng is not None else random.Random()
    graph = TaskGraph(name=f"pipeline-{length}")
    prev: Optional[str] = None
    for i in range(length):
        node = f"t{i:03d}"
        graph.add_subtask(node, wcet=_draw_execution_time(config, rng))
        if prev is not None:
            graph.add_edge(prev, node)
        prev = node
    return _finalize(graph, config, rng)


def generate_diamond(
    width: int,
    config: RandomGraphConfig = RandomGraphConfig(),
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A single fork-join "diamond": source → ``width`` branches → sink."""
    return generate_fork_join(1, width, config=config, rng=rng)


#: Named structure presets used by the Section 8 structured-graph experiment.
STRUCTURES: Dict[str, Callable[..., TaskGraph]] = {
    "in-tree": generate_in_tree,
    "out-tree": generate_out_tree,
    "fork-join": generate_fork_join,
    "pipeline": generate_pipeline,
}
