"""Random task-graph generator (paper Section 5.2).

The paper's workload: 128 task graphs per configuration, each with

* 40–60 subtasks,
* uniformly distributed execution times with mean execution time (MET) 20,
  deviating at most ±25 % (LDET), ±50 % (MDET) or ±99 % (HDET) from MET,
* graph depth chosen at random in 8–12 levels,
* per-subtask predecessor count chosen at random in 1–3,
* an end-to-end deadline per input-output pair such that the overall laxity
  ratio (OLR) between the deadline and the accumulated task-graph workload
  is 1.5,
* message sizes such that the communication-to-computation cost ratio (CCR)
  between the average message cost and the average execution time is 1.0.

The OLR sentence is ambiguous about its base ("accumulated task graph
workload"); :class:`RandomGraphConfig.olr_basis` selects the literal
graph-workload reading (default) or a per-path reading. See DESIGN.md §5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GeneratorError
from repro.graph import paths
from repro.graph.taskgraph import TaskGraph
from repro.types import Time

#: Execution-time deviation of the paper's three scenarios.
LDET = 0.25
MDET = 0.50
HDET = 0.99

#: Scenario names, in the order the paper plots them.
SCENARIOS: Dict[str, float] = {"LDET": LDET, "MDET": MDET, "HDET": HDET}

#: Valid values of :attr:`RandomGraphConfig.olr_basis`.
OLR_BASES = ("graph-workload", "path-workload")


@dataclass(frozen=True)
class RandomGraphConfig:
    """Parameters of the random task-graph generator.

    Defaults reproduce the paper's Section 5.2 setup with the MDET
    execution-time scenario.
    """

    n_subtasks_range: Tuple[int, int] = (40, 60)
    mean_execution_time: Time = 20.0
    execution_time_deviation: float = MDET
    depth_range: Tuple[int, int] = (8, 12)
    degree_range: Tuple[int, int] = (1, 3)
    overall_laxity_ratio: float = 1.5
    olr_basis: str = "graph-workload"
    communication_to_computation_ratio: float = 1.0
    message_size_deviation: float = 0.5
    #: Probability that a predecessor is drawn from *any* earlier level
    #: instead of the immediately preceding one (longer-range edges).
    long_edge_probability: float = 0.2
    integer_times: bool = False

    def __post_init__(self) -> None:
        lo, hi = self.n_subtasks_range
        d_lo, d_hi = self.depth_range
        g_lo, g_hi = self.degree_range
        if lo < 1 or hi < lo:
            raise GeneratorError(f"bad n_subtasks_range {self.n_subtasks_range}")
        if d_lo < 1 or d_hi < d_lo:
            raise GeneratorError(f"bad depth_range {self.depth_range}")
        if g_lo < 1 or g_hi < g_lo:
            raise GeneratorError(f"bad degree_range {self.degree_range}")
        if self.mean_execution_time <= 0:
            raise GeneratorError("mean_execution_time must be > 0")
        if not 0 <= self.execution_time_deviation < 1:
            raise GeneratorError(
                "execution_time_deviation must be in [0, 1); "
                f"got {self.execution_time_deviation}"
            )
        if self.overall_laxity_ratio <= 0:
            raise GeneratorError("overall_laxity_ratio must be > 0")
        if self.olr_basis not in OLR_BASES:
            raise GeneratorError(
                f"olr_basis must be one of {OLR_BASES}, got {self.olr_basis!r}"
            )
        if self.communication_to_computation_ratio < 0:
            raise GeneratorError("communication_to_computation_ratio must be >= 0")
        if not 0 <= self.message_size_deviation < 1:
            raise GeneratorError("message_size_deviation must be in [0, 1)")
        if not 0 <= self.long_edge_probability <= 1:
            raise GeneratorError("long_edge_probability must be in [0, 1]")

    def with_scenario(self, scenario: str) -> "RandomGraphConfig":
        """Copy with the execution-time deviation of a named scenario
        (``"LDET"``, ``"MDET"`` or ``"HDET"``)."""
        if scenario not in SCENARIOS:
            raise GeneratorError(
                f"unknown scenario {scenario!r}; expected one of {list(SCENARIOS)}"
            )
        return replace(self, execution_time_deviation=SCENARIOS[scenario])


#: The paper's default configuration (choose a scenario with
#: :meth:`RandomGraphConfig.with_scenario`).
PAPER_CONFIG = RandomGraphConfig()


def generate_task_graph(
    config: RandomGraphConfig = PAPER_CONFIG,
    rng: Optional[random.Random] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Generate one random task graph per ``config``.

    ``rng`` makes generation reproducible; pass ``random.Random(seed)``.
    """
    rng = rng if rng is not None else random.Random()
    n = rng.randint(*config.n_subtasks_range)
    depth = rng.randint(*config.depth_range)
    if n < depth:
        raise GeneratorError(
            f"cannot place {n} subtasks on {depth} levels (need n >= depth)"
        )
    graph = TaskGraph(name=name if name is not None else f"random-{n}x{depth}")

    levels = _assign_levels(n, depth, rng)
    _add_subtasks(graph, levels, config, rng)
    _wire_edges(graph, levels, config, rng)
    _assign_message_sizes(graph, config, rng)
    _anchor_deadlines(graph, config)
    graph.validate()
    return graph


def generate_task_graphs(
    count: int,
    config: RandomGraphConfig = PAPER_CONFIG,
    seed: int = 0,
) -> List[TaskGraph]:
    """Generate ``count`` independent graphs with derived per-graph seeds.

    Graph ``i`` is produced from ``random.Random(seed * 1_000_003 + i)`` so a
    sweep over configurations can reuse identical graph structures by fixing
    ``seed`` (paired-comparison experiments, as the paper's figure panels do).
    """
    return [
        generate_task_graph(
            config,
            rng=random.Random(seed * 1_000_003 + i),
            name=f"random-{seed}-{i}",
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Generation phases
# ----------------------------------------------------------------------
def _assign_levels(n: int, depth: int, rng: random.Random) -> List[List[str]]:
    """Partition ``n`` node ids over ``depth`` non-empty levels."""
    counts = [1] * depth
    for _ in range(n - depth):
        counts[rng.randrange(depth)] += 1
    levels: List[List[str]] = []
    idx = 0
    for lvl, count in enumerate(counts):
        levels.append([f"t{idx + k:03d}" for k in range(count)])
        idx += count
    return levels


def _draw_execution_time(config: RandomGraphConfig, rng: random.Random) -> Time:
    met = config.mean_execution_time
    dev = config.execution_time_deviation
    c = rng.uniform(met * (1 - dev), met * (1 + dev))
    if config.integer_times:
        c = max(1.0, round(c))
    return c


def _add_subtasks(
    graph: TaskGraph,
    levels: List[List[str]],
    config: RandomGraphConfig,
    rng: random.Random,
) -> None:
    for level in levels:
        for node_id in level:
            graph.add_subtask(node_id, wcet=_draw_execution_time(config, rng))


def _wire_edges(
    graph: TaskGraph,
    levels: List[List[str]],
    config: RandomGraphConfig,
    rng: random.Random,
) -> None:
    """Connect levels so the realized depth equals ``len(levels)``.

    Every node below the first level draws 1–3 predecessors; at least one
    predecessor comes from the immediately preceding level, which pins the
    graph depth to the intended value. Nodes left without successors on
    non-final levels are attached forward so outputs sit on the last level.
    """
    g_lo, g_hi = config.degree_range
    for lvl in range(1, len(levels)):
        prev = levels[lvl - 1]
        earlier = [node for l in levels[:lvl] for node in l]
        for node in levels[lvl]:
            k = rng.randint(g_lo, min(g_hi, len(earlier)))
            preds = {rng.choice(prev)}
            while len(preds) < k:
                pool = (
                    earlier
                    if rng.random() < config.long_edge_probability
                    else prev
                )
                preds.add(rng.choice(pool))
            for p in sorted(preds):
                if not graph.has_edge(p, node):
                    graph.add_edge(p, node)
    # Forward-attach childless interior nodes.
    for lvl in range(len(levels) - 1):
        nxt = levels[lvl + 1]
        for node in levels[lvl]:
            if graph.out_degree(node) == 0:
                graph.add_edge(node, rng.choice(nxt))


def _assign_message_sizes(
    graph: TaskGraph, config: RandomGraphConfig, rng: random.Random
) -> None:
    """Draw message sizes with mean CCR × MET (paper: CCR between *average*
    message cost and *average* execution time)."""
    mean_size = (
        config.communication_to_computation_ratio * config.mean_execution_time
    )
    if mean_size <= 0:
        return
    dev = config.message_size_deviation
    for msg in graph.messages():
        size = rng.uniform(mean_size * (1 - dev), mean_size * (1 + dev))
        if config.integer_times:
            size = max(0.0, round(size))
        graph.message(msg.src, msg.dst).size = size


def _anchor_deadlines(graph: TaskGraph, config: RandomGraphConfig) -> None:
    """Release inputs at 0; anchor output deadlines per the OLR.

    ``graph-workload`` basis: every output gets
    ``D = OLR × total_workload`` (literal reading of the paper).
    ``path-workload`` basis: each output gets
    ``D = OLR × (heaviest execution-time path ending at it)``.
    """
    for node_id in graph.input_subtasks():
        graph.node(node_id).release = 0.0
    if config.olr_basis == "graph-workload":
        deadline = config.overall_laxity_ratio * graph.total_workload()
        for node_id in graph.output_subtasks():
            graph.node(node_id).end_to_end_deadline = deadline
        return
    heaviest = _heaviest_prefix(graph)
    for node_id in graph.output_subtasks():
        graph.node(node_id).end_to_end_deadline = (
            config.overall_laxity_ratio * heaviest[node_id]
        )


def _heaviest_prefix(graph: TaskGraph) -> Dict[str, Time]:
    """For each node, the heaviest execution-time path ending at it."""
    prefix: Dict[str, Time] = {}
    for n in graph.topological_order():
        best = max((prefix[p] for p in graph.predecessors(n)), default=0.0)
        prefix[n] = best + graph.node(n).wcet
    return prefix
