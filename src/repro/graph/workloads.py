"""Realistic application workloads (paper Section 8's wished-for benchmarks).

The paper evaluates on random graphs and notes it "would like to evaluate
AST on a set of realistic benchmarks that do not only encompass small
comprehensible applications … but also larger applications". This module
provides that benchmark set: hand-built task graphs modelled after the
classic structures of three hard-real-time domains. They are *synthetic
but structured* — shapes, fan-outs and compute/communication balances
follow the domain's standard processing chains, while absolute numbers
are parameterized.

All builders honour the library's anchor conventions (inputs released at
0; outputs carry end-to-end deadlines derived from an overall laxity
ratio), so they drop into the experiment harness via ``graph_factory``.

* :func:`automotive_control` — an engine/vehicle control application:
  several sensor front-ends feeding fusion, mode logic and control-law
  computation, fanning out to actuators. Sensors/actuators optionally
  pinned (the paper's strict-subset motivation).
* :func:`radar_pipeline` — a pulse-Doppler radar chain: per-channel pulse
  compression in parallel, corner turn (all-to-all), Doppler filtering,
  CFAR detection, tracking. Wide parallel stages joined by heavy
  communication steps.
* :func:`video_encoder` — a macroblock-row encoder: per-row motion
  estimation / transform chains with row-to-row dependencies (the classic
  wavefront), entropy coding join.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import GeneratorError
from repro.graph.taskgraph import TaskGraph
from repro.types import Time


def _anchor(graph: TaskGraph, laxity_ratio: float) -> TaskGraph:
    """Release inputs at 0; outputs get OLR × total workload (the main
    evaluation's literal convention), shared across outputs."""
    if laxity_ratio <= 0:
        raise GeneratorError("laxity_ratio must be > 0")
    for node_id in graph.input_subtasks():
        graph.node(node_id).release = 0.0
    deadline = laxity_ratio * graph.total_workload()
    for node_id in graph.output_subtasks():
        graph.node(node_id).end_to_end_deadline = deadline
    graph.validate()
    return graph


def automotive_control(
    n_sensors: int = 6,
    n_actuators: int = 4,
    laxity_ratio: float = 1.5,
    pin_io: bool = True,
    io_processors: int = 2,
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """An engine/vehicle control application.

    Structure: ``n_sensors`` acquisition subtasks → per-sensor filtering →
    sensor fusion → (mode logic ∥ control law ∥ diagnostics) → command
    mixing → ``n_actuators`` actuation subtasks. With ``pin_io`` the
    acquisition and actuation subtasks are pinned round-robin onto the
    first ``io_processors`` processors — the paper's strict subset.
    """
    if n_sensors < 1 or n_actuators < 1:
        raise GeneratorError("need at least one sensor and one actuator")
    rng = rng if rng is not None else random.Random(0)
    g = TaskGraph(name=f"automotive-{n_sensors}s{n_actuators}a")

    fusion_inputs: List[str] = []
    for i in range(n_sensors):
        acq = f"acq{i}"
        flt = f"filt{i}"
        g.add_subtask(
            acq,
            wcet=rng.uniform(2.0, 4.0),
            pinned_to=(i % io_processors) if pin_io else None,
        )
        g.add_subtask(flt, wcet=rng.uniform(6.0, 12.0))
        g.add_edge(acq, flt, message_size=rng.uniform(2.0, 4.0))
        fusion_inputs.append(flt)

    g.add_subtask("fusion", wcet=rng.uniform(15.0, 25.0))
    for flt in fusion_inputs:
        g.add_edge(flt, "fusion", message_size=rng.uniform(2.0, 6.0))

    g.add_subtask("mode", wcet=rng.uniform(5.0, 9.0))
    g.add_subtask("control", wcet=rng.uniform(20.0, 35.0))
    g.add_subtask("diag", wcet=rng.uniform(8.0, 14.0))
    for stage in ("mode", "control", "diag"):
        g.add_edge("fusion", stage, message_size=rng.uniform(2.0, 5.0))

    g.add_subtask("mix", wcet=rng.uniform(6.0, 10.0))
    g.add_edge("mode", "mix", message_size=1.0)
    g.add_edge("control", "mix", message_size=rng.uniform(2.0, 4.0))

    for j in range(n_actuators):
        act = f"act{j}"
        g.add_subtask(
            act,
            wcet=rng.uniform(2.0, 4.0),
            pinned_to=(j % io_processors) if pin_io else None,
        )
        g.add_edge("mix", act, message_size=rng.uniform(1.0, 2.0))
    # Diagnostics log is an output of its own.
    g.add_subtask("log", wcet=rng.uniform(3.0, 6.0))
    g.add_edge("diag", "log", message_size=rng.uniform(1.0, 3.0))
    return _anchor(g, laxity_ratio)


def radar_pipeline(
    n_channels: int = 8,
    n_doppler_banks: int = 4,
    laxity_ratio: float = 1.5,
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A pulse-Doppler radar processing chain.

    Structure: per-channel A/D + pulse compression (wide parallel stage),
    a corner-turn with all-to-all communication into ``n_doppler_banks``
    Doppler filter banks, CFAR detection per bank, and one tracker join.
    Heavy message sizes on the corner turn make this the communication-
    stress member of the benchmark set.
    """
    if n_channels < 1 or n_doppler_banks < 1:
        raise GeneratorError("need at least one channel and one bank")
    rng = rng if rng is not None else random.Random(0)
    g = TaskGraph(name=f"radar-{n_channels}ch{n_doppler_banks}bk")

    compressed: List[str] = []
    for i in range(n_channels):
        ad = f"ad{i}"
        pc = f"pc{i}"
        g.add_subtask(ad, wcet=rng.uniform(3.0, 5.0))
        g.add_subtask(pc, wcet=rng.uniform(18.0, 30.0))
        g.add_edge(ad, pc, message_size=rng.uniform(6.0, 10.0))
        compressed.append(pc)

    # Corner turn: every channel feeds every Doppler bank.
    banks: List[str] = []
    for b in range(n_doppler_banks):
        dop = f"dop{b}"
        g.add_subtask(dop, wcet=rng.uniform(20.0, 32.0))
        banks.append(dop)
        for pc in compressed:
            g.add_edge(pc, dop, message_size=rng.uniform(8.0, 14.0))

    cfars: List[str] = []
    for b, dop in enumerate(banks):
        cfar = f"cfar{b}"
        g.add_subtask(cfar, wcet=rng.uniform(10.0, 16.0))
        g.add_edge(dop, cfar, message_size=rng.uniform(3.0, 6.0))
        cfars.append(cfar)

    g.add_subtask("tracker", wcet=rng.uniform(12.0, 20.0))
    for cfar in cfars:
        g.add_edge(cfar, "tracker", message_size=rng.uniform(1.0, 3.0))
    return _anchor(g, laxity_ratio)


def video_encoder(
    n_rows: int = 6,
    stages_per_row: int = 3,
    laxity_ratio: float = 1.5,
    rng: Optional[random.Random] = None,
) -> TaskGraph:
    """A macroblock-row video encoder with wavefront dependencies.

    Structure: each of ``n_rows`` rows is a chain of ``stages_per_row``
    subtasks (motion estimation → transform/quantize → reconstruct); stage
    ``k`` of row ``r`` additionally depends on stage ``k`` of row
    ``r − 1`` (the wavefront), and all rows join in entropy coding. The
    wavefront bounds exploitable parallelism — the structure where the
    paper's small-system effects live.
    """
    if n_rows < 1 or stages_per_row < 1:
        raise GeneratorError("need at least one row and one stage")
    rng = rng if rng is not None else random.Random(0)
    g = TaskGraph(name=f"video-{n_rows}x{stages_per_row}")

    g.add_subtask("capture", wcet=rng.uniform(4.0, 8.0))
    stage_id: Dict[tuple, str] = {}
    for r in range(n_rows):
        for k in range(stages_per_row):
            node = f"r{r}s{k}"
            stage_id[(r, k)] = node
            g.add_subtask(node, wcet=rng.uniform(8.0, 20.0))
            if k == 0:
                g.add_edge("capture", node, message_size=rng.uniform(3.0, 6.0))
            else:
                g.add_edge(
                    stage_id[(r, k - 1)], node,
                    message_size=rng.uniform(2.0, 5.0),
                )
            if r > 0:
                g.add_edge(
                    stage_id[(r - 1, k)], node,
                    message_size=rng.uniform(1.0, 3.0),
                )

    g.add_subtask("entropy", wcet=rng.uniform(15.0, 25.0))
    for r in range(n_rows):
        g.add_edge(
            stage_id[(r, stages_per_row - 1)], "entropy",
            message_size=rng.uniform(2.0, 5.0),
        )
    return _anchor(g, laxity_ratio)


#: The benchmark set, by name (used by the ext-realistic experiment).
WORKLOADS = {
    "automotive": automotive_control,
    "radar": radar_pipeline,
    "video": video_encoder,
}


def make_workload(
    name: str, rng: Optional[random.Random] = None, **kwargs
) -> TaskGraph:
    """Instantiate a named realistic workload."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise GeneratorError(
            f"unknown workload {name!r}; expected one of {sorted(WORKLOADS)}"
        ) from None
    return builder(rng=rng, **kwargs)
