"""Descriptive statistics of a task graph.

The :class:`GraphStats` summary mirrors the workload parameters of the
paper's Section 5.2 so generated workloads can be checked against their
configuration, and so experiment reports can describe what was actually run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph import paths
from repro.graph.taskgraph import TaskGraph
from repro.types import Time


@dataclass(frozen=True)
class GraphStats:
    """Aggregate description of one task graph."""

    n_subtasks: int
    n_edges: int
    n_inputs: int
    n_outputs: int
    n_pinned: int
    depth: int
    total_workload: Time
    mean_execution_time: Time
    min_execution_time: Time
    max_execution_time: Time
    longest_path_execution_time: Time
    average_parallelism: float
    total_message_volume: Time
    mean_message_size: Time
    communication_to_computation_ratio: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, convenient for tabulation."""
        return {
            "n_subtasks": self.n_subtasks,
            "n_edges": self.n_edges,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "n_pinned": self.n_pinned,
            "depth": self.depth,
            "total_workload": self.total_workload,
            "mean_execution_time": self.mean_execution_time,
            "min_execution_time": self.min_execution_time,
            "max_execution_time": self.max_execution_time,
            "longest_path_execution_time": self.longest_path_execution_time,
            "average_parallelism": self.average_parallelism,
            "total_message_volume": self.total_message_volume,
            "mean_message_size": self.mean_message_size,
            "communication_to_computation_ratio": (
                self.communication_to_computation_ratio
            ),
        }


def graph_stats(graph: TaskGraph) -> GraphStats:
    """Compute the :class:`GraphStats` of ``graph``.

    All structural quantities come from the compiled
    :class:`~repro.graph.indexed.GraphIndex` (one topological sweep
    serves the depth, longest-path and parallelism figures)."""
    index = graph.index()
    wcets: List[Time] = index.wcet_array()
    if not wcets:
        graph.mean_execution_time()  # raises the canonical empty-graph error
    total_workload = sum(wcets)
    met = total_workload / len(wcets)
    n_edges = index.n_edges
    total_msg = sum(index.message_size_array())
    mean_msg = total_msg / n_edges if n_edges else 0.0
    longest = paths.longest_path_length(graph)
    return GraphStats(
        n_subtasks=index.n_nodes,
        n_edges=n_edges,
        n_inputs=sum(
            1 for i in range(index.n_nodes) if index.in_degree_of(i) == 0
        ),
        n_outputs=sum(
            1 for i in range(index.n_nodes) if index.out_degree_of(i) == 0
        ),
        n_pinned=sum(1 for s in index.subtasks if s.is_pinned),
        depth=max(index.depths()),
        total_workload=total_workload,
        mean_execution_time=met,
        min_execution_time=min(wcets),
        max_execution_time=max(wcets),
        longest_path_execution_time=longest,
        average_parallelism=total_workload / longest,
        total_message_volume=total_msg,
        mean_message_size=mean_msg,
        communication_to_computation_ratio=mean_msg / met if met else 0.0,
    )


def width_histogram(graph: TaskGraph) -> Dict[int, int]:
    """Number of subtasks per level (1-based), a view of graph parallelism."""
    hist: Dict[int, int] = {}
    for lvl in graph.index().depths():
        hist[lvl] = hist.get(lvl, 0) + 1
    return dict(sorted(hist.items()))


def max_width(graph: TaskGraph) -> int:
    """Maximum number of subtasks on any level."""
    return max(width_histogram(graph).values())
