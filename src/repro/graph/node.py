"""Node types of the task-graph model (Section 3 of the paper).

A *subtask* is the unit of computation: it has a worst-case execution time
``wcet`` and, once deadline distribution has run, a release time and a
relative deadline. Subtasks at the boundary of the graph may carry *anchor*
values supplied by the application: input subtasks carry a release time and
output subtasks carry an end-to-end (absolute) deadline.

A *communication subtask* models the transfer of one message along a
precedence arc. It is not stored in the user-facing graph — users annotate
arcs with a message size — but is materialized by the deadline-distribution
and scheduling layers, where it behaves like a subtask whose "execution
time" is the (estimated or actual) communication cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ValidationError
from repro.types import NodeId, ProcessorId, Time


@dataclass
class Subtask:
    """A computation subtask: node of the task graph.

    Parameters
    ----------
    node_id:
        Unique identifier within its graph.
    wcet:
        Worst-case execution time, strictly positive.
    release:
        Application-supplied release time. Meaningful on input subtasks
        (nodes without predecessors); for interior nodes it is assigned by
        deadline distribution. ``None`` means "not (yet) assigned".
    end_to_end_deadline:
        Application-supplied absolute deadline. Meaningful on output
        subtasks (nodes without successors).
    pinned_to:
        Strict locality constraint: the processor this subtask *must* run
        on, or ``None`` when the assignment is relaxed (scheduler's choice).
    """

    node_id: NodeId
    wcet: Time
    release: Optional[Time] = None
    end_to_end_deadline: Optional[Time] = None
    pinned_to: Optional[ProcessorId] = None

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValidationError("subtask id must be a non-empty string")
        if self.wcet <= 0:
            raise ValidationError(
                f"subtask {self.node_id!r}: wcet must be > 0, got {self.wcet}"
            )
        if self.pinned_to is not None and self.pinned_to < 0:
            raise ValidationError(
                f"subtask {self.node_id!r}: pinned_to must be >= 0, got {self.pinned_to}"
            )

    @property
    def is_pinned(self) -> bool:
        """Whether this subtask has a strict locality constraint."""
        return self.pinned_to is not None


@dataclass
class Message:
    """Annotation of a precedence arc: the data flowing from src to dst.

    ``size`` is the number of data items; on the paper's shared bus each
    data item costs one time unit, so ``size`` doubles as the interprocessor
    communication cost. A size of 0 models a pure precedence constraint
    (control dependency without data transfer).
    """

    src: NodeId
    dst: NodeId
    size: Time = 0.0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValidationError(
                f"message {self.src!r}->{self.dst!r}: size must be >= 0, got {self.size}"
            )

    @property
    def edge_id(self) -> tuple:
        return (self.src, self.dst)


@dataclass
class CommSubtask:
    """A materialized communication subtask χ_ij (paper Section 3).

    Created by the deadline-distribution or scheduling layers for an arc
    whose (estimated or actual) communication cost is non-negligible.
    ``cost`` plays the role of the execution time in path metrics and in
    window assignment.
    """

    src: NodeId
    dst: NodeId
    cost: Time
    release: Optional[Time] = None
    deadline: Optional[Time] = None  # absolute

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValidationError(
                f"comm subtask {self.src!r}->{self.dst!r}: cost must be >= 0"
            )

    @property
    def comm_id(self) -> str:
        """Stable synthetic identifier, distinct from any subtask id."""
        return f"chi({self.src}->{self.dst})"
