"""Periodic task support: hyperperiod unrolling (paper Section 3).

The paper analyses non-periodic tasks and notes that a periodic system can
always be transformed into a non-periodic one over one hyperperiod: every
periodic task is instantiated once per period within ``[0, L)`` where ``L``
is the least common multiple of all periods. This module performs exactly
that transformation, so periodic applications can use the deadline
distribution and scheduling machinery unchanged.

Instance ``k`` of a task gets release ``k × period + release`` on its input
subtasks and absolute deadline ``k × period + deadline`` on its output
subtasks. Inter-task arcs between tasks of *different* periods connect
instance ``k`` of the producer to every consumer instance whose window
starts inside the producer instance's period (rate transition by sampling),
which preserves the paper's "precedence constraints and communication
between subtasks of tasks with different periods".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, Time


@dataclass
class PeriodicTask:
    """One periodic task: a task graph released every ``period``.

    The embedded ``graph`` carries relative anchors: input subtasks'
    ``release`` values are offsets within the period, and output subtasks'
    ``end_to_end_deadline`` values are relative to the instance release
    (constrained deadline: must not exceed the period).
    """

    name: str
    graph: TaskGraph
    period: Time

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValidationError(f"task {self.name!r}: period must be > 0")
        self.graph.validate()
        for node_id in self.graph.output_subtasks():
            d = self.graph.node(node_id).end_to_end_deadline
            if d is not None and d > self.period:
                raise ValidationError(
                    f"task {self.name!r}: output {node_id!r} deadline {d} "
                    f"exceeds period {self.period} (constrained-deadline model)"
                )


@dataclass
class CrossTaskArc:
    """A precedence/communication arc between subtasks of two periodic tasks."""

    src_task: str
    src_node: NodeId
    dst_task: str
    dst_node: NodeId
    message_size: Time = 0.0


def hyperperiod(periods: Sequence[Time]) -> Time:
    """Least common multiple of (possibly fractional) periods."""
    if not periods:
        raise ValidationError("hyperperiod of an empty period set")
    # lcm of fractions = lcm(numerators) / gcd(denominators)
    fracs = [Fraction(p).limit_denominator(10**9) for p in periods]
    num = fracs[0].numerator
    den = fracs[0].denominator
    for f in fracs[1:]:
        num = num * f.numerator // gcd(num, f.numerator)
        den = gcd(den, f.denominator)
    return float(Fraction(num, den))


def unroll(
    tasks: Sequence[PeriodicTask],
    arcs: Sequence[CrossTaskArc] = (),
    name: str = "hyperperiod",
) -> TaskGraph:
    """Unroll a periodic task set into one non-periodic task graph.

    Returns a graph whose node ids are ``"{task}#{instance}:{node}"``.
    """
    if not tasks:
        raise ValidationError("cannot unroll an empty task set")
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValidationError("periodic task names must be unique")
    by_name = {t.name: t for t in tasks}
    length = hyperperiod([t.period for t in tasks])
    out = TaskGraph(name=name)

    instances: Dict[str, int] = {}
    for task in tasks:
        count = int(round(length / task.period))
        instances[task.name] = count
        for k in range(count):
            offset = k * task.period
            for sub in task.graph.nodes():
                release = (
                    offset + sub.release
                    if sub.release is not None and not task.graph.predecessors(sub.node_id)
                    else None
                )
                deadline = (
                    offset + sub.end_to_end_deadline
                    if sub.end_to_end_deadline is not None
                    and not task.graph.successors(sub.node_id)
                    else None
                )
                out.add_subtask(
                    _instance_id(task.name, k, sub.node_id),
                    wcet=sub.wcet,
                    release=release,
                    end_to_end_deadline=deadline,
                    pinned_to=sub.pinned_to,
                )
            for msg in task.graph.messages():
                out.add_edge(
                    _instance_id(task.name, k, msg.src),
                    _instance_id(task.name, k, msg.dst),
                    message_size=msg.size,
                )

    for arc in arcs:
        _wire_cross_task_arc(out, by_name, instances, arc)
    return out


def _instance_id(task: str, k: int, node: NodeId) -> NodeId:
    return f"{task}#{k}:{node}"


def _wire_cross_task_arc(
    out: TaskGraph,
    by_name: Dict[str, PeriodicTask],
    instances: Dict[str, int],
    arc: CrossTaskArc,
) -> None:
    if arc.src_task not in by_name or arc.dst_task not in by_name:
        raise ValidationError(
            f"cross-task arc references unknown task(s): "
            f"{arc.src_task!r} -> {arc.dst_task!r}"
        )
    src_task = by_name[arc.src_task]
    dst_task = by_name[arc.dst_task]
    if arc.src_node not in src_task.graph:
        raise ValidationError(
            f"arc source node {arc.src_node!r} not in task {arc.src_task!r}"
        )
    if arc.dst_node not in dst_task.graph:
        raise ValidationError(
            f"arc destination node {arc.dst_node!r} not in task {arc.dst_task!r}"
        )
    # Producer instance k covers [k*Ps, (k+1)*Ps); connect it to every
    # consumer instance released inside that window (and released no
    # earlier than the producer instance itself).
    for k in range(instances[arc.src_task]):
        window_start = k * src_task.period
        window_end = (k + 1) * src_task.period
        for j in range(instances[arc.dst_task]):
            consumer_release = j * dst_task.period
            if window_start <= consumer_release < window_end:
                out.add_edge(
                    _instance_id(arc.src_task, k, arc.src_node),
                    _instance_id(arc.dst_task, j, arc.dst_node),
                    message_size=arc.message_size,
                )
