"""Task-graph serialization: JSON round-trip and Graphviz DOT export.

The JSON schema is versioned and intentionally simple::

    {
      "format": "repro-taskgraph",
      "version": 1,
      "name": "...",
      "subtasks": [{"id": ..., "wcet": ..., "release": ...,
                    "end_to_end_deadline": ..., "pinned_to": ...}, ...],
      "edges": [{"src": ..., "dst": ..., "message_size": ...}, ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.errors import SerializationError
from repro.graph.taskgraph import TaskGraph

FORMAT = "repro-taskgraph"
VERSION = 1


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Encode a graph as a JSON-serializable dict."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "name": graph.name,
        "subtasks": [
            {
                "id": s.node_id,
                "wcet": s.wcet,
                "release": s.release,
                "end_to_end_deadline": s.end_to_end_deadline,
                "pinned_to": s.pinned_to,
            }
            for s in graph.nodes()
        ],
        "edges": [
            {"src": m.src, "dst": m.dst, "message_size": m.size}
            for m in graph.messages()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    """Decode a graph from :func:`graph_to_dict`'s representation."""
    if not isinstance(data, dict):
        raise SerializationError(f"expected a dict, got {type(data).__name__}")
    if data.get("format") != FORMAT:
        raise SerializationError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != VERSION:
        raise SerializationError(
            f"unsupported version {data.get('version')!r}; this build reads {VERSION}"
        )
    try:
        graph = TaskGraph(name=data.get("name", "taskgraph"))
        for s in data["subtasks"]:
            graph.add_subtask(
                s["id"],
                wcet=s["wcet"],
                release=s.get("release"),
                end_to_end_deadline=s.get("end_to_end_deadline"),
                pinned_to=s.get("pinned_to"),
            )
        for e in data["edges"]:
            graph.add_edge(e["src"], e["dst"], message_size=e.get("message_size", 0.0))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed task-graph document: {exc}") from exc
    return graph


def dumps(graph: TaskGraph, indent: int = 2) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> TaskGraph:
    """Parse a graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return graph_from_dict(data)


def dump(graph: TaskGraph, fp: IO[str], indent: int = 2) -> None:
    """Serialize a graph to an open text file."""
    fp.write(dumps(graph, indent=indent))


def load(fp: IO[str]) -> TaskGraph:
    """Parse a graph from an open text file."""
    return loads(fp.read())


def to_dot(graph: TaskGraph) -> str:
    """Render the graph in Graphviz DOT format (for visual inspection).

    Node labels show the execution time; edge labels show the message size
    when non-zero. Pinned subtasks are drawn as boxes.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for s in graph.nodes():
        shape = "box" if s.is_pinned else "ellipse"
        pin = f"\\npin={s.pinned_to}" if s.is_pinned else ""
        lines.append(
            f'  "{s.node_id}" [shape={shape}, label="{s.node_id}\\nc={s.wcet:g}{pin}"];'
        )
    for m in graph.messages():
        label = f' [label="{m.size:g}"]' if m.size else ""
        lines.append(f'  "{m.src}" -> "{m.dst}"{label};')
    lines.append("}")
    return "\n".join(lines)
