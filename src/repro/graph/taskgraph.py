"""The directed-acyclic task graph (Section 3 of the paper).

A :class:`TaskGraph` stores :class:`~repro.graph.node.Subtask` nodes and
:class:`~repro.graph.node.Message`-annotated precedence arcs. It offers the
structural queries every other layer needs: predecessors/successors,
input/output subtasks, topological order, reachability, and workload sums.

The graph is a plain mutable builder object; algorithms never mutate a graph
they were handed — deadline distribution returns a separate
:class:`~repro.core.annotations.DeadlineAssignment`, and scheduling returns a
:class:`~repro.sched.schedule.Schedule`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    CycleError,
    DuplicateEdgeError,
    DuplicateNodeError,
    UnknownNodeError,
    ValidationError,
)
from repro.graph.indexed import GraphIndex
from repro.graph.node import Message, Subtask
from repro.types import EdgeId, NodeId, ProcessorId, Time


class TaskGraph:
    """A DAG of subtasks with message-annotated precedence arcs.

    Example
    -------
    >>> g = TaskGraph()
    >>> g.add_subtask("a", wcet=10, release=0.0)
    >>> g.add_subtask("b", wcet=20, end_to_end_deadline=100.0)
    >>> g.add_edge("a", "b", message_size=5)
    >>> g.predecessors("b")
    ['a']
    """

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self._nodes: Dict[NodeId, Subtask] = {}
        self._messages: Dict[EdgeId, Message] = {}
        self._succ: Dict[NodeId, List[NodeId]] = {}
        self._pred: Dict[NodeId, List[NodeId]] = {}
        self._topo_cache: Optional[List[NodeId]] = None
        self._index_cache: Optional[GraphIndex] = None

    def _invalidate_caches(self) -> None:
        """Drop every derived structure after a structural mutation.

        Called by every structural mutator (``add_subtask`` / ``add_edge``
        / ``remove_subtask`` / ``remove_edge``); anything that caches a
        compiled view of the graph (topological order, :class:`GraphIndex`
        and the overlay caches hanging off it — expanded graphs and their
        batch-kernel views) must be dropped here, or a
        mutation-after-query would silently corrupt downstream analyses.
        """
        self._topo_cache = None
        self._index_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_subtask(
        self,
        node_id: NodeId,
        wcet: Time,
        release: Optional[Time] = None,
        end_to_end_deadline: Optional[Time] = None,
        pinned_to: Optional[ProcessorId] = None,
    ) -> Subtask:
        """Add a subtask node and return it.

        Raises :class:`DuplicateNodeError` if the id already exists.
        """
        if node_id in self._nodes:
            raise DuplicateNodeError(f"subtask {node_id!r} already in graph")
        node = Subtask(
            node_id=node_id,
            wcet=wcet,
            release=release,
            end_to_end_deadline=end_to_end_deadline,
            pinned_to=pinned_to,
        )
        self._nodes[node_id] = node
        self._succ[node_id] = []
        self._pred[node_id] = []
        self._invalidate_caches()
        return node

    def add_edge(self, src: NodeId, dst: NodeId, message_size: Time = 0.0) -> Message:
        """Add a precedence arc ``src -> dst`` carrying ``message_size`` data items.

        Raises
        ------
        UnknownNodeError
            If either endpoint has not been added.
        DuplicateEdgeError
            If the arc already exists.
        ValidationError
            If ``src == dst`` (self-loops are cycles by definition).
        """
        self._require(src)
        self._require(dst)
        if src == dst:
            raise ValidationError(f"self-loop on {src!r} is not allowed")
        edge = (src, dst)
        if edge in self._messages:
            raise DuplicateEdgeError(f"edge {src!r}->{dst!r} already in graph")
        message = Message(src=src, dst=dst, size=message_size)
        self._messages[edge] = message
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._invalidate_caches()
        return message

    def remove_subtask(self, node_id: NodeId) -> Subtask:
        """Remove a subtask and every arc incident to it; return the node.

        Removal can orphan anchors: a node whose only predecessor is
        removed becomes an input subtask and then needs a release time to
        pass :meth:`validate` (likewise deadlines for new outputs) — the
        caller re-anchors, this method only edits structure. Raises
        :class:`UnknownNodeError` if the id is not present.
        """
        self._require(node_id)
        node = self._nodes.pop(node_id)
        for pred in self._pred.pop(node_id):
            self._succ[pred].remove(node_id)
            del self._messages[(pred, node_id)]
        for succ in self._succ.pop(node_id):
            self._pred[succ].remove(node_id)
            del self._messages[(node_id, succ)]
        self._invalidate_caches()
        return node

    def remove_edge(self, src: NodeId, dst: NodeId) -> Message:
        """Remove the arc ``src -> dst``; return its message.

        Both endpoints stay in the graph (re-anchor them if they became
        inputs/outputs). Raises :class:`UnknownNodeError` if the arc is
        not present.
        """
        edge = (src, dst)
        if edge not in self._messages:
            raise UnknownNodeError(f"edge {src!r}->{dst!r} not in graph")
        message = self._messages.pop(edge)
        self._succ[src].remove(dst)
        self._pred[dst].remove(src)
        self._invalidate_caches()
        return message

    def _require(self, node_id: NodeId) -> None:
        if node_id not in self._nodes:
            raise UnknownNodeError(f"subtask {node_id!r} not in graph")

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    @property
    def n_subtasks(self) -> int:
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        return len(self._messages)

    def node(self, node_id: NodeId) -> Subtask:
        self._require(node_id)
        return self._nodes[node_id]

    def nodes(self) -> List[Subtask]:
        """All subtasks, in insertion order."""
        return list(self._nodes.values())

    def node_ids(self) -> List[NodeId]:
        return list(self._nodes)

    def message(self, src: NodeId, dst: NodeId) -> Message:
        edge = (src, dst)
        if edge not in self._messages:
            raise UnknownNodeError(f"edge {src!r}->{dst!r} not in graph")
        return self._messages[edge]

    def messages(self) -> List[Message]:
        return list(self._messages.values())

    def edges(self) -> List[EdgeId]:
        return list(self._messages)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._messages

    def successors(self, node_id: NodeId) -> List[NodeId]:
        self._require(node_id)
        return list(self._succ[node_id])

    def predecessors(self, node_id: NodeId) -> List[NodeId]:
        self._require(node_id)
        return list(self._pred[node_id])

    def in_degree(self, node_id: NodeId) -> int:
        self._require(node_id)
        return len(self._pred[node_id])

    def out_degree(self, node_id: NodeId) -> int:
        self._require(node_id)
        return len(self._succ[node_id])

    def input_subtasks(self) -> List[NodeId]:
        """Nodes with no predecessors (paper: *input subtasks*)."""
        return [n for n in self._nodes if not self._pred[n]]

    def output_subtasks(self) -> List[NodeId]:
        """Nodes with no successors (paper: *output subtasks*)."""
        return [n for n in self._nodes if not self._succ[n]]

    def pinned_subtasks(self) -> List[NodeId]:
        """Nodes with strict locality constraints."""
        return [n for n, s in self._nodes.items() if s.is_pinned]

    # ------------------------------------------------------------------
    # Order and reachability
    # ------------------------------------------------------------------
    def index(self) -> GraphIndex:
        """The compiled :class:`~repro.graph.indexed.GraphIndex` view.

        Built on first access and cached until the next structural
        mutation (``add_subtask`` / ``add_edge`` / ``remove_subtask`` /
        ``remove_edge``); attribute mutation
        (costs, anchors, pins, message sizes) does not invalidate it —
        the index references the live node/message objects. Every
        analysis layer (paths, expanded graph, schedulers) walks the
        graph through this object.
        """
        if self._index_cache is None:
            self._index_cache = GraphIndex(self)
        return self._index_cache

    def topological_order(self) -> List[NodeId]:
        """Kahn topological order; raises :class:`CycleError` on cycles.

        Deterministic contract (unified across every layer, including the
        expanded graph's order over its own nodes): among simultaneously
        ready nodes, insertion order is preserved.
        """
        if self._topo_cache is None:
            index = self.index()
            self._topo_cache = [index.ids[i] for i in index.topological_order()]
        return list(self._topo_cache)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def ancestors(self, node_id: NodeId) -> Set[NodeId]:
        """All transitive predecessors of ``node_id`` (excluding itself)."""
        self._require(node_id)
        out: Set[NodeId] = set()
        stack = list(self._pred[node_id])
        while stack:
            n = stack.pop()
            if n not in out:
                out.add(n)
                stack.extend(self._pred[n])
        return out

    def descendants(self, node_id: NodeId) -> Set[NodeId]:
        """All transitive successors of ``node_id`` (excluding itself)."""
        self._require(node_id)
        out: Set[NodeId] = set()
        stack = list(self._succ[node_id])
        while stack:
            n = stack.pop()
            if n not in out:
                out.add(n)
                stack.extend(self._succ[n])
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_workload(self) -> Time:
        """Sum of all subtask execution times (the paper's "accumulated
        task graph workload")."""
        return sum(s.wcet for s in self._nodes.values())

    def mean_execution_time(self) -> Time:
        """Mean subtask execution time (the paper's MET)."""
        if not self._nodes:
            raise ValidationError("mean execution time of an empty graph")
        return self.total_workload() / len(self._nodes)

    def total_message_volume(self) -> Time:
        """Sum of all message sizes."""
        return sum(m.size for m in self._messages.values())

    # ------------------------------------------------------------------
    # Validation and copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the invariants an analysis-ready graph must satisfy.

        * acyclic;
        * at least one node;
        * every input subtask has a release time;
        * every output subtask has an end-to-end deadline.
        """
        if not self._nodes:
            raise ValidationError("task graph is empty")
        self.topological_order()  # raises CycleError if cyclic
        for n in self.input_subtasks():
            if self._nodes[n].release is None:
                raise ValidationError(
                    f"input subtask {n!r} has no release time; deadline "
                    "distribution needs release anchors on all inputs"
                )
        for n in self.output_subtasks():
            if self._nodes[n].end_to_end_deadline is None:
                raise ValidationError(
                    f"output subtask {n!r} has no end-to-end deadline; "
                    "deadline distribution needs deadline anchors on all outputs"
                )

    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        """Deep-enough copy: nodes and messages are re-created."""
        g = TaskGraph(name=name if name is not None else self.name)
        for s in self._nodes.values():
            g.add_subtask(
                s.node_id,
                wcet=s.wcet,
                release=s.release,
                end_to_end_deadline=s.end_to_end_deadline,
                pinned_to=s.pinned_to,
            )
        for m in self._messages.values():
            g.add_edge(m.src, m.dst, message_size=m.size)
        return g

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, subtasks={self.n_subtasks}, "
            f"edges={self.n_edges})"
        )
