"""Task-graph transformations.

Preprocessing utilities that keep the rest of the pipeline unchanged:

* :func:`merge_chains` — collapse maximal linear chains of subtasks into
  single subtasks (summed execution times; interior messages disappear —
  they would be same-processor anyway whenever merging is sound). A
  standard granularity-coarsening step before assignment.
* :func:`extract_subgraph` — the induced subgraph on a node subset, with
  boundary anchors synthesized from a reference deadline assignment, so a
  fragment of a distributed application can be re-analysed in isolation.
* :func:`critical_path_subgraph` — the heaviest execution path as a chain
  graph (what a single-processor analysis of the bottleneck sees).
* :func:`scale_workload` — multiply execution times and/or message sizes
  (the sensitivity analyses' scaling primitive, exposed for reuse).
* :func:`relabel` — rename every node through a mapping (namespacing
  before composition of graphs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core uses graph)
    from repro.core.annotations import DeadlineAssignment

from repro.errors import ValidationError
from repro.graph import paths
from repro.graph.taskgraph import TaskGraph
from repro.types import NodeId, Time


def merge_chains(graph: TaskGraph, separator: str = "+") -> TaskGraph:
    """Collapse maximal linear chains into single subtasks.

    A node joins its predecessor's chain when the predecessor has exactly
    one successor and the node exactly one predecessor, neither endpoint
    anchor conflicts (interior nodes must carry no release/deadline
    anchors of their own), and pins agree (both unpinned or same pin).
    Merged node ids are the joined member ids, e.g. ``"a+b+c"``.
    """
    chain_of: Dict[NodeId, List[NodeId]] = {}
    head_of: Dict[NodeId, NodeId] = {}
    for node_id in graph.topological_order():
        preds = graph.predecessors(node_id)
        mergeable = False
        if len(preds) == 1:
            pred = preds[0]
            node = graph.node(node_id)
            prev = graph.node(head_of.get(pred, pred))
            mergeable = (
                graph.out_degree(pred) == 1
                and node.release is None
                and graph.node(pred).end_to_end_deadline is None
                and node.pinned_to == prev.pinned_to
            )
        if mergeable:
            head = head_of[preds[0]]
            chain_of[head].append(node_id)
            head_of[node_id] = head
        else:
            chain_of[node_id] = [node_id]
            head_of[node_id] = node_id

    out = TaskGraph(name=f"{graph.name}-merged")
    merged_id: Dict[NodeId, NodeId] = {}
    for head, members in chain_of.items():
        new_id = separator.join(members)
        for member in members:
            merged_id[member] = new_id
        first = graph.node(members[0])
        last = graph.node(members[-1])
        out.add_subtask(
            new_id,
            wcet=sum(graph.node(m).wcet for m in members),
            release=first.release,
            end_to_end_deadline=last.end_to_end_deadline,
            pinned_to=first.pinned_to,
        )
    for message in graph.messages():
        src = merged_id[message.src]
        dst = merged_id[message.dst]
        if src == dst:
            continue  # interior chain message disappears
        if not out.has_edge(src, dst):
            out.add_edge(src, dst, message_size=message.size)
        else:
            out.message(src, dst).size += message.size
    return out


def extract_subgraph(
    graph: TaskGraph,
    nodes: Iterable[NodeId],
    assignment: Optional["DeadlineAssignment"] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Induced subgraph on ``nodes``, anchored at its new boundary.

    Nodes that become inputs/outputs of the fragment need release/deadline
    anchors. With ``assignment`` given, boundary anchors come from the
    distributed windows (release of new inputs, absolute deadline of new
    outputs) — the fragment then stands alone for re-analysis. Without it,
    original anchors must already cover the boundary or validation fails.
    """
    subset: Set[NodeId] = set(nodes)
    unknown = subset - set(graph.node_ids())
    if unknown:
        raise ValidationError(
            f"cannot extract unknown subtasks: {sorted(unknown)[:5]}"
        )
    if not subset:
        raise ValidationError("cannot extract an empty subgraph")
    out = TaskGraph(
        name=name if name is not None else f"{graph.name}-sub{len(subset)}"
    )
    for node_id in graph.topological_order():
        if node_id not in subset:
            continue
        node = graph.node(node_id)
        becomes_input = all(p not in subset for p in graph.predecessors(node_id))
        becomes_output = all(s not in subset for s in graph.successors(node_id))
        release = node.release
        deadline = node.end_to_end_deadline
        if assignment is not None:
            if becomes_input and release is None:
                release = assignment.release(node_id)
            if becomes_output and deadline is None:
                deadline = assignment.absolute_deadline(node_id)
        out.add_subtask(
            node_id,
            wcet=node.wcet,
            release=release,
            end_to_end_deadline=deadline,
            pinned_to=node.pinned_to,
        )
    for message in graph.messages():
        if message.src in subset and message.dst in subset:
            out.add_edge(message.src, message.dst, message_size=message.size)
    return out


def critical_path_subgraph(
    graph: TaskGraph,
    assignment: Optional["DeadlineAssignment"] = None,
) -> TaskGraph:
    """The heaviest execution-time path, extracted as a chain graph."""
    return extract_subgraph(
        graph,
        paths.longest_path(graph),
        assignment=assignment,
        name=f"{graph.name}-critical",
    )


def scale_workload(
    graph: TaskGraph,
    execution_factor: float = 1.0,
    message_factor: Optional[float] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Scale execution times (and message sizes) by constant factors.

    ``message_factor`` defaults to ``execution_factor`` (keeping CCR
    constant). Anchors are untouched: scaling against fixed deadlines is
    the sensitivity-analysis primitive.
    """
    if execution_factor <= 0:
        raise ValidationError("execution_factor must be > 0")
    message_factor = (
        message_factor if message_factor is not None else execution_factor
    )
    if message_factor < 0:
        raise ValidationError("message_factor must be >= 0")
    out = graph.copy(
        name=name if name is not None else f"{graph.name}@x{execution_factor:g}"
    )
    for node_id in out.node_ids():
        out.node(node_id).wcet = graph.node(node_id).wcet * execution_factor
    for src, dst in out.edges():
        out.message(src, dst).size = (
            graph.message(src, dst).size * message_factor
        )
    return out


def compose(
    fragments: Mapping[str, TaskGraph],
    arcs: Iterable[tuple] = (),
    name: str = "composed",
) -> TaskGraph:
    """Compose namespaced application fragments into one task graph.

    ``fragments`` maps a namespace to a graph; node ids become
    ``"{namespace}:{node}"``. ``arcs`` wires fragments together as
    ``(src_ns, src_node, dst_ns, dst_node, message_size)`` tuples. Anchors
    travel with their nodes — after composition, boundary-anchor coverage
    is re-checked by the usual :meth:`TaskGraph.validate` at use time
    (an output gaining a consumer keeps its deadline as an interior
    anchor, which the distribution layer honours).
    """
    if not fragments:
        raise ValidationError("cannot compose zero fragments")
    out = TaskGraph(name=name)
    for namespace, fragment in fragments.items():
        if ":" in namespace:
            raise ValidationError(
                f"fragment namespace {namespace!r} must not contain ':'"
            )
        part = relabel(fragment, prefix=f"{namespace}:")
        for node in part.nodes():
            out.add_subtask(
                node.node_id,
                wcet=node.wcet,
                release=node.release,
                end_to_end_deadline=node.end_to_end_deadline,
                pinned_to=node.pinned_to,
            )
        for message in part.messages():
            out.add_edge(message.src, message.dst, message_size=message.size)
    for arc in arcs:
        try:
            src_ns, src_node, dst_ns, dst_node, size = arc
        except ValueError:
            raise ValidationError(
                "compose arcs are (src_ns, src_node, dst_ns, dst_node, size) "
                f"tuples; got {arc!r}"
            ) from None
        out.add_edge(
            f"{src_ns}:{src_node}", f"{dst_ns}:{dst_node}", message_size=size
        )
    return out


def relabel(
    graph: TaskGraph,
    mapping: Optional[Mapping[NodeId, NodeId]] = None,
    prefix: str = "",
    name: Optional[str] = None,
) -> TaskGraph:
    """Rename nodes through ``mapping`` (or by prefixing every id).

    Useful for namespacing before composing graphs from fragments; the
    mapping must be injective over the graph's nodes.
    """
    if mapping is None:
        mapping = {n: f"{prefix}{n}" for n in graph.node_ids()}
    targets = [mapping.get(n, n) for n in graph.node_ids()]
    if len(set(targets)) != len(targets):
        raise ValidationError("relabel mapping is not injective")
    out = TaskGraph(name=name if name is not None else graph.name)
    for node in graph.nodes():
        out.add_subtask(
            mapping.get(node.node_id, node.node_id),
            wcet=node.wcet,
            release=node.release,
            end_to_end_deadline=node.end_to_end_deadline,
            pinned_to=node.pinned_to,
        )
    for message in graph.messages():
        out.add_edge(
            mapping.get(message.src, message.src),
            mapping.get(message.dst, message.dst),
            message_size=message.size,
        )
    return out
