"""Interconnect topologies (paper Section 5.1 and Section 8).

The main evaluation uses a time-multiplexed **shared bus**: one time unit
per transmitted data item, communication concurrent with computation, and
free same-processor communication via shared memory. Section 8 reports that
AST scales across other interconnects; we provide a fully-connected
point-to-point network, a bidirectional ring and a 2-D mesh (store-and-
forward, XY routing), plus an idealized contention-free network for
ablations.

An interconnect answers one structural question — which *links* (named
channels with exclusive occupancy) a message must traverse between two
processors — and one cost question — how long one hop takes. The message
scheduler (:mod:`repro.sched.bus`) owns the link timelines and reservation
logic; topologies stay pure topology.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from math import ceil, sqrt
from typing import List, Tuple

from repro.errors import ValidationError
from repro.types import ProcessorId, Time

#: A link identifier: opaque, hashable, stable.
LinkId = str


class Interconnect(ABC):
    """Topology of the communication subsystem."""

    #: Short name for experiment tables.
    name: str = "abstract"
    #: Whether links are exclusive resources (False = infinite capacity).
    contended: bool = True

    def __init__(self, n_processors: int, cost_per_item: Time = 1.0) -> None:
        if n_processors < 1:
            raise ValidationError(f"n_processors must be >= 1, got {n_processors}")
        if cost_per_item < 0:
            raise ValidationError(f"cost_per_item must be >= 0, got {cost_per_item}")
        self.n_processors = n_processors
        self.cost_per_item = cost_per_item

    def _check(self, proc: ProcessorId) -> None:
        if not 0 <= proc < self.n_processors:
            raise ValidationError(
                f"processor {proc} outside platform of size {self.n_processors}"
            )

    @abstractmethod
    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        """Links a message crosses from ``src`` to ``dst`` (empty if equal)."""

    def hop_cost(self, size: Time) -> Time:
        """Occupancy of one link by a message of ``size`` data items."""
        return size * self.cost_per_item

    def uncontended_latency(self, src: ProcessorId, dst: ProcessorId, size: Time) -> Time:
        """Transfer latency ignoring contention (lower bound)."""
        return len(self.route(src, dst)) * self.hop_cost(size)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_processors={self.n_processors}, "
            f"cost_per_item={self.cost_per_item})"
        )


class SharedBus(Interconnect):
    """The paper's platform: one time-multiplexed bus shared by everyone."""

    name = "bus"
    contended = True

    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        return ["bus"]


class FullyConnected(Interconnect):
    """A dedicated duplex link between every processor pair."""

    name = "fully-connected"
    contended = True

    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        a, b = min(src, dst), max(src, dst)
        return [f"link({a},{b})"]


class Ring(Interconnect):
    """Bidirectional ring; messages take the shorter direction.

    Store-and-forward: a message occupies each link of its route in turn.
    Ties between the two directions break toward increasing indices.
    """

    name = "ring"
    contended = True

    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        n = self.n_processors
        forward = (dst - src) % n
        backward = (src - dst) % n
        links: List[LinkId] = []
        node = src
        if forward <= backward:
            for _ in range(forward):
                nxt = (node + 1) % n
                links.append(_ring_link(node, nxt))
                node = nxt
        else:
            for _ in range(backward):
                nxt = (node - 1) % n
                links.append(_ring_link(node, nxt))
                node = nxt
        return links


def _ring_link(a: ProcessorId, b: ProcessorId) -> LinkId:
    lo, hi = min(a, b), max(a, b)
    return f"ring({lo},{hi})"


class Mesh2D(Interconnect):
    """2-D mesh with XY (dimension-ordered) routing.

    Processors are laid out row-major on a ``rows × cols`` grid with
    ``rows = ceil(sqrt(n))``; the last row may be partial. Each grid edge is
    a duplex link.
    """

    name = "mesh"
    contended = True

    def __init__(self, n_processors: int, cost_per_item: Time = 1.0) -> None:
        super().__init__(n_processors, cost_per_item)
        self.cols = max(1, ceil(sqrt(n_processors)))

    def _coords(self, proc: ProcessorId) -> Tuple[int, int]:
        return divmod(proc, self.cols)

    def _proc(self, row: int, col: int) -> ProcessorId:
        return row * self.cols + col

    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        row, col = self._coords(src)
        drow, dcol = self._coords(dst)
        links: List[LinkId] = []
        # X first (columns), then Y (rows).
        while col != dcol:
            ncol = col + (1 if dcol > col else -1)
            links.append(_mesh_link(self._proc(row, col), self._proc(row, ncol)))
            col = ncol
        while row != drow:
            nrow = row + (1 if drow > row else -1)
            links.append(_mesh_link(self._proc(row, col), self._proc(nrow, col)))
            row = nrow
        return links


def _mesh_link(a: ProcessorId, b: ProcessorId) -> LinkId:
    lo, hi = min(a, b), max(a, b)
    return f"mesh({lo},{hi})"


class IdealNetwork(Interconnect):
    """Contention-free network: every transfer costs exactly one hop.

    An ablation device: comparing against :class:`SharedBus` isolates how
    much of the lateness is due to bus contention rather than raw transfer
    latency.
    """

    name = "ideal"
    contended = False

    def route(self, src: ProcessorId, dst: ProcessorId) -> List[LinkId]:
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        return [f"ideal({src},{dst})"]


#: Topologies by name, as used in experiment configurations.
TOPOLOGIES = {
    "bus": SharedBus,
    "fully-connected": FullyConnected,
    "ring": Ring,
    "mesh": Mesh2D,
    "ideal": IdealNetwork,
}


def make_interconnect(
    name: str, n_processors: int, cost_per_item: Time = 1.0
) -> Interconnect:
    """Instantiate a named topology."""
    try:
        cls = TOPOLOGIES[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown topology {name!r}; expected one of {sorted(TOPOLOGIES)}"
        ) from None
    return cls(n_processors, cost_per_item=cost_per_item)
