"""The platform: processors plus interconnect (paper Section 5.1)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.machine.processor import Processor
from repro.machine.topology import Interconnect, SharedBus
from repro.types import ProcessorId, Time


class System:
    """A multiprocessor platform.

    The default matches the paper: ``n`` homogeneous unit-speed processors
    on a shared bus with one time unit per data item, free same-processor
    communication, and communication concurrent with computation.

    >>> system = System(4)
    >>> system.n_processors
    4
    >>> system.interconnect.name
    'bus'
    """

    def __init__(
        self,
        n_processors: int,
        interconnect: Optional[Interconnect] = None,
        speeds: Optional[Sequence[float]] = None,
    ) -> None:
        if n_processors < 1:
            raise ValidationError(f"n_processors must be >= 1, got {n_processors}")
        if speeds is not None and len(speeds) != n_processors:
            raise ValidationError(
                f"got {len(speeds)} speeds for {n_processors} processors"
            )
        self.processors: List[Processor] = [
            Processor(i, speed=speeds[i] if speeds is not None else 1.0)
            for i in range(n_processors)
        ]
        self.interconnect: Interconnect = (
            interconnect if interconnect is not None else SharedBus(n_processors)
        )
        if self.interconnect.n_processors != n_processors:
            raise ValidationError(
                f"interconnect sized for {self.interconnect.n_processors} "
                f"processors, platform has {n_processors}"
            )

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    @property
    def is_homogeneous(self) -> bool:
        speeds = {p.speed for p in self.processors}
        return len(speeds) == 1

    def processor(self, proc_id: ProcessorId) -> Processor:
        if not 0 <= proc_id < self.n_processors:
            raise ValidationError(
                f"processor {proc_id} outside platform of size {self.n_processors}"
            )
        return self.processors[proc_id]

    def execution_time(self, proc_id: ProcessorId, wcet: Time) -> Time:
        """Wall-clock occupancy of a subtask on a given processor."""
        return self.processor(proc_id).execution_time(wcet)

    def __repr__(self) -> str:
        return (
            f"System(n_processors={self.n_processors}, "
            f"interconnect={self.interconnect.name!r})"
        )
