"""Processor model.

The paper's platform is a homogeneous multiprocessor; :class:`Processor`
carries a ``speed`` factor anyway so the heterogeneous extension named in
Section 8 is a configuration change, not a code change: a subtask with
worst-case execution time ``c`` occupies a processor for ``c / speed``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.types import ProcessorId, Time


@dataclass(frozen=True)
class Processor:
    """One processing element of the platform."""

    proc_id: ProcessorId
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.proc_id < 0:
            raise ValidationError(f"processor id must be >= 0, got {self.proc_id}")
        if self.speed <= 0:
            raise ValidationError(
                f"processor {self.proc_id}: speed must be > 0, got {self.speed}"
            )

    def execution_time(self, wcet: Time) -> Time:
        """Wall-clock occupancy of a subtask with worst-case time ``wcet``."""
        return wcet / self.speed
