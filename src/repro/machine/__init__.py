"""Platform substrate: processors and interconnect topologies."""

from repro.machine.processor import Processor
from repro.machine.system import System
from repro.machine.topology import (
    TOPOLOGIES,
    FullyConnected,
    IdealNetwork,
    Interconnect,
    LinkId,
    Mesh2D,
    Ring,
    SharedBus,
    make_interconnect,
)

__all__ = [
    "Processor",
    "System",
    "Interconnect",
    "LinkId",
    "SharedBus",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "IdealNetwork",
    "TOPOLOGIES",
    "make_interconnect",
]
