"""Instrumentation of experiment execution: phase timers and progress.

The runner used to accept a bare ``(done, total)`` callback and nothing
else. This module replaces that with a small, pluggable layer:

* :class:`PhaseTimings` — wall-clock seconds spent in each of the three
  trial phases (``generate`` the workload, ``distribute`` deadlines,
  ``schedule`` and measure). Plain picklable data, so worker processes
  can measure locally and ship their timings back to the parent.
* :class:`TrialFailure` — one fault event (crash, timeout, exception,
  quarantine) observed by the fault-tolerant engine; plain picklable
  data shared by workers, results, and the checkpoint journal.
* :class:`Instrumentation` — the parent-side collector: accumulates
  timings, counts completed trials and fault events, and fans progress
  events out to any number of registered callbacks.

Progress from worker processes
------------------------------
Workers never call user callbacks directly (the callback lives in the
parent and usually is not picklable anyway). Instead each worker times
its own chunk, returns a :class:`PhaseTimings` alongside its records
through the executor's results queue, and the parent calls
:meth:`Instrumentation.absorb` as each chunk arrives — which merges the
timings and fires the progress callbacks with the updated trial count.
Progress granularity in parallel mode is therefore one chunk (all trials
of one (scenario, graph) pair) rather than one trial.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ExperimentError

#: Progress hook: called with (done_trials, total_trials).
ProgressFn = Callable[[int, int], None]

#: The trial phases, in pipeline order.
PHASES = ("generate", "distribute", "schedule")

#: Fault-event kinds the engine records.
FAILURE_KINDS = (
    "crash",       # a worker process (or its pool) died
    "timeout",     # the parent killed a chunk that overran its budget
    "exception",   # the chunk raised inside a worker
    "slow-trial",  # a trial finished but overran its cooperative budget
    "quarantine",  # the chunk was given up on after repeated failures
)


@dataclass(frozen=True)
class TrialFailure:
    """One fault event of one (scenario, graph-index) trial chunk.

    ``attempt`` is the 1-based count of failed attempts the chunk had
    accumulated when the event was recorded (0 for non-fatal
    ``slow-trial`` events, which do not consume an attempt).
    """

    scenario: str
    index: int
    kind: str
    message: str
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ExperimentError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "attempt": self.attempt,
        }


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent per trial phase (picklable)."""

    generate: float = 0.0
    distribute: float = 0.0
    schedule: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        if phase not in PHASES:
            raise ExperimentError(
                f"unknown phase {phase!r}; expected one of {PHASES}"
            )
        setattr(self, phase, getattr(self, phase) + seconds)

    def merge(self, other: "PhaseTimings") -> None:
        """Accumulate another timing set (e.g. one worker chunk) into this
        one. Parallel timings are summed CPU-side seconds, so the merged
        total can exceed the experiment's wall-clock elapsed time."""
        for phase in PHASES:
            setattr(self, phase, getattr(self, phase) + getattr(other, phase))

    @property
    def total(self) -> float:
        return self.generate + self.distribute + self.schedule

    def as_dict(self) -> Dict[str, float]:
        return {phase: getattr(self, phase) for phase in PHASES}


class Instrumentation:
    """Collects per-phase timings and trial counts; relays progress.

    One instance instruments one :func:`~repro.feast.runner.run_experiment`
    call. Register any number of ``(done, total)`` callbacks with
    :meth:`add_progress`; they fire after every completed trial (serial)
    or completed chunk (parallel).
    """

    def __init__(self, progress: Optional[ProgressFn] = None) -> None:
        self.timings = PhaseTimings()
        self.trials_completed = 0
        self.total_trials = 0
        #: Fault events observed so far, in the order they happened.
        self.failures: List[TrialFailure] = []
        #: Chunk attempts resubmitted after a failure.
        self.retries = 0
        #: Chunks given up on after repeated failures.
        self.quarantined = 0
        #: Times the worker pool died and was respawned.
        self.pool_respawns = 0
        #: Trials replayed from a checkpoint journal instead of re-run.
        self.replayed_trials = 0
        self._callbacks: List[ProgressFn] = []
        if progress is not None:
            self.add_progress(progress)

    def add_progress(self, callback: ProgressFn) -> None:
        """Register a ``(done, total)`` progress callback."""
        self._callbacks.append(callback)

    def start(self, total_trials: int) -> None:
        """Begin (or restart) a run of ``total_trials`` trials."""
        self.total_trials = total_trials
        self.trials_completed = 0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of work against the named phase."""
        began = time.perf_counter()
        try:
            yield
        finally:
            self.timings.add(name, time.perf_counter() - began)

    def completed(self, n_trials: int = 1) -> None:
        """Count ``n_trials`` more trials done and fire progress."""
        self.trials_completed += n_trials
        if self.trials_completed > self.total_trials:
            raise ExperimentError(
                f"completed {self.trials_completed} trials but only "
                f"{self.total_trials} were planned — the workload source "
                "produced more graphs than ExperimentConfig.n_trials expects"
            )
        for callback in self._callbacks:
            callback(self.trials_completed, self.total_trials)

    def absorb(self, timings: PhaseTimings, n_trials: int) -> None:
        """Merge one worker chunk's timings and count its trials."""
        self.timings.merge(timings)
        self.completed(n_trials)

    def replayed(self, timings: PhaseTimings, n_trials: int) -> None:
        """Absorb a chunk replayed from a checkpoint journal."""
        self.replayed_trials += n_trials
        self.absorb(timings, n_trials)

    def record_failure(self, failure: TrialFailure) -> None:
        """Log one fault event (the engine calls this as faults happen)."""
        self.failures.append(failure)

    def retried(self) -> None:
        """Count one chunk resubmission after a failure."""
        self.retries += 1

    def quarantine(self) -> None:
        """Count one chunk quarantined after repeated failures."""
        self.quarantined += 1

    def pool_respawned(self) -> None:
        """Count one worker-pool death + respawn."""
        self.pool_respawns += 1
