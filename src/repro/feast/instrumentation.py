"""Instrumentation of experiment execution: phase timers, progress,
and the bridge into the telemetry subsystem.

The runner used to accept a bare ``(done, total)`` callback and nothing
else. This module replaces that with a small, pluggable layer:

* :class:`PhaseTimings` — summed CPU-side seconds spent in each of the
  three trial phases (``generate`` the workload, ``distribute``
  deadlines, ``schedule`` and measure). Plain picklable data, so worker
  processes can measure locally and ship their timings back to the
  parent. Note the unit: each worker's phases are wall-clock to *it*,
  but the parent sums them across workers, so the merged totals behave
  like CPU time and can exceed the experiment's wall-clock elapsed time
  in parallel mode — compare against :attr:`Instrumentation.wall_elapsed`
  and :meth:`Instrumentation.parallel_efficiency`.
* :class:`TrialFailure` — one fault event (crash, timeout, exception,
  quarantine) observed by the fault-tolerant engine; plain picklable
  data shared by workers, results, and the checkpoint journal.
* :class:`Instrumentation` — the parent-side collector: accumulates
  timings, counts completed trials and fault events, and fans progress
  events out to any number of registered callbacks. Built on top of the
  span layer: attach a :class:`~repro.obs.runtime.Telemetry` and every
  :meth:`phase` block, fault event, and engine counter is additionally
  recorded as spans and metrics (:mod:`repro.obs`) — with no telemetry
  attached the span hooks are no-ops and the records produced are
  byte-identical either way.

Progress from worker processes
------------------------------
Workers never call user callbacks directly (the callback lives in the
parent and usually is not picklable anyway). Instead each worker times
its own chunk, returns a :class:`PhaseTimings` alongside its records
through the executor's results queue, and the parent calls
:meth:`Instrumentation.absorb` as each chunk arrives — which merges the
timings and fires the progress callbacks with the updated trial count.
Progress granularity in parallel mode is therefore one chunk (all trials
of one (scenario, graph) pair) rather than one trial.

Progress callbacks are exception-safe: a callback that raises an
:class:`Exception` is detached and reported as an
:class:`~repro.errors.ExperimentWarning` instead of aborting the run
mid-chunk. ``KeyboardInterrupt`` (and other ``BaseException``) still
propagates — deliberately interrupting a sweep from a callback remains
possible.
"""

from __future__ import annotations

import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ExperimentError, ExperimentWarning
from repro.obs import runtime as obs

#: Interned histogram names per phase (``phase.<name>.seconds``).
_PHASE_METRICS: Dict[str, str] = {}

#: Progress hook: called with (done_trials, total_trials).
ProgressFn = Callable[[int, int], None]

#: The trial phases, in pipeline order.
PHASES = ("generate", "distribute", "schedule")

#: Fault-event kinds the engine records.
FAILURE_KINDS = (
    "crash",       # a worker process (or its pool) died
    "timeout",     # the parent killed a chunk that overran its budget
    "exception",   # the chunk raised inside a worker
    "slow-trial",  # a trial finished but overran its cooperative budget
    "quarantine",  # the chunk was given up on after repeated failures
)


@dataclass(frozen=True)
class TrialFailure:
    """One fault event of one (scenario, graph-index) trial chunk.

    ``attempt`` is the 1-based count of failed attempts the chunk had
    accumulated when the event was recorded (0 for non-fatal
    ``slow-trial`` events, which do not consume an attempt).
    """

    scenario: str
    index: int
    kind: str
    message: str
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ExperimentError(
                f"unknown failure kind {self.kind!r}; expected one of "
                f"{FAILURE_KINDS}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "attempt": self.attempt,
        }


@dataclass
class PhaseTimings:
    """Summed seconds spent per trial phase (picklable)."""

    generate: float = 0.0
    distribute: float = 0.0
    schedule: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        if phase not in PHASES:
            raise ExperimentError(
                f"unknown phase {phase!r}; expected one of {PHASES}"
            )
        setattr(self, phase, getattr(self, phase) + seconds)

    def merge(self, other: "PhaseTimings") -> None:
        """Accumulate another timing set (e.g. one worker chunk) into this
        one. Parallel timings are summed CPU-side seconds, so the merged
        total can exceed the experiment's wall-clock elapsed time."""
        for phase in PHASES:
            setattr(self, phase, getattr(self, phase) + getattr(other, phase))

    @property
    def total(self) -> float:
        return self.generate + self.distribute + self.schedule

    def as_dict(self) -> Dict[str, float]:
        return {phase: getattr(self, phase) for phase in PHASES}


class Instrumentation:
    """Collects per-phase timings and trial counts; relays progress.

    One instance instruments one :func:`~repro.feast.runner.run_experiment`
    call. Register any number of ``(done, total)`` callbacks with
    :meth:`add_progress`; they fire after every completed trial (serial)
    or completed chunk (parallel). A raising callback is detached with an
    :class:`ExperimentWarning` rather than aborting the run.

    Pass ``telemetry`` (a :class:`repro.obs.Telemetry`) to additionally
    record the run as structured spans and metrics; the engine activates
    it for the duration of the run and worker chunks ship their span
    trees back through it.
    """

    def __init__(
        self,
        progress: Optional[ProgressFn] = None,
        telemetry: Optional["obs.Telemetry"] = None,
    ) -> None:
        self.timings = PhaseTimings()
        self.telemetry = telemetry
        self.trials_completed = 0
        self.total_trials = 0
        #: Fault events observed so far, in the order they happened.
        self.failures: List[TrialFailure] = []
        #: Chunk attempts resubmitted after a failure.
        self.retries = 0
        #: Chunks given up on after repeated failures.
        self.quarantined = 0
        #: Times the worker pool died and was respawned.
        self.pool_respawns = 0
        #: Trials replayed from a checkpoint journal instead of re-run.
        self.replayed_trials = 0
        #: Progress callbacks detached after raising (callback, error).
        self.callback_errors: List[str] = []
        #: Wall-clock seconds from :meth:`start` to :meth:`finish` (or to
        #: now while the run is still going).
        self._wall_started: Optional[float] = None
        self._wall_elapsed: Optional[float] = None
        self._callbacks: List[ProgressFn] = []
        if progress is not None:
            self.add_progress(progress)

    def add_progress(self, callback: ProgressFn) -> None:
        """Register a ``(done, total)`` progress callback."""
        self._callbacks.append(callback)

    def start(self, total_trials: int) -> None:
        """Begin (or restart) a run of ``total_trials`` trials."""
        self.total_trials = total_trials
        self.trials_completed = 0
        self._wall_started = time.perf_counter()
        self._wall_elapsed = None

    def finish(self) -> None:
        """Freeze :attr:`wall_elapsed` at the run's end."""
        if self._wall_started is not None and self._wall_elapsed is None:
            self._wall_elapsed = time.perf_counter() - self._wall_started

    @property
    def wall_elapsed(self) -> float:
        """Wall-clock seconds of the (possibly still running) run.

        Unlike ``timings.total`` this never sums across workers: it is
        the honest elapsed time the user waited, the denominator of
        :meth:`parallel_efficiency`.
        """
        if self._wall_started is None:
            return 0.0
        if self._wall_elapsed is not None:
            return self._wall_elapsed
        return time.perf_counter() - self._wall_started

    def parallel_efficiency(self, jobs: int) -> Optional[float]:
        """Summed busy time / (wall time × workers), in [0, ~1].

        ``None`` when nothing was measured yet. Values near 1 mean the
        workers were kept busy; low values point at stragglers, restarts,
        or per-chunk overhead dominating.
        """
        wall = self.wall_elapsed
        if wall <= 0.0 or jobs <= 0:
            return None
        return self.timings.total / (wall * jobs)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block of work against the named phase.

        Also records the block as a span (and a latency histogram
        observation) when a telemetry session is active — in workers
        that is the chunk's local session, in the serial runner the
        run's own.
        """
        began = time.perf_counter()
        try:
            with obs.span(name):
                yield
        finally:
            elapsed = time.perf_counter() - began
            self.timings.add(name, elapsed)
            metric = _PHASE_METRICS.get(name)
            if metric is None:  # cache: phase() runs twice per trial
                metric = _PHASE_METRICS[name] = f"phase.{name}.seconds"
            obs.observe(metric, elapsed)

    def completed(self, n_trials: int = 1) -> None:
        """Count ``n_trials`` more trials done and fire progress.

        A callback raising an :class:`Exception` is detached and
        surfaced as an :class:`ExperimentWarning`; ``BaseException``
        (``KeyboardInterrupt``) propagates and still aborts the run.
        """
        self.trials_completed += n_trials
        if self.trials_completed > self.total_trials:
            raise ExperimentError(
                f"completed {self.trials_completed} trials but only "
                f"{self.total_trials} were planned — the workload source "
                "produced more graphs than ExperimentConfig.n_trials expects"
            )
        for callback in list(self._callbacks):
            try:
                callback(self.trials_completed, self.total_trials)
            except Exception as exc:
                self._callbacks.remove(callback)
                message = (
                    f"progress callback {callback!r} raised "
                    f"{type(exc).__name__}: {exc}; detached — the run "
                    "continues without it"
                )
                self.callback_errors.append(message)
                self._count("engine.callback_errors")
                warnings.warn(message, ExperimentWarning, stacklevel=2)

    def absorb(self, timings: PhaseTimings, n_trials: int) -> None:
        """Merge one worker chunk's timings and count its trials."""
        self.timings.merge(timings)
        self._count("engine.trials_completed", n_trials)
        self.completed(n_trials)

    def replayed(self, timings: PhaseTimings, n_trials: int) -> None:
        """Absorb a chunk replayed from a checkpoint journal."""
        self.replayed_trials += n_trials
        self._count("engine.trials_replayed", n_trials)
        self.absorb(timings, n_trials)

    def record_failure(self, failure: TrialFailure) -> None:
        """Log one fault event (the engine calls this as faults happen)."""
        self.failures.append(failure)
        self._count(f"engine.faults.{failure.kind}")

    def retried(self) -> None:
        """Count one chunk resubmission after a failure."""
        self.retries += 1
        self._count("engine.retries")

    def quarantine(self) -> None:
        """Count one chunk quarantined after repeated failures."""
        self.quarantined += 1
        self._count("engine.quarantined")

    def pool_respawned(self) -> None:
        """Count one worker-pool death + respawn."""
        self.pool_respawns += 1
        self._count("engine.pool_respawns")

    # ------------------------------------------------------------------
    def _count(self, name: str, n: float = 1) -> None:
        """Fold an engine counter into the attached telemetry, if any.

        Goes through the instance, not the ambient session: parent-side
        bookkeeping (retries, respawns) must land in the run's registry
        even when called outside the engine's ``activate`` window.
        """
        if self.telemetry is not None:
            self.telemetry.metrics.count(name, n)
