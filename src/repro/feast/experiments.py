"""Canonical experiment definitions: one builder per paper figure/claim.

Main evaluation (Sections 6–7):

* :func:`figure2` — BST metrics (PURE, NORM) × comm estimation (CCNE, CCAA);
* :func:`figure3` — THRES surplus factor Δ ∈ {1, 2, 4};
* :func:`figure4` — THRES execution-time threshold ∈ {0.75, 1.0, 1.25} × MET;
* :func:`figure5` — PURE vs THRES(Δ=1) vs ADAPT.

Complementary results (Section 8, full data in the Chalmers TR-281 report):

* :func:`ext_ccr` — communication-to-computation ratio sweep;
* :func:`ext_met` — mean execution time sweep;
* :func:`ext_parallelism` — graph-shape (parallelism) sweep;
* :func:`ext_topology` — interconnect topologies;
* :func:`ext_structured` — in-tree / out-tree / fork-join / pipeline graphs;
* :func:`ext_policy` — ready-list policies beyond EDF;
* :func:`ext_locality` — fraction of strictly-pinned subtasks.

Reproduction ablations (documented deviations, DESIGN.md §5):

* :func:`ablation_olr` — OLR basis and tightness;
* :func:`ablation_bus` — contended bus vs contention-free network;
* :func:`ablation_release` — greedy vs time-triggered dispatch.

Every builder returns a list of :class:`ExperimentConfig` (most contain
one; sweeps that change the *workload generator* return one config per
sweep point, since graphs differ across points).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.pinning import pin_random_fraction
from repro.errors import ExperimentError
from repro.feast.config import (
    PAPER_N_GRAPHS,
    PAPER_SYSTEM_SIZES,
    ExperimentConfig,
    MethodSpec,
)
from repro.graph.generator import RandomGraphConfig
from repro.graph.structured import (
    generate_fork_join,
    generate_in_tree,
    generate_out_tree,
    generate_pipeline,
)

#: Default sweep for the extension experiments (coarser than the figures).
EXT_SYSTEM_SIZES: Tuple[int, ...] = (2, 4, 8, 16)

#: Method specs reused across experiments.
PURE = MethodSpec(label="PURE", metric="PURE", comm="CCNE")
ADAPT = MethodSpec(label="ADAPT", metric="ADAPT", comm="CCNE", threshold_factor=1.25)
THRES1 = MethodSpec(
    label="THRES", metric="THRES", comm="CCNE", surplus=1.0, threshold_factor=1.25
)


def figure2(
    n_graphs: int = PAPER_N_GRAPHS,
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """BST evaluation: {PURE, NORM} × {CCNE, CCAA} (paper Figure 2)."""
    methods = tuple(
        MethodSpec(label=f"{metric}/{comm}", metric=metric, comm=comm)
        for metric in ("PURE", "NORM")
        for comm in ("CCNE", "CCAA")
    )
    return [
        ExperimentConfig(
            name="figure2",
            description="BST metrics PURE and NORM under CCNE/CCAA estimation",
            methods=methods,
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


def figure3(
    n_graphs: int = PAPER_N_GRAPHS,
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    seed: int = 2026,
    surpluses: Sequence[float] = (1.0, 2.0, 4.0),
) -> List[ExperimentConfig]:
    """THRES surplus-factor sweep (paper Figure 3)."""
    methods = tuple(
        MethodSpec(
            label=f"THRES(d={surplus:g})",
            metric="THRES",
            surplus=surplus,
            threshold_factor=1.25,
        )
        for surplus in surpluses
    )
    return [
        ExperimentConfig(
            name="figure3",
            description="THRES metric for surplus factors 1, 2 and 4",
            methods=methods,
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


def figure4(
    n_graphs: int = PAPER_N_GRAPHS,
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    seed: int = 2026,
    threshold_factors: Sequence[float] = (0.75, 1.0, 1.25),
) -> List[ExperimentConfig]:
    """THRES threshold sweep, ±25 % around MET (paper Figure 4)."""
    methods = tuple(
        MethodSpec(
            label=f"THRES(t={factor:g}MET)",
            metric="THRES",
            surplus=1.0,
            threshold_factor=factor,
        )
        for factor in threshold_factors
    )
    return [
        ExperimentConfig(
            name="figure4",
            description="THRES metric for thresholds 0.75/1.0/1.25 x MET",
            methods=methods,
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


def figure5(
    n_graphs: int = PAPER_N_GRAPHS,
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """PURE vs THRES(Δ=1) vs ADAPT (paper Figure 5)."""
    return [
        ExperimentConfig(
            name="figure5",
            description="AST metrics THRES and ADAPT against BST's PURE",
            methods=(PURE, THRES1, ADAPT),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


# ----------------------------------------------------------------------
# Section 8 extensions
# ----------------------------------------------------------------------
def ext_ccr(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    ratios: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 4.0),
) -> List[ExperimentConfig]:
    """AST across communication-to-computation cost ratios (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-ccr-{ratio:g}",
            description=f"PURE vs ADAPT at CCR={ratio:g}",
            methods=(PURE, ADAPT),
            graph_config=RandomGraphConfig(
                communication_to_computation_ratio=ratio
            ),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
        for ratio in ratios
    ]


def ext_met(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    mets: Sequence[float] = (5.0, 20.0, 80.0),
) -> List[ExperimentConfig]:
    """AST across mean subtask execution times (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-met-{met:g}",
            description=f"PURE vs ADAPT at MET={met:g}",
            methods=(PURE, ADAPT),
            graph_config=RandomGraphConfig(mean_execution_time=met),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
        for met in mets
    ]


#: Graph-shape presets for the parallelism sweep: (name, depth, degree).
PARALLELISM_SHAPES: Tuple[Tuple[str, Tuple[int, int], Tuple[int, int]], ...] = (
    ("wide", (4, 6), (1, 2)),
    ("paper", (8, 12), (1, 3)),
    ("deep", (16, 20), (1, 3)),
)


def ext_parallelism(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """AST across degrees of task-graph parallelism (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-parallelism-{name}",
            description=f"PURE vs ADAPT on {name} graphs "
            f"(depth {depth[0]}-{depth[1]})",
            methods=(PURE, ADAPT),
            graph_config=RandomGraphConfig(
                depth_range=depth, degree_range=degree
            ),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
        for name, depth, degree in PARALLELISM_SHAPES
    ]


def ext_topology(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    topologies: Sequence[str] = ("bus", "fully-connected", "ring", "mesh"),
) -> List[ExperimentConfig]:
    """AST across interconnect topologies (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-topology-{topology}",
            description=f"PURE vs ADAPT on a {topology} interconnect",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            topology=topology,
        )
        for topology in topologies
    ]


def _structured_factory(structure: str) -> Callable:
    """Graph factory for :func:`ext_structured`; sizes chosen to land in
    the paper's 15–65 subtask range."""
    def factory(config: RandomGraphConfig, rng: random.Random):
        if structure == "in-tree":
            return generate_in_tree(depth=5, branching=2, config=config, rng=rng)
        if structure == "out-tree":
            return generate_out_tree(depth=5, branching=2, config=config, rng=rng)
        if structure == "fork-join":
            return generate_fork_join(stages=5, width=4, config=config, rng=rng)
        if structure == "pipeline":
            return generate_pipeline(length=40, config=config, rng=rng)
        raise ExperimentError(f"unknown structure {structure!r}")

    return factory


def ext_structured(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    structures: Sequence[str] = ("in-tree", "out-tree", "fork-join", "pipeline"),
) -> List[ExperimentConfig]:
    """AST on commonly-encountered graph structures (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-structured-{structure}",
            description=f"PURE vs ADAPT on {structure} graphs",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            graph_factory=_structured_factory(structure),
        )
        for structure in structures
    ]


def ext_policy(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    policies: Sequence[str] = ("EDF", "LLF", "ERF", "LPT"),
) -> List[ExperimentConfig]:
    """AST under different ready-list policies (Section 8)."""
    return [
        ExperimentConfig(
            name=f"ext-policy-{policy}",
            description=f"PURE vs ADAPT under the {policy} selection policy",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            policy=policy,
        )
        for policy in policies
    ]


def _pinned_factory(fraction: float, n_pin_processors: int) -> Callable:
    def factory(config: RandomGraphConfig, rng: random.Random):
        from repro.graph.generator import generate_task_graph

        graph = generate_task_graph(config, rng=rng)
        return pin_random_fraction(graph, fraction, n_pin_processors, rng=rng)

    return factory


def ext_locality(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
) -> List[ExperimentConfig]:
    """Sweep the strictly-pinned fraction, from fully relaxed (the paper's
    setting) to fully strict (the BST setting). Pins reference processors
    below the smallest swept system size, so one workload serves all sizes."""
    n_pin = min(system_sizes)
    return [
        ExperimentConfig(
            name=f"ext-locality-{int(fraction * 100):03d}",
            description=f"PURE vs ADAPT with {fraction:.0%} of subtasks pinned",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            graph_factory=_pinned_factory(fraction, n_pin),
        )
        for fraction in fractions
    ]


def _realistic_factory(workload: str) -> Callable:
    """Graph factory adapting the realistic workload builders; the nested
    graph config's OLR carries through so laxity ablations stay possible."""
    def factory(config: RandomGraphConfig, rng: random.Random):
        from repro.graph.workloads import make_workload

        return make_workload(
            workload, rng=rng, laxity_ratio=config.overall_laxity_ratio
        )

    return factory


def ext_realistic(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    workloads: Sequence[str] = ("automotive", "radar", "video"),
) -> List[ExperimentConfig]:
    """AST on the realistic benchmark set (Section 8's wished-for
    evaluation): automotive control, radar pipeline, video encoder."""
    return [
        ExperimentConfig(
            name=f"ext-realistic-{workload}",
            description=f"PURE vs ADAPT on the {workload} benchmark",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            graph_factory=_realistic_factory(workload),
        )
        for workload in workloads
    ]


def ext_heterogeneous(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    profiles: Sequence[str] = ("uniform", "mixed", "one-fast"),
) -> List[ExperimentConfig]:
    """AST on heterogeneous platforms (Section 8 future work).

    Processor speeds follow a named profile; the list scheduler already
    accounts for speeds in its earliest-start rule. The original ADAPT is
    speed-agnostic (its surplus divides by the processor *count*) — the
    situation the paper flags as "worthy of further investigation" — so
    the sweep also includes this library's capacity-aware variant ADAPT-C
    (divisor = speed sum), which restores the intended behaviour.
    """
    adapt_c = MethodSpec(
        label="ADAPT-C",
        metric="ADAPT",
        comm="CCNE",
        threshold_factor=1.25,
        capacity_aware=True,
    )
    return [
        ExperimentConfig(
            name=f"ext-heterogeneous-{profile}",
            description=f"PURE vs ADAPT vs ADAPT-C with {profile} speeds",
            methods=(PURE, ADAPT, adapt_c),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            speed_profile=profile,
        )
        for profile in profiles
    ]


def ext_baselines(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """Slicing techniques vs the related-work strategies of Section 2:
    Kao & Garcia-Molina's UD/ED/EQS/EQF and Bettati & Liu's even division.

    Compare on ``max_end_to_end_lateness`` (strategy-independent anchors);
    the per-strategy ``max_lateness`` rewards lazy deadlines (UD) and is
    only meaningful within one strategy.
    """
    methods = (
        PURE,
        ADAPT,
        MethodSpec(label="UD", metric="PURE", baseline="UD"),
        MethodSpec(label="ED", metric="PURE", baseline="ED"),
        MethodSpec(label="EQS", metric="PURE", baseline="EQS"),
        MethodSpec(label="EQF", metric="PURE", baseline="EQF"),
        MethodSpec(label="DIV", metric="PURE", baseline="DIV"),
    )
    return [
        ExperimentConfig(
            name="ext-baselines",
            description="slicing techniques vs related-work strategies",
            methods=methods,
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


# ----------------------------------------------------------------------
# Reproduction ablations
# ----------------------------------------------------------------------
def ablation_olr(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
    ratios: Sequence[float] = (1.1, 1.5, 2.0),
) -> List[ExperimentConfig]:
    """OLR tightness × basis ablation (DESIGN.md §5: the OLR sentence is
    ambiguous; this quantifies how much the reading matters)."""
    configs = []
    for basis in ("graph-workload", "path-workload"):
        for ratio in ratios:
            configs.append(
                ExperimentConfig(
                    name=f"ablation-olr-{basis}-{ratio:g}",
                    description=f"PURE vs ADAPT, OLR={ratio:g} on {basis}",
                    methods=(PURE, ADAPT),
                    graph_config=RandomGraphConfig(
                        overall_laxity_ratio=ratio, olr_basis=basis
                    ),
                    scenarios=("MDET",),
                    n_graphs=n_graphs,
                    system_sizes=tuple(system_sizes),
                    seed=seed,
                )
            )
    return configs


def ablation_clamp(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """Window clamping ablation (DESIGN.md §5 deviation #4).

    The paper leaves the interaction between sliced windows and previously
    inherited anchors unspecified; our slicer clamps. This ablation runs
    PURE and ADAPT with clamping on and off on identical workloads — the
    quantitative answer to "does the unspecified detail matter?".
    """
    methods = []
    for clamp in (True, False):
        tag = "clamped" if clamp else "raw"
        methods.append(MethodSpec(
            label=f"PURE/{tag}", metric="PURE", clamp_to_anchors=clamp,
        ))
        methods.append(MethodSpec(
            label=f"ADAPT/{tag}", metric="ADAPT", threshold_factor=1.25,
            clamp_to_anchors=clamp,
        ))
    return [
        ExperimentConfig(
            name="ablation-clamp",
            description="window clamping on vs off",
            methods=tuple(methods),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
        )
    ]


def ablation_bus(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """Contended bus vs contention-free network (DESIGN.md §5)."""
    return [
        ExperimentConfig(
            name=f"ablation-bus-{topology}",
            description=f"PURE vs ADAPT on {topology} interconnect",
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            topology=topology,
        )
        for topology in ("bus", "ideal")
    ]


def ablation_release(
    n_graphs: int = 32,
    system_sizes: Sequence[int] = EXT_SYSTEM_SIZES,
    seed: int = 2026,
) -> List[ExperimentConfig]:
    """Greedy packing vs time-triggered dispatch of distributed releases."""
    return [
        ExperimentConfig(
            name=f"ablation-release-{'tt' if respect else 'greedy'}",
            description=(
                "PURE vs ADAPT with "
                + ("time-triggered" if respect else "greedy")
                + " dispatch"
            ),
            methods=(PURE, ADAPT),
            scenarios=("MDET",),
            n_graphs=n_graphs,
            system_sizes=tuple(system_sizes),
            seed=seed,
            respect_release_times=respect,
        )
        for respect in (False, True)
    ]


#: Registry of every experiment builder, by id.
EXPERIMENTS: Dict[str, Callable[..., List[ExperimentConfig]]] = {
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "ext-ccr": ext_ccr,
    "ext-met": ext_met,
    "ext-parallelism": ext_parallelism,
    "ext-topology": ext_topology,
    "ext-structured": ext_structured,
    "ext-policy": ext_policy,
    "ext-locality": ext_locality,
    "ext-baselines": ext_baselines,
    "ext-heterogeneous": ext_heterogeneous,
    "ext-realistic": ext_realistic,
    "ablation-olr": ablation_olr,
    "ablation-clamp": ablation_clamp,
    "ablation-bus": ablation_bus,
    "ablation-release": ablation_release,
}


def build_experiment(name: str, **kwargs) -> List[ExperimentConfig]:
    """Build the configs of a registered experiment by id."""
    try:
        builder = EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None
    return builder(**kwargs)
