"""Textual rendering of experiment results.

The paper's figures plot mean maximum task lateness against system size,
one panel per execution-time scenario, one curve per method. The renderers
here print the same data as aligned text: one *panel* (table) per scenario
with system sizes as rows and methods as columns — the rows/series a reader
would extract from the paper's plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.feast.aggregate import (
    mean_end_to_end_lateness,
    mean_max_lateness,
    summarize_by,
)
from repro.feast.runner import ExperimentResult, TrialRecord


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Align a list of rows under headers; floats get one decimal."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def lateness_panel(
    result: ExperimentResult,
    scenario: str,
    methods: Optional[Sequence[str]] = None,
) -> str:
    """One scenario panel: mean max lateness, sizes × methods."""
    config = result.config
    labels = list(methods) if methods else [m.label for m in config.methods]
    means = mean_max_lateness(result.filter(scenario=scenario))
    rows: List[List[object]] = []
    for size in config.system_sizes:
        row: List[object] = [size]
        for label in labels:
            row.append(means.get((scenario, label, size), float("nan")))
        rows.append(row)
    return render_table(
        headers=["procs"] + labels,
        rows=rows,
        title=f"[{config.name}] scenario {scenario}: mean max task lateness",
    )


def end_to_end_panel(
    result: ExperimentResult,
    scenario: str,
    methods: Optional[Sequence[str]] = None,
) -> str:
    """One scenario panel of mean max *end-to-end* lateness — the
    strategy-independent measure, for cross-strategy comparisons."""
    config = result.config
    labels = list(methods) if methods else [m.label for m in config.methods]
    means = mean_end_to_end_lateness(result.filter(scenario=scenario))
    rows: List[List[object]] = []
    for size in config.system_sizes:
        row: List[object] = [size]
        for label in labels:
            row.append(means.get((scenario, label, size), float("nan")))
        rows.append(row)
    return render_table(
        headers=["procs"] + labels,
        rows=rows,
        title=(
            f"[{config.name}] scenario {scenario}: "
            "mean max end-to-end lateness"
        ),
    )


def lateness_report(result: ExperimentResult) -> str:
    """All scenario panels of one experiment, ready to print."""
    panels = [
        lateness_panel(result, scenario) for scenario in result.config.scenarios
    ]
    footer = (
        f"({result.config.n_graphs} graphs/combination, "
        f"topology={result.config.topology}, policy={result.config.policy}, "
        f"{len(result)} trials in {result.elapsed_seconds:.1f}s)"
    )
    return "\n\n".join(panels + [footer])


def series(
    result: ExperimentResult, scenario: str, method: str
) -> List[Tuple[int, float]]:
    """The (system size, mean max lateness) curve of one method — the
    machine-readable form of one line in a paper figure."""
    means = mean_max_lateness(result.filter(scenario=scenario, method=method))
    return [
        (size, means[(scenario, method, size)])
        for size in result.config.system_sizes
        if (scenario, method, size) in means
    ]


def to_csv(result: ExperimentResult) -> str:
    """All trial records as CSV (one row per trial)."""
    fields = [
        "experiment", "scenario", "n_processors", "method", "graph_index",
        "max_lateness", "mean_lateness", "n_late", "makespan",
        "mean_utilization", "min_laxity", "max_end_to_end_lateness",
    ]
    lines = [",".join(fields)]
    for record in result.records:
        data = record.as_dict()
        lines.append(",".join(str(data[f]) for f in fields))
    return "\n".join(lines)
