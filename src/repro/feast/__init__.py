"""FEAST-style experiment harness: configs, runner, statistics, tables."""

from repro.feast.aggregate import (
    PairedComparison,
    Summary,
    paired_comparison,
    mean_end_to_end_lateness,
    group_records,
    improvement_over,
    mean_max_lateness,
    summarize,
    summarize_by,
)
from repro.feast.config import (
    PAPER_N_GRAPHS,
    PAPER_SYSTEM_SIZES,
    ExperimentConfig,
    MethodSpec,
)
from repro.feast.experiments import EXPERIMENTS, build_experiment
from repro.feast.instrumentation import (
    Instrumentation,
    PhaseTimings,
    ProgressFn,
    TrialFailure,
)
from repro.feast.parallel import (
    RetryPolicy,
    TrialSpec,
    default_jobs,
    run_parallel_experiment,
)
from repro.feast.persistence import (
    CheckpointJournal,
    SeriesDelta,
    compare,
    config_fingerprint,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.feast.plots import lateness_plot, render_plot
from repro.feast.sweep import run_experiments, sweep_field, sweep_grid
from repro.feast.reporting import (
    improvement_section,
    lateness_section,
    render_report,
)
from repro.feast.runner import (
    ExperimentResult,
    TrialRecord,
    graph_for_trial,
    run_experiment,
    run_trial,
    scenario_seed,
    trial_seed,
)
from repro.feast.tables import (
    end_to_end_panel,
    lateness_panel,
    lateness_report,
    render_table,
    series,
    to_csv,
)

__all__ = [
    "Summary",
    "summarize",
    "summarize_by",
    "group_records",
    "mean_max_lateness",
    "mean_end_to_end_lateness",
    "improvement_over",
    "PairedComparison",
    "paired_comparison",
    "ExperimentConfig",
    "MethodSpec",
    "PAPER_N_GRAPHS",
    "PAPER_SYSTEM_SIZES",
    "EXPERIMENTS",
    "build_experiment",
    "ExperimentResult",
    "TrialRecord",
    "run_experiment",
    "run_trial",
    "run_parallel_experiment",
    "default_jobs",
    "TrialSpec",
    "RetryPolicy",
    "TrialFailure",
    "CheckpointJournal",
    "config_fingerprint",
    "Instrumentation",
    "PhaseTimings",
    "ProgressFn",
    "graph_for_trial",
    "scenario_seed",
    "trial_seed",
    "run_experiments",
    "sweep_field",
    "sweep_grid",
    "render_report",
    "lateness_section",
    "improvement_section",
    "lateness_panel",
    "end_to_end_panel",
    "lateness_report",
    "render_table",
    "series",
    "to_csv",
    "lateness_plot",
    "render_plot",
    "SeriesDelta",
    "compare",
    "save_result",
    "load_result",
    "result_to_dict",
    "result_from_dict",
]
